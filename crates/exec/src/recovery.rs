//! Crash recovery for suspended queries.
//!
//! The suspend phase commits through a **generation-numbered manifest**: a
//! small sidecar file next to the page files, replaced atomically
//! (write-temp → fsync → rename → directory fsync) once the
//! `SuspendedQuery` blob and every dump blob it references are durable.
//! The manifest is therefore the single commit point — a crash at any
//! suspend-phase write leaves either the previous manifest (old resumable
//! state) or no manifest (clean "no suspend" state), never a torn mix.
//!
//! Recovery ([`QueryExecution::recover`](crate::QueryExecution::recover))
//! reads the manifest, validates the `SuspendedQuery` (frame checksum,
//! codec version, plan decode, catalog compatibility) and resumes it.
//! Transient I/O errors are retried with bounded exponential backoff; a
//! missing or corrupt dump blob degrades to the operator's GoBack fallback
//! records when the suspend phase recorded an admissible contract chain,
//! and surfaces as [`ResumeError::DumpUnavailable`] otherwise.

use qsr_core::OpId;
use qsr_storage::{
    fnv1a, BlobId, Database, Decode, Decoder, Encode, Encoder, Result, StorageError,
};
use std::fmt;
use std::time::Duration;

/// Sidecar file name of the suspend manifest.
pub const SUSPEND_MANIFEST: &str = "SUSPEND.manifest";

/// Magic number opening a serialized manifest ("QSRM" little-endian).
const MANIFEST_MAGIC: u32 = 0x4d52_5351;

/// Manifest codec version.
const MANIFEST_VERSION: u32 = 1;

/// The commit record of a suspend: which `SuspendedQuery` blob is current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspendManifest {
    /// Monotone suspend counter for this database directory. Each suspend
    /// commits generation `n + 1` and then garbage-collects generation
    /// `n`'s blobs.
    pub generation: u64,
    /// Blob holding the committed `SuspendedQuery`.
    pub query: BlobId,
}

// Framed like `SuspendedQuery`: magic, version, checksum, length-prefixed
// body. A bit flip anywhere in the file decodes to a clean error.
impl Encode for SuspendManifest {
    fn encode(&self, enc: &mut Encoder) {
        let mut body = Encoder::new();
        body.put_u64(self.generation);
        self.query.encode(&mut body);
        let body = body.finish();
        enc.put_u32(MANIFEST_MAGIC);
        enc.put_u32(MANIFEST_VERSION);
        enc.put_u64(fnv1a(&body));
        enc.put_bytes(&body);
    }
}

impl Decode for SuspendManifest {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let magic = dec.get_u32()?;
        if magic != MANIFEST_MAGIC {
            return Err(StorageError::corrupt(format!(
                "not a suspend manifest: bad magic {magic:#010x}"
            )));
        }
        let version = dec.get_u32()?;
        if version != MANIFEST_VERSION {
            return Err(StorageError::VersionMismatch {
                what: "SuspendManifest".into(),
                expected: MANIFEST_VERSION,
                actual: version,
            });
        }
        let expected = dec.get_u64()?;
        let body = dec.get_bytes()?;
        let actual = fnv1a(body);
        if actual != expected {
            return Err(StorageError::checksum_mismatch(
                "SuspendManifest body",
                expected,
                actual,
            ));
        }
        let mut bdec = Decoder::new(body);
        let m = SuspendManifest {
            generation: bdec.get_u64()?,
            query: BlobId::decode(&mut bdec)?,
        };
        if !bdec.is_exhausted() {
            return Err(StorageError::corrupt(format!(
                "SuspendManifest body: {} trailing bytes",
                bdec.remaining()
            )));
        }
        Ok(m)
    }
}

/// Read the committed manifest, if any. `Ok(None)` is the clean "no
/// suspend happened" state.
pub fn read_manifest(db: &Database) -> std::result::Result<Option<SuspendManifest>, ResumeError> {
    read_manifest_named(db, SUSPEND_MANIFEST)
}

/// [`read_manifest`] for an explicitly named manifest sidecar. The
/// multi-session server gives each session its own manifest name, so N
/// suspended sessions commit N independent generation chains in one
/// database directory.
pub fn read_manifest_named(
    db: &Database,
    name: &str,
) -> std::result::Result<Option<SuspendManifest>, ResumeError> {
    let bytes = with_retries(|| db.disk().read_sidecar(name)).map_err(ResumeError::Storage)?;
    match bytes {
        None => Ok(None),
        Some(b) => SuspendManifest::decode_from_slice(&b)
            .map(Some)
            .map_err(ResumeError::ManifestCorrupt),
    }
}

/// Atomically commit `manifest` as the current suspend state.
pub fn commit_manifest(db: &Database, manifest: &SuspendManifest) -> Result<()> {
    commit_manifest_named(db, SUSPEND_MANIFEST, manifest)
}

/// [`commit_manifest`] under an explicit manifest sidecar name.
pub fn commit_manifest_named(db: &Database, name: &str, manifest: &SuspendManifest) -> Result<()> {
    db.disk()
        .write_sidecar_atomic(name, &manifest.encode_to_vec())
}

/// Remove the manifest, returning the directory to the clean "no suspend"
/// state. Called after a resumed query runs to completion.
pub fn clear_manifest(db: &Database) -> Result<()> {
    clear_manifest_named(db, SUSPEND_MANIFEST)
}

/// [`clear_manifest`] under an explicit manifest sidecar name.
pub fn clear_manifest_named(db: &Database, name: &str) -> Result<()> {
    db.disk().remove_sidecar(name)
}

/// Structured resume failures. Everything the resume path can hit maps to
/// one of these, so callers can distinguish "retry elsewhere" from "state
/// is gone" from "wrong database".
#[derive(Debug)]
pub enum ResumeError {
    /// The manifest file exists but does not decode (torn by a crash the
    /// atomic-commit protocol should have prevented, or rotted on disk).
    ManifestCorrupt(StorageError),
    /// The committed `SuspendedQuery` blob is missing, fails its checksum,
    /// or was written by an incompatible codec version.
    SuspendedQueryUnreadable(StorageError),
    /// The plan specification inside the `SuspendedQuery` does not decode.
    IncompatiblePlan(String),
    /// The plan references a table this database does not have.
    MissingTable(String),
    /// An operator's dump blob is missing or corrupt and no GoBack
    /// fallback was recorded for it at suspend time.
    DumpUnavailable {
        /// The operator whose dump is gone.
        op: OpId,
        /// The underlying storage failure.
        source: StorageError,
    },
    /// Any other storage failure (including transient errors that
    /// exhausted their retry budget).
    Storage(StorageError),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::ManifestCorrupt(e) => write!(f, "suspend manifest is corrupt: {e}"),
            ResumeError::SuspendedQueryUnreadable(e) => {
                write!(f, "SuspendedQuery is unreadable: {e}")
            }
            ResumeError::IncompatiblePlan(m) => write!(f, "plan spec does not decode: {m}"),
            ResumeError::MissingTable(t) => {
                write!(f, "plan references table '{t}' which this database lacks")
            }
            ResumeError::DumpUnavailable { op, source } => write!(
                f,
                "dump blob for {op} is unavailable and no GoBack fallback exists: {source}"
            ),
            ResumeError::Storage(e) => write!(f, "storage failure during resume: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::ManifestCorrupt(e)
            | ResumeError::SuspendedQueryUnreadable(e)
            | ResumeError::DumpUnavailable { source: e, .. }
            | ResumeError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ResumeError {
    fn from(e: StorageError) -> Self {
        ResumeError::Storage(e)
    }
}

// Legacy `Result<_, StorageError>` entry points funnel structured resume
// failures back into the storage error space without losing the message.
impl From<ResumeError> for StorageError {
    fn from(e: ResumeError) -> Self {
        match e {
            ResumeError::ManifestCorrupt(s)
            | ResumeError::SuspendedQueryUnreadable(s)
            | ResumeError::Storage(s) => s,
            ResumeError::IncompatiblePlan(m) => StorageError::corrupt(m),
            ResumeError::MissingTable(t) => StorageError::NotFound(format!("table '{t}'")),
            ResumeError::DumpUnavailable { op, source } => StorageError::corrupt(format!(
                "dump blob for {op} unavailable ({source}) with no fallback"
            )),
        }
    }
}

/// A deterministic exponential-backoff schedule: attempt `n` (1-based) is
/// followed, on transient failure, by a sleep of
/// `base_ms * factor^(n-1)` milliseconds, up to `max_attempts` attempts
/// total. The schedule is a pure function of its three fields — no
/// jitter, no clock reads — so retry behavior is bit-reproducible and can
/// be pinned in tests (see `tests/resume_errors.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffSchedule {
    /// Delay after the first failed attempt, in milliseconds.
    pub base_ms: u64,
    /// Multiplier applied to the delay after each further failure.
    pub factor: u32,
    /// Total attempts (the first try included) before giving up.
    pub max_attempts: u32,
}

impl BackoffSchedule {
    /// The delay slept *after* failed attempt `attempt` (1-based), or
    /// `None` when the schedule is exhausted and the error should surface.
    pub fn delay_after(&self, attempt: u32) -> Option<Duration> {
        if attempt == 0 || attempt >= self.max_attempts {
            return None;
        }
        let mult = (self.factor as u64).saturating_pow(attempt - 1);
        Some(Duration::from_millis(self.base_ms.saturating_mul(mult)))
    }

    /// The full sleep sequence: one entry per retry the schedule grants.
    pub fn delays(&self) -> Vec<Duration> {
        (1..self.max_attempts)
            .map_while(|a| self.delay_after(a))
            .collect()
    }
}

/// The resume path's schedule: 4 attempts with 1 ms, 2 ms, 4 ms between
/// them. Kept small because the fault injector's transient bursts are the
/// only "device" these tests ever talk to; a production deployment would
/// widen `base_ms`.
pub const RESUME_BACKOFF: BackoffSchedule = BackoffSchedule {
    base_ms: 1,
    factor: 2,
    max_attempts: 4,
};

/// Maximum attempts [`with_retries`] makes before giving up.
pub const MAX_RETRIES: u32 = RESUME_BACKOFF.max_attempts;

/// Run `f` under `schedule`, retrying transient I/O failures and only
/// those — corruption, missing objects, and resource pressure fail
/// immediately, because retrying them cannot help.
pub fn with_backoff<T>(
    schedule: &BackoffSchedule,
    mut f: impl FnMut() -> Result<T>,
) -> Result<T> {
    let mut attempt = 1;
    loop {
        match f() {
            Err(e) if e.is_transient() => match schedule.delay_after(attempt) {
                Some(d) => {
                    std::thread::sleep(d);
                    attempt += 1;
                }
                None => return Err(e),
            },
            other => return other,
        }
    }
}

/// [`with_backoff`] under the pinned [`RESUME_BACKOFF`] schedule.
pub fn with_retries<T>(f: impl FnMut() -> Result<T>) -> Result<T> {
    with_backoff(&RESUME_BACKOFF, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsr_storage::FileId;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn sample() -> SuspendManifest {
        SuspendManifest {
            generation: 3,
            query: BlobId {
                file: FileId(12),
                len: 4096,
                checksum: 0xFEED,
            },
        }
    }

    #[test]
    fn manifest_roundtrips_and_detects_damage() {
        let m = sample();
        let bytes = m.encode_to_vec();
        assert_eq!(SuspendManifest::decode_from_slice(&bytes).unwrap(), m);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << (i % 8);
            assert!(
                SuspendManifest::decode_from_slice(&bad).is_err(),
                "flip at byte {i} decoded silently"
            );
            assert!(
                SuspendManifest::decode_from_slice(&bytes[..i]).is_err(),
                "truncation to {i} bytes decoded silently"
            );
        }
    }

    #[test]
    fn retries_stop_at_success_and_skip_permanent_errors() {
        let calls = AtomicU32::new(0);
        let out: Result<u32> = with_retries(|| {
            let n = calls.fetch_add(1, Ordering::SeqCst);
            if n < 2 {
                Err(StorageError::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "flaky",
                )))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls.load(Ordering::SeqCst), 3);

        let calls = AtomicU32::new(0);
        let out: Result<u32> = with_retries(|| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(StorageError::corrupt("rot"))
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::SeqCst), 1, "corruption is not retried");
    }

    #[test]
    fn retries_are_bounded() {
        let calls = AtomicU32::new(0);
        let out: Result<u32> = with_retries(|| {
            calls.fetch_add(1, Ordering::SeqCst);
            Err(StorageError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "always",
            )))
        });
        assert!(out.unwrap_err().is_transient());
        assert_eq!(calls.load(Ordering::SeqCst), MAX_RETRIES);
    }
}
