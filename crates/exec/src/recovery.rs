//! Crash recovery for suspended queries.
//!
//! The suspend phase commits through a **generation-numbered manifest**: a
//! small sidecar file next to the page files, replaced atomically
//! (write-temp → fsync → rename → directory fsync) once the
//! `SuspendedQuery` blob and every dump blob it references are durable.
//! The manifest is therefore the single commit point — a crash at any
//! suspend-phase write leaves either the previous manifest (old resumable
//! state) or no manifest (clean "no suspend" state), never a torn mix.
//!
//! Recovery ([`QueryExecution::recover`](crate::QueryExecution::recover))
//! reads the manifest, validates the `SuspendedQuery` (frame checksum,
//! codec version, plan decode, catalog compatibility) and resumes it.
//! Transient I/O errors are retried with bounded exponential backoff; a
//! missing or corrupt dump blob degrades to the operator's GoBack fallback
//! records when the suspend phase recorded an admissible contract chain,
//! and surfaces as [`ResumeError::DumpUnavailable`] otherwise.

use qsr_core::OpId;
use qsr_storage::{
    fnv1a, BlobId, Database, Decode, Decoder, Encode, Encoder, Result, StorageError,
};
use std::fmt;

// Hoisted into `qsr-storage` in PR 9 so the suspend-backend robustness
// layer shares the schedule type; re-exported here for existing callers.
pub use qsr_storage::{with_backoff, with_retries, BackoffSchedule, MAX_RETRIES, RESUME_BACKOFF};

/// Sidecar file name of the suspend manifest.
pub const SUSPEND_MANIFEST: &str = "SUSPEND.manifest";

/// Magic number opening a serialized manifest ("QSRM" little-endian).
const MANIFEST_MAGIC: u32 = 0x4d52_5351;

/// Newest manifest codec version this build reads and writes. v1 carries
/// generation + query blob; v2 appends the delta-chain length and the
/// retained-generation list. A manifest with no chain and no retained
/// generations is written as v1, byte-identical to pre-PR-9 builds.
const MANIFEST_VERSION: u32 = 2;

/// The commit record of a suspend: which `SuspendedQuery` blob is current.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuspendManifest {
    /// Monotone suspend counter for this database directory. Each suspend
    /// commits generation `n + 1` and then garbage-collects generation
    /// `n`'s blobs (unless retention keeps it).
    pub generation: u64,
    /// Blob holding the committed `SuspendedQuery`.
    pub query: BlobId,
    /// Longest delta chain under this generation (0 = every dump is a
    /// full checkpoint). Drives compaction and lets tools report resume
    /// depth without decoding the `SuspendedQuery`.
    pub chain_len: u64,
    /// Older generations retention keeps recoverable, newest first:
    /// `(generation, SuspendedQuery blob)`. Their blob closures (records,
    /// fallbacks, delta parents) stay live until they age off this list.
    pub retained: Vec<(u64, BlobId)>,
}

impl SuspendManifest {
    /// A v1-shaped manifest: no delta chain, nothing retained.
    pub fn new(generation: u64, query: BlobId) -> Self {
        SuspendManifest {
            generation,
            query,
            chain_len: 0,
            retained: Vec::new(),
        }
    }
}

// Framed like `SuspendedQuery`: magic, version, checksum, length-prefixed
// body. A bit flip anywhere in the file decodes to a clean error.
impl Encode for SuspendManifest {
    fn encode(&self, enc: &mut Encoder) {
        let v1 = self.chain_len == 0 && self.retained.is_empty();
        let mut body = Encoder::new();
        body.put_u64(self.generation);
        self.query.encode(&mut body);
        if !v1 {
            body.put_u64(self.chain_len);
            body.put_u32(self.retained.len() as u32);
            for (g, q) in &self.retained {
                body.put_u64(*g);
                q.encode(&mut body);
            }
        }
        let body = body.finish();
        enc.put_u32(MANIFEST_MAGIC);
        enc.put_u32(if v1 { 1 } else { MANIFEST_VERSION });
        enc.put_u64(fnv1a(&body));
        enc.put_bytes(&body);
    }
}

impl Decode for SuspendManifest {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let magic = dec.get_u32()?;
        if magic != MANIFEST_MAGIC {
            return Err(StorageError::corrupt(format!(
                "not a suspend manifest: bad magic {magic:#010x}"
            )));
        }
        let version = dec.get_u32()?;
        if !(1..=MANIFEST_VERSION).contains(&version) {
            return Err(StorageError::VersionMismatch {
                what: "SuspendManifest".into(),
                expected: MANIFEST_VERSION,
                actual: version,
            });
        }
        let expected = dec.get_u64()?;
        let body = dec.get_bytes()?;
        let actual = fnv1a(body);
        if actual != expected {
            return Err(StorageError::checksum_mismatch(
                "SuspendManifest body",
                expected,
                actual,
            ));
        }
        let mut bdec = Decoder::new(body);
        let mut m = SuspendManifest::new(bdec.get_u64()?, BlobId::decode(&mut bdec)?);
        if version >= 2 {
            m.chain_len = bdec.get_u64()?;
            let n = bdec.get_u32()? as usize;
            for _ in 0..n {
                let g = bdec.get_u64()?;
                let q = BlobId::decode(&mut bdec)?;
                m.retained.push((g, q));
            }
        }
        if !bdec.is_exhausted() {
            return Err(StorageError::corrupt(format!(
                "SuspendManifest body: {} trailing bytes",
                bdec.remaining()
            )));
        }
        Ok(m)
    }
}

/// Read the committed manifest, if any. `Ok(None)` is the clean "no
/// suspend happened" state.
pub fn read_manifest(db: &Database) -> std::result::Result<Option<SuspendManifest>, ResumeError> {
    read_manifest_named(db, SUSPEND_MANIFEST)
}

/// [`read_manifest`] for an explicitly named manifest sidecar. The
/// multi-session server gives each session its own manifest name, so N
/// suspended sessions commit N independent generation chains in one
/// database directory.
pub fn read_manifest_named(
    db: &Database,
    name: &str,
) -> std::result::Result<Option<SuspendManifest>, ResumeError> {
    let backend = db.backend();
    let bytes = with_retries(|| backend.read_manifest(name)).map_err(ResumeError::Storage)?;
    match bytes {
        None => Ok(None),
        Some(b) => SuspendManifest::decode_from_slice(&b)
            .map(Some)
            .map_err(ResumeError::ManifestCorrupt),
    }
}

/// Atomically commit `manifest` as the current suspend state.
pub fn commit_manifest(db: &Database, manifest: &SuspendManifest) -> Result<()> {
    commit_manifest_named(db, SUSPEND_MANIFEST, manifest)
}

/// [`commit_manifest`] under an explicit manifest sidecar name.
pub fn commit_manifest_named(db: &Database, name: &str, manifest: &SuspendManifest) -> Result<()> {
    db.backend().commit_manifest(name, &manifest.encode_to_vec())
}

/// Remove the manifest, returning the directory to the clean "no suspend"
/// state. Called after a resumed query runs to completion.
pub fn clear_manifest(db: &Database) -> Result<()> {
    clear_manifest_named(db, SUSPEND_MANIFEST)
}

/// [`clear_manifest`] under an explicit manifest sidecar name.
pub fn clear_manifest_named(db: &Database, name: &str) -> Result<()> {
    db.backend().remove_manifest(name)
}

/// Structured resume failures. Everything the resume path can hit maps to
/// one of these, so callers can distinguish "retry elsewhere" from "state
/// is gone" from "wrong database".
#[derive(Debug)]
pub enum ResumeError {
    /// The manifest file exists but does not decode (torn by a crash the
    /// atomic-commit protocol should have prevented, or rotted on disk).
    ManifestCorrupt(StorageError),
    /// The committed `SuspendedQuery` blob is missing, fails its checksum,
    /// or was written by an incompatible codec version.
    SuspendedQueryUnreadable(StorageError),
    /// The plan specification inside the `SuspendedQuery` does not decode.
    IncompatiblePlan(String),
    /// The plan references a table this database does not have.
    MissingTable(String),
    /// An operator's dump blob is missing or corrupt and no GoBack
    /// fallback was recorded for it at suspend time.
    DumpUnavailable {
        /// The operator whose dump is gone.
        op: OpId,
        /// The underlying storage failure.
        source: StorageError,
    },
    /// Any other storage failure (including transient errors that
    /// exhausted their retry budget).
    Storage(StorageError),
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::ManifestCorrupt(e) => write!(f, "suspend manifest is corrupt: {e}"),
            ResumeError::SuspendedQueryUnreadable(e) => {
                write!(f, "SuspendedQuery is unreadable: {e}")
            }
            ResumeError::IncompatiblePlan(m) => write!(f, "plan spec does not decode: {m}"),
            ResumeError::MissingTable(t) => {
                write!(f, "plan references table '{t}' which this database lacks")
            }
            ResumeError::DumpUnavailable { op, source } => write!(
                f,
                "dump blob for {op} is unavailable and no GoBack fallback exists: {source}"
            ),
            ResumeError::Storage(e) => write!(f, "storage failure during resume: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::ManifestCorrupt(e)
            | ResumeError::SuspendedQueryUnreadable(e)
            | ResumeError::DumpUnavailable { source: e, .. }
            | ResumeError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for ResumeError {
    fn from(e: StorageError) -> Self {
        ResumeError::Storage(e)
    }
}

// Legacy `Result<_, StorageError>` entry points funnel structured resume
// failures back into the storage error space without losing the message.
impl From<ResumeError> for StorageError {
    fn from(e: ResumeError) -> Self {
        match e {
            ResumeError::ManifestCorrupt(s)
            | ResumeError::SuspendedQueryUnreadable(s)
            | ResumeError::Storage(s) => s,
            ResumeError::IncompatiblePlan(m) => StorageError::corrupt(m),
            ResumeError::MissingTable(t) => StorageError::NotFound(format!("table '{t}'")),
            ResumeError::DumpUnavailable { op, source } => StorageError::corrupt(format!(
                "dump blob for {op} unavailable ({source}) with no fallback"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsr_storage::FileId;

    fn sample() -> SuspendManifest {
        SuspendManifest::new(
            3,
            BlobId {
                file: FileId(12),
                len: 4096,
                checksum: 0xFEED,
            },
        )
    }

    #[test]
    fn manifest_roundtrips_and_detects_damage() {
        let m = sample();
        let bytes = m.encode_to_vec();
        assert_eq!(
            u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            1,
            "no chain, nothing retained: the frame stays v1"
        );
        assert_eq!(SuspendManifest::decode_from_slice(&bytes).unwrap(), m);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << (i % 8);
            assert!(
                SuspendManifest::decode_from_slice(&bad).is_err(),
                "flip at byte {i} decoded silently"
            );
            assert!(
                SuspendManifest::decode_from_slice(&bytes[..i]).is_err(),
                "truncation to {i} bytes decoded silently"
            );
        }
    }

    #[test]
    fn manifest_v2_roundtrips_chain_and_retention() {
        let mut m = sample();
        m.chain_len = 2;
        m.retained = vec![
            (
                2,
                BlobId {
                    file: FileId(9),
                    len: 10,
                    checksum: 0xBEEF,
                },
            ),
            (
                1,
                BlobId {
                    file: FileId(4),
                    len: 20,
                    checksum: 0xCAFE,
                },
            ),
        ];
        let bytes = m.encode_to_vec();
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 2);
        assert_eq!(SuspendManifest::decode_from_slice(&bytes).unwrap(), m);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 1 << (i % 8);
            assert!(
                SuspendManifest::decode_from_slice(&bad).is_err(),
                "flip at byte {i} of a v2 manifest decoded silently"
            );
            assert!(SuspendManifest::decode_from_slice(&bytes[..i]).is_err());
        }
    }
}
