//! The extended iterator interface (paper §2 and Table 1).
//!
//! Operators are explicit state machines: `next()` returns
//! [`Poll::Suspended`] when a suspend request lands mid-operation, leaving
//! every field intact so the suspend phase can capture the exact state.
//! The interface extensions are `sign_contract`, `suspend` /
//! `suspend(ctr)` (one method with a [`SuspendMode`] argument), and
//! `resume` — plus `side_snapshot` (positional repositioning) and
//! `rewind` (block-NLJ inner rescans), which the paper leaves implicit in
//! its operator descriptions.

use crate::context::ExecContext;
use qsr_core::{
    Batch, CkptId, CtrId, OpId, OpSuspendInputs, SideSnapshot, SuspendPlan, SuspendedQuery,
};
use qsr_storage::{Result, Schema, StorageError, Tuple};

/// Result of pulling one tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Poll {
    /// The next output tuple.
    Tuple(Tuple),
    /// End of stream.
    Done,
    /// A suspend request was observed; the operator tree is frozen at the
    /// suspend point and control returns to the lifecycle driver.
    Suspended,
}

/// Result of pulling one batch of tuples.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchPoll {
    /// The next output batch (non-empty; selection mask applied by the
    /// consumer via [`Batch::to_tuples`] / [`Batch::live_rows`]).
    Batch(Batch),
    /// End of stream.
    Done,
    /// A suspend request was observed. Any rows produced before the
    /// request were already returned in earlier (possibly partial)
    /// batches; the tree is frozen exactly as in the tuple path.
    Suspended,
}

/// How an operator is being suspended (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspendMode {
    /// `Suspend()`: suspend to the current point in time.
    Current,
    /// `Suspend(Ctr)`: suspend to the point where contract `Ctr` was
    /// signed; the operator must be able to regenerate its output from
    /// that point on resume.
    Contract(CtrId),
}

/// A suspendable physical operator.
///
/// `Send` is part of the contract: the threaded scheduler moves whole
/// operator trees (inside a live [`crate::QueryExecution`]) between worker
/// threads, so every operator's state must be transferable. Shared
/// infrastructure (`Database`, pool, ledger) is reached through `Arc`s in
/// the [`ExecContext`]; per-operator state is owned.
pub trait Operator: Send {
    /// This operator's id (stable across suspend/resume).
    fn op_id(&self) -> OpId;

    /// Output schema.
    fn schema(&self) -> &Schema;

    /// Open the operator tree for fresh execution: acquire cursors, open
    /// children, and create the initial proactive checkpoint (stateful
    /// operators checkpoint "just before execution starts", Example 8).
    fn open(&mut self, ctx: &mut ExecContext) -> Result<()>;

    /// Pull the next tuple.
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Poll>;

    /// Pull up to `max` tuples as a columnar [`Batch`]. The default
    /// adapter loops `next()`, so every operator is batch-capable; the
    /// high-volume operators override it with genuinely vectorized loops.
    ///
    /// Contract: per-tuple work-unit accounting (`ExecContext::tick`) and
    /// page-I/O charges are identical to the tuple path — batch mode may
    /// only change *when* work units land within a batch, never how many.
    /// A pending suspend request ends the batch early: the partial batch
    /// is returned first and the *next* call reports `Suspended`, so no
    /// produced row is ever dropped.
    fn next_batch(&mut self, ctx: &mut ExecContext, max: usize) -> Result<BatchPoll> {
        let max = max.max(1);
        let mut batch: Option<Batch> = None;
        loop {
            match self.next(ctx)? {
                Poll::Tuple(t) => {
                    let b = batch
                        .get_or_insert_with(|| Batch::with_capacity(t.arity(), max));
                    b.push(&t);
                    if b.len() >= max || ctx.suspend_pending() {
                        return Ok(BatchPoll::Batch(batch.expect("just inserted")));
                    }
                }
                Poll::Done => {
                    return Ok(match batch {
                        Some(b) => BatchPoll::Batch(b),
                        None => BatchPoll::Done,
                    })
                }
                Poll::Suspended => {
                    return Ok(match batch {
                        Some(b) => BatchPoll::Batch(b),
                        None => BatchPoll::Suspended,
                    })
                }
            }
        }
    }

    /// Release resources.
    fn close(&mut self, ctx: &mut ExecContext) -> Result<()>;

    /// `SignContract(Ckpt)`: establish a contract for the parent's
    /// checkpoint `parent_ckpt`, returning the contract id. Stateful
    /// operators rely on their latest proactive checkpoint; stateless ones
    /// create a reactive checkpoint and cascade to their children.
    fn sign_contract(&mut self, ctx: &mut ExecContext, parent_ckpt: CkptId) -> Result<CtrId>;

    /// Capture a positional side snapshot: control state sufficient to
    /// reposition this subtree to the current point (no replay). Only
    /// required of operators that can appear in positional subtrees
    /// (scans, filters, projections); others may return an error.
    fn side_snapshot(&mut self, ctx: &mut ExecContext) -> Result<SideSnapshot>;

    /// Carry out the suspend phase for this subtree: write this operator's
    /// [`qsr_core::OpSuspendRecord`] into `sq` according to `plan`, and
    /// recurse into children with the appropriate modes.
    fn suspend(
        &mut self,
        ctx: &mut ExecContext,
        mode: SuspendMode,
        plan: &SuspendPlan,
        sq: &mut SuspendedQuery,
    ) -> Result<()>;

    /// Reconstruct execution state from `sq` (children first), so that the
    /// next `next()` call produces the tuple immediately after the last
    /// pre-suspend output.
    fn resume(&mut self, ctx: &mut ExecContext, sq: &SuspendedQuery) -> Result<()>;

    /// Statistics for the suspend-plan optimizer, snapshotted at suspend
    /// time.
    fn suspend_inputs(&self) -> OpSuspendInputs;

    /// Restart this operator's output from the beginning (block-NLJ inner
    /// rescans). Only rescannable subtrees (scan / filter / project chains)
    /// support it.
    fn rewind(&mut self, ctx: &mut ExecContext) -> Result<()> {
        let _ = ctx;
        Err(StorageError::invalid(format!(
            "{} does not support rewind",
            self.op_id()
        )))
    }

    /// Visit this operator and all descendants (driver utility).
    fn visit(&self, f: &mut dyn FnMut(&dyn Operator));

    /// Visit this operator and all descendants mutably. The driver uses
    /// this to run a *shadow* suspend pass on one subtree when generating
    /// GoBack fallback records for an operator whose primary strategy is
    /// DumpState.
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Operator));
}

/// Pull from a child, forwarding `Suspended`/`Done` upward. Usage:
/// `let t = match child.next(ctx)? { ... }` is verbose; this macro keeps
/// operator code at the paper's pseudocode altitude.
#[macro_export]
macro_rules! pull {
    ($child:expr, $ctx:expr) => {
        match $child.next($ctx)? {
            $crate::operator::Poll::Tuple(t) => Some(t),
            $crate::operator::Poll::Done => None,
            $crate::operator::Poll::Suspended => return Ok($crate::operator::Poll::Suspended),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_equality() {
        assert_eq!(Poll::Done, Poll::Done);
        assert_ne!(Poll::Done, Poll::Suspended);
    }

    #[test]
    fn suspend_mode_carries_contract() {
        let m = SuspendMode::Contract(CtrId(4));
        assert!(matches!(m, SuspendMode::Contract(CtrId(4))));
        assert_eq!(SuspendMode::Current, SuspendMode::Current);
    }
}
