//! The extended iterator interface (paper §2 and Table 1).
//!
//! Operators are explicit state machines: `next()` returns
//! [`Poll::Suspended`] when a suspend request lands mid-operation, leaving
//! every field intact so the suspend phase can capture the exact state.
//! The interface extensions are `sign_contract`, `suspend` /
//! `suspend(ctr)` (one method with a [`SuspendMode`] argument), and
//! `resume` — plus `side_snapshot` (positional repositioning) and
//! `rewind` (block-NLJ inner rescans), which the paper leaves implicit in
//! its operator descriptions.

use crate::context::ExecContext;
use qsr_core::{CkptId, CtrId, OpId, OpSuspendInputs, SideSnapshot, SuspendPlan, SuspendedQuery};
use qsr_storage::{Result, Schema, StorageError, Tuple};

/// Result of pulling one tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Poll {
    /// The next output tuple.
    Tuple(Tuple),
    /// End of stream.
    Done,
    /// A suspend request was observed; the operator tree is frozen at the
    /// suspend point and control returns to the lifecycle driver.
    Suspended,
}

/// How an operator is being suspended (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspendMode {
    /// `Suspend()`: suspend to the current point in time.
    Current,
    /// `Suspend(Ctr)`: suspend to the point where contract `Ctr` was
    /// signed; the operator must be able to regenerate its output from
    /// that point on resume.
    Contract(CtrId),
}

/// A suspendable physical operator.
pub trait Operator {
    /// This operator's id (stable across suspend/resume).
    fn op_id(&self) -> OpId;

    /// Output schema.
    fn schema(&self) -> &Schema;

    /// Open the operator tree for fresh execution: acquire cursors, open
    /// children, and create the initial proactive checkpoint (stateful
    /// operators checkpoint "just before execution starts", Example 8).
    fn open(&mut self, ctx: &mut ExecContext) -> Result<()>;

    /// Pull the next tuple.
    fn next(&mut self, ctx: &mut ExecContext) -> Result<Poll>;

    /// Release resources.
    fn close(&mut self, ctx: &mut ExecContext) -> Result<()>;

    /// `SignContract(Ckpt)`: establish a contract for the parent's
    /// checkpoint `parent_ckpt`, returning the contract id. Stateful
    /// operators rely on their latest proactive checkpoint; stateless ones
    /// create a reactive checkpoint and cascade to their children.
    fn sign_contract(&mut self, ctx: &mut ExecContext, parent_ckpt: CkptId) -> Result<CtrId>;

    /// Capture a positional side snapshot: control state sufficient to
    /// reposition this subtree to the current point (no replay). Only
    /// required of operators that can appear in positional subtrees
    /// (scans, filters, projections); others may return an error.
    fn side_snapshot(&mut self, ctx: &mut ExecContext) -> Result<SideSnapshot>;

    /// Carry out the suspend phase for this subtree: write this operator's
    /// [`qsr_core::OpSuspendRecord`] into `sq` according to `plan`, and
    /// recurse into children with the appropriate modes.
    fn suspend(
        &mut self,
        ctx: &mut ExecContext,
        mode: SuspendMode,
        plan: &SuspendPlan,
        sq: &mut SuspendedQuery,
    ) -> Result<()>;

    /// Reconstruct execution state from `sq` (children first), so that the
    /// next `next()` call produces the tuple immediately after the last
    /// pre-suspend output.
    fn resume(&mut self, ctx: &mut ExecContext, sq: &SuspendedQuery) -> Result<()>;

    /// Statistics for the suspend-plan optimizer, snapshotted at suspend
    /// time.
    fn suspend_inputs(&self) -> OpSuspendInputs;

    /// Restart this operator's output from the beginning (block-NLJ inner
    /// rescans). Only rescannable subtrees (scan / filter / project chains)
    /// support it.
    fn rewind(&mut self, ctx: &mut ExecContext) -> Result<()> {
        let _ = ctx;
        Err(StorageError::invalid(format!(
            "{} does not support rewind",
            self.op_id()
        )))
    }

    /// Visit this operator and all descendants (driver utility).
    fn visit(&self, f: &mut dyn FnMut(&dyn Operator));

    /// Visit this operator and all descendants mutably. The driver uses
    /// this to run a *shadow* suspend pass on one subtree when generating
    /// GoBack fallback records for an operator whose primary strategy is
    /// DumpState.
    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Operator));
}

/// Pull from a child, forwarding `Suspended`/`Done` upward. Usage:
/// `let t = match child.next(ctx)? { ... }` is verbose; this macro keeps
/// operator code at the paper's pseudocode altitude.
#[macro_export]
macro_rules! pull {
    ($child:expr, $ctx:expr) => {
        match $child.next($ctx)? {
            $crate::operator::Poll::Tuple(t) => Some(t),
            $crate::operator::Poll::Done => None,
            $crate::operator::Poll::Suspended => return Ok($crate::operator::Poll::Suspended),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_equality() {
        assert_eq!(Poll::Done, Poll::Done);
        assert_ne!(Poll::Done, Poll::Suspended);
    }

    #[test]
    fn suspend_mode_carries_contract() {
        let m = SuspendMode::Contract(CtrId(4));
        assert!(matches!(m, SuspendMode::Contract(CtrId(4))));
        assert_eq!(SuspendMode::Current, SuspendMode::Current);
    }
}
