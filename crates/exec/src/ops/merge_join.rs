//! Merge join with value packets (paper §4, "Merge Join").
//!
//! Both (sorted) children are **rebuild** children: the current value
//! packets are the heap state, rebuilt on resume by replaying the
//! deterministic advance/build machine from the checkpoint — with the
//! cross-product cursors then restored directly (no join recomputation;
//! §3.3 skipping). Minimal-heap-state points occur when a value packet is
//! exhausted; proactive checkpointing happens there. The one-tuple
//! lookaheads are part of the control state, exactly the "value packet
//! cursor" bookkeeping the paper describes.

use crate::context::ExecContext;
use crate::operator::{Operator, Poll, SuspendMode};
use qsr_core::{
    CkptId, CtrId, Migration, OpId, OpSuspendInputs, OpSuspendRecord, SideSnapshot, Strategy,
    SuspendPlan, SuspendedQuery,
};
use qsr_storage::{
    Decode, Decoder, Encode, Encoder, Result, Schema, StorageError, Tuple, TupleBlock,
};
use std::collections::VecDeque;

const ST_ADVANCE: u8 = 1;
const ST_BUILD_LEFT: u8 = 2;
const ST_BUILD_RIGHT: u8 = 3;
const ST_EMIT: u8 = 4;
const ST_DONE: u8 = 5;

#[derive(Debug, Clone, PartialEq)]
struct MjControl {
    state: u8,
    lfill: u64,
    rfill: u64,
    li: u64,
    ri: u64,
    lahead: Option<Tuple>,
    rahead: Option<Tuple>,
    l_done: bool,
    r_done: bool,
}

impl MjControl {
    /// Machine position ignoring the emission cursors (used as the
    /// roll-forward stop condition; the cursors are restored directly).
    fn machine_eq(&self, other: &MjControl) -> bool {
        self.state == other.state
            && self.lfill == other.lfill
            && self.rfill == other.rfill
            && self.lahead == other.lahead
            && self.rahead == other.rahead
            && self.l_done == other.l_done
            && self.r_done == other.r_done
    }
}

impl Encode for MjControl {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.state);
        enc.put_u64(self.lfill);
        enc.put_u64(self.rfill);
        enc.put_u64(self.li);
        enc.put_u64(self.ri);
        enc.put_option(&self.lahead);
        enc.put_option(&self.rahead);
        enc.put_bool(self.l_done);
        enc.put_bool(self.r_done);
    }
}

impl Decode for MjControl {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(MjControl {
            state: dec.get_u8()?,
            lfill: dec.get_u64()?,
            rfill: dec.get_u64()?,
            li: dec.get_u64()?,
            ri: dec.get_u64()?,
            lahead: dec.get_option()?,
            rahead: dec.get_option()?,
            l_done: dec.get_bool()?,
            r_done: dec.get_bool()?,
        })
    }
}

/// One machine transition's outcome.
enum Step {
    /// Keep stepping.
    Continue,
    /// An output tuple is available (state is `ST_EMIT`).
    Output(Tuple),
    /// Input exhausted.
    Finished,
    /// Suspend observed inside a child.
    Suspended,
}

/// Sort-merge equi-join over sorted inputs.
pub struct MergeJoin {
    op: OpId,
    left: Box<dyn Operator>,
    right: Box<dyn Operator>,
    left_key: usize,
    right_key: usize,
    schema: Schema,

    state: u8,
    lpacket: Vec<Tuple>,
    rpacket: Vec<Tuple>,
    li: usize,
    ri: usize,
    lahead: Option<Tuple>,
    rahead: Option<Tuple>,
    l_done: bool,
    r_done: bool,
    heap_bytes: usize,

    last_in_ctr: Option<CtrId>,
    produced_since_sign: u64,
    migration_enabled: bool,
    pending: VecDeque<Tuple>,
}

impl MergeJoin {
    /// Create a merge join of sorted inputs on
    /// `left.left_key == right.right_key`.
    pub fn new(
        op: OpId,
        left: Box<dyn Operator>,
        right: Box<dyn Operator>,
        left_key: usize,
        right_key: usize,
    ) -> Self {
        let schema = left.schema().join(right.schema());
        Self {
            op,
            left,
            right,
            left_key,
            right_key,
            schema,
            state: ST_ADVANCE,
            lpacket: Vec::new(),
            rpacket: Vec::new(),
            li: 0,
            ri: 0,
            lahead: None,
            rahead: None,
            l_done: false,
            r_done: false,
            heap_bytes: 0,
            last_in_ctr: None,
            produced_since_sign: 0,
            migration_enabled: true,
            pending: VecDeque::new(),
        }
    }

    /// Disable contract migration (ablation toggle).
    pub fn without_migration(mut self) -> Self {
        self.migration_enabled = false;
        self
    }

    fn control(&self) -> MjControl {
        MjControl {
            state: self.state,
            lfill: self.lpacket.len() as u64,
            rfill: self.rpacket.len() as u64,
            li: self.li as u64,
            ri: self.ri as u64,
            lahead: self.lahead.clone(),
            rahead: self.rahead.clone(),
            l_done: self.l_done,
            r_done: self.r_done,
        }
    }

    fn lkey(&self, t: &Tuple) -> Result<i64> {
        t.get(self.left_key).as_int()
    }

    fn rkey(&self, t: &Tuple) -> Result<i64> {
        t.get(self.right_key).as_int()
    }

    /// Proactive checkpoint at a packet boundary (both packets empty).
    fn checkpoint(&mut self, ctx: &mut ExecContext) -> Result<()> {
        if !ctx.checkpoints_enabled {
            return Ok(());
        }
        debug_assert!(self.lpacket.is_empty() && self.rpacket.is_empty());
        let control = self.control().encode_to_vec();
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, control.clone(), work);
        if !self.l_done || self.lahead.is_some() {
            self.left.sign_contract(ctx, ck)?;
        }
        if !self.r_done || self.rahead.is_some() {
            self.right.sign_contract(ctx, ck)?;
        }
        if self.migration_enabled && self.produced_since_sign == 0 {
            if let Some(ctr) = self.last_in_ctr {
                if ctx.graph.contract(ctr).is_some() {
                    ctx.graph.migrate_contract(
                        ctr,
                        Migration::to(ck).with_control(control).with_work(work),
                    )?;
                }
            }
        }
        ctx.graph.prune_for(self.op);
        Ok(())
    }

    /// One machine transition. `replay` suppresses checkpointing (used
    /// during resume roll-forward).
    fn step(&mut self, ctx: &mut ExecContext, replay: bool) -> Result<Step> {
        match self.state {
            ST_ADVANCE => {
                // Lazily (re)fill the lookaheads — this also covers the
                // very first call and re-entry after a mid-pull suspension.
                if self.lahead.is_none() && !self.l_done {
                    match self.left.next(ctx)? {
                        Poll::Tuple(t) => {
                            self.lahead = Some(t);
                            ctx.tick(self.op);
                        }
                        Poll::Done => self.l_done = true,
                        Poll::Suspended => return Ok(Step::Suspended),
                    }
                    return Ok(Step::Continue);
                }
                if self.rahead.is_none() && !self.r_done {
                    match self.right.next(ctx)? {
                        Poll::Tuple(t) => {
                            self.rahead = Some(t);
                            ctx.tick(self.op);
                        }
                        Poll::Done => self.r_done = true,
                        Poll::Suspended => return Ok(Step::Suspended),
                    }
                    return Ok(Step::Continue);
                }
                let (Some(l), Some(r)) = (self.lahead.clone(), self.rahead.clone()) else {
                    self.state = ST_DONE;
                    return Ok(Step::Finished);
                };
                let lk = self.lkey(&l)?;
                let rk = self.rkey(&r)?;
                if lk < rk {
                    self.lahead = None; // discarded: no right match
                } else if lk > rk {
                    self.rahead = None;
                } else {
                    self.state = ST_BUILD_LEFT;
                }
                Ok(Step::Continue)
            }
            ST_BUILD_LEFT => {
                if let Some(t) = self.lahead.clone() {
                    let key = if self.lpacket.is_empty() {
                        self.lkey(&t)?
                    } else {
                        self.lkey(&self.lpacket[0])?
                    };
                    if self.lkey(&t)? == key {
                        self.lahead = None;
                        self.heap_bytes += t.heap_bytes();
                        self.lpacket.push(t);
                    } else {
                        self.state = ST_BUILD_RIGHT;
                    }
                } else if self.l_done {
                    self.state = ST_BUILD_RIGHT;
                } else {
                    match self.left.next(ctx)? {
                        Poll::Tuple(t) => {
                            self.lahead = Some(t);
                            ctx.tick(self.op);
                        }
                        Poll::Done => self.l_done = true,
                        Poll::Suspended => return Ok(Step::Suspended),
                    }
                }
                Ok(Step::Continue)
            }
            ST_BUILD_RIGHT => {
                let key = self.lkey(&self.lpacket[0])?;
                if let Some(r) = self.rahead.clone() {
                    if self.rkey(&r)? == key {
                        self.rahead = None;
                        self.heap_bytes += r.heap_bytes();
                        self.rpacket.push(r);
                    } else if self.rpacket.is_empty() {
                        // No right matches: discard the left packet.
                        self.discard_packets(ctx, replay)?;
                    } else {
                        self.li = 0;
                        self.ri = 0;
                        self.state = ST_EMIT;
                    }
                } else if self.r_done {
                    if self.rpacket.is_empty() {
                        self.discard_packets(ctx, replay)?;
                    } else {
                        self.li = 0;
                        self.ri = 0;
                        self.state = ST_EMIT;
                    }
                } else {
                    match self.right.next(ctx)? {
                        Poll::Tuple(t) => {
                            self.rahead = Some(t);
                            ctx.tick(self.op);
                        }
                        Poll::Done => self.r_done = true,
                        Poll::Suspended => return Ok(Step::Suspended),
                    }
                }
                Ok(Step::Continue)
            }
            ST_EMIT => {
                if self.ri < self.rpacket.len() && self.li < self.lpacket.len() {
                    let out = self.lpacket[self.li].join(&self.rpacket[self.ri]);
                    self.li += 1;
                    if self.li >= self.lpacket.len() {
                        self.li = 0;
                        self.ri += 1;
                    }
                    self.produced_since_sign += 1;
                    return Ok(Step::Output(out));
                }
                self.discard_packets(ctx, replay)?;
                Ok(Step::Continue)
            }
            ST_DONE => Ok(Step::Finished),
            s => Err(StorageError::corrupt(format!("bad MJ state {s}"))),
        }
    }

    fn discard_packets(&mut self, ctx: &mut ExecContext, replay: bool) -> Result<()> {
        self.lpacket.clear();
        self.rpacket.clear();
        self.heap_bytes = 0;
        self.li = 0;
        self.ri = 0;
        self.state = ST_ADVANCE;
        if !replay {
            self.checkpoint(ctx)?; // minimal-heap-state point
        }
        Ok(())
    }

    fn restore_control(&mut self, c: &MjControl) {
        self.state = c.state;
        self.li = c.li as usize;
        self.ri = c.ri as usize;
        self.lahead = c.lahead.clone();
        self.rahead = c.rahead.clone();
        self.l_done = c.l_done;
        self.r_done = c.r_done;
    }
}

impl Operator for MergeJoin {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.left.open(ctx)?;
        self.right.open(ctx)?;
        if !ctx.checkpoints_enabled {
            return Ok(());
        }
        // Initial checkpoint before execution starts.
        let control = self.control().encode_to_vec();
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, control, work);
        self.left.sign_contract(ctx, ck)?;
        self.right.sign_contract(ctx, ck)?;
        ctx.graph.prune_for(self.op);
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Poll> {
        if let Some(t) = self.pending.pop_front() {
            return Ok(Poll::Tuple(t));
        }
        loop {
            if ctx.suspend_pending() {
                return Ok(Poll::Suspended);
            }
            match self.step(ctx, false)? {
                Step::Continue => continue,
                Step::Output(t) => return Ok(Poll::Tuple(t)),
                Step::Finished => return Ok(Poll::Done),
                Step::Suspended => return Ok(Poll::Suspended),
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.left.close(ctx)?;
        self.right.close(ctx)
    }

    fn sign_contract(&mut self, ctx: &mut ExecContext, parent_ckpt: CkptId) -> Result<CtrId> {
        let latest = match ctx.graph.latest_ckpt(self.op) {
            Some(ck) => ck,
            None => ctx.graph.create_barrier_checkpoint(
                self.op,
                self.control().encode_to_vec(),
                ctx.work.get(self.op),
            ),
        };
        let ctr = ctx.graph.sign_contract(
            parent_ckpt,
            self.op,
            latest,
            self.control().encode_to_vec(),
            ctx.work.get(self.op),
            vec![],
        )?;
        self.last_in_ctr = Some(ctr);
        self.produced_since_sign = 0;
        Ok(ctr)
    }

    fn side_snapshot(&mut self, _ctx: &mut ExecContext) -> Result<SideSnapshot> {
        Err(StorageError::invalid(
            "merge join cannot appear in a positional subtree",
        ))
    }

    fn suspend(
        &mut self,
        ctx: &mut ExecContext,
        mode: SuspendMode,
        plan: &SuspendPlan,
        sq: &mut SuspendedQuery,
    ) -> Result<()> {
        let strategy = plan.get(self.op);
        // Resolve the target control state and child enforcement.
        let (resume_point, saved, ckpt_for_children) = match mode {
            SuspendMode::Current => match strategy {
                Strategy::Dump => (self.control().encode_to_vec(), Vec::new(), None),
                Strategy::GoBack { .. } => {
                    let latest = ctx
                        .graph
                        .latest_ckpt(self.op)
                        .ok_or_else(|| StorageError::invalid("merge join has no checkpoint"))?;
                    (self.control().encode_to_vec(), Vec::new(), Some(latest))
                }
            },
            SuspendMode::Contract(ctr_id) => {
                let ctr = ctx
                    .graph
                    .contract(ctr_id)
                    .ok_or_else(|| StorageError::invalid(format!("unknown contract {ctr_id}")))?
                    .clone();
                match strategy {
                    Strategy::Dump => {
                        // c = 0: packets unchanged since signing.
                        (ctr.control.clone(), ctr.saved_tuples.clone(), None)
                    }
                    Strategy::GoBack { .. } => (
                        ctr.control.clone(),
                        ctr.saved_tuples.clone(),
                        Some(ctr.child_ckpt),
                    ),
                }
            }
        };

        let heap_dump = match strategy {
            Strategy::Dump if !self.lpacket.is_empty() || !self.rpacket.is_empty() => {
                Some(ctx.put_dump_value(self.op, &PacketDump {
                    left: self.lpacket.clone(),
                    right: self.rpacket.clone(),
                })?)
            }
            _ => None,
        };
        // For GoBack, the replay starts from the fulfilling checkpoint's
        // own control state (its lookaheads/done flags); ship it in `aux`.
        let aux = match ckpt_for_children {
            Some(ck) => ctx
                .graph
                .checkpoint(ck)
                .map(|c| c.control.clone())
                .unwrap_or_default(),
            None => Vec::new(),
        };
        sq.put_record(OpSuspendRecord {
            op: self.op,
            strategy,
            resume_point,
            heap_dump,
            saved_tuples: saved,
            aux,
        });

        match ckpt_for_children {
            Some(ck) => {
                for (child, _key) in [(&mut self.left, 0usize), (&mut self.right, 1usize)] {
                    match ctx.graph.contract_from(ck, child.op_id()).map(|c| c.id) {
                        Some(ctr) => child.suspend(ctx, SuspendMode::Contract(ctr), plan, sq)?,
                        None => child.suspend(ctx, SuspendMode::Current, plan, sq)?,
                    }
                }
                Ok(())
            }
            None => {
                self.left.suspend(ctx, SuspendMode::Current, plan, sq)?;
                self.right.suspend(ctx, SuspendMode::Current, plan, sq)
            }
        }
    }

    fn resume(&mut self, ctx: &mut ExecContext, sq: &SuspendedQuery) -> Result<()> {
        self.left.resume(ctx, sq)?;
        self.right.resume(ctx, sq)?;
        let rec = sq.record(self.op)?;
        let target = MjControl::decode_from_slice(&rec.resume_point)?;
        self.lpacket.clear();
        self.rpacket.clear();
        self.heap_bytes = 0;
        match (&rec.strategy, &rec.heap_dump) {
            (Strategy::Dump, Some(blob)) => {
                let PacketDump { left, right } = ctx.get_dump_value_for(self.op, *blob)?;
                for t in left.iter().chain(right.iter()) {
                    self.heap_bytes += t.heap_bytes();
                }
                self.lpacket = left;
                self.rpacket = right;
                self.restore_control(&target);
            }
            (Strategy::Dump, None) => {
                self.restore_control(&target);
            }
            (Strategy::GoBack { .. }, _) => {
                // Replay the deterministic machine from the checkpoint
                // state (children already repositioned) until the machine
                // position matches the target, then restore the cursors.
                // The checkpoint state is the post-discard state: packets
                // empty, ST_ADVANCE, lookaheads re-pulled lazily.
                let ck_control = MjControl {
                    state: ST_ADVANCE,
                    lfill: 0,
                    rfill: 0,
                    li: 0,
                    ri: 0,
                    lahead: None,
                    rahead: None,
                    l_done: false,
                    r_done: false,
                };
                // The checkpoint's own control (with its aheads/dones) is
                // what we actually resume from; it is stored in the graph,
                // but after a process restart the graph may be gone — so
                // the suspend phase recorded the *target*, and replay
                // starts from the machine's reset state with children
                // repositioned to the checkpoint contracts. The aheads at
                // the checkpoint travel in the record's `aux` field.
                self.restore_control(&ck_control);
                // Re-pull aheads: at a packet-boundary checkpoint the
                // aheads were the first tuples of the upcoming packets;
                // the children contracts were signed *after* those tuples
                // were consumed... they are stored in the checkpoint
                // control which travels as `aux`.
                if !rec.aux.is_empty() {
                    let ck = MjControl::decode_from_slice(&rec.aux)?;
                    self.restore_control(&ck);
                }
                loop {
                    if self.control().machine_eq(&target) {
                        break;
                    }
                    match self.step(ctx, true)? {
                        Step::Continue => {}
                        Step::Output(_) => {
                            return Err(StorageError::corrupt(
                                "merge join emitted during roll-forward",
                            ))
                        }
                        Step::Finished => {
                            return Err(StorageError::corrupt(
                                "merge join finished before reaching target",
                            ))
                        }
                        Step::Suspended => {
                            return Err(StorageError::invalid(
                                "suspend during resume roll-forward is not supported",
                            ))
                        }
                    }
                }
                self.li = target.li as usize;
                self.ri = target.ri as usize;
            }
        }
        self.pending = rec
            .saved_tuples
            .iter()
            .map(|b| Tuple::decode_from_slice(b))
            .collect::<Result<_>>()?;
        self.last_in_ctr = None;
        self.produced_since_sign = 0;
        Ok(())
    }

    fn suspend_inputs(&self) -> OpSuspendInputs {
        OpSuspendInputs {
            heap_bytes: self.heap_bytes,
            control_bytes: 64
                + self.lahead.as_ref().map(Tuple::heap_bytes).unwrap_or(0)
                + self.rahead.as_ref().map(Tuple::heap_bytes).unwrap_or(0),
        }
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Operator)) {
        f(self);
        self.left.visit(f);
        self.right.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Operator)) {
        f(self);
        self.left.visit_mut(f);
        self.right.visit_mut(f);
    }
}

/// Heap-dump payload: both value packets, each stored as a column-major
/// [`TupleBlock`] (raw value runs, no per-tuple headers).
struct PacketDump {
    left: Vec<Tuple>,
    right: Vec<Tuple>,
}

impl Encode for PacketDump {
    fn encode(&self, enc: &mut Encoder) {
        TupleBlock(self.left.clone()).encode(enc);
        TupleBlock(self.right.clone()).encode(enc);
    }
}

impl Decode for PacketDump {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(PacketDump {
            left: TupleBlock::decode(dec)?.0,
            right: TupleBlock::decode(dec)?.0,
        })
    }
}
