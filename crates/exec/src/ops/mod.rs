//! Physical operators (paper §4 implements each one's checkpointing,
//! contracting, suspend, and resume behavior).

pub mod agg;
pub mod block_nlj;
pub mod filter;
pub mod hash_agg;
pub mod hash_join;
pub mod index_nlj;
pub mod merge_join;
pub mod project;
pub mod scan;
pub mod sort;

pub use agg::{AggFn, StreamAgg};
pub use block_nlj::BlockNlj;
pub use filter::{Filter, Predicate};
pub use hash_agg::HashAgg;
pub use hash_join::HashJoin;
pub use index_nlj::IndexNlj;
pub use merge_join::MergeJoin;
pub use project::Project;
pub use scan::TableScan;

use crate::operator::Operator;
use qsr_core::{OpSuspendRecord, SideSnapshot, Strategy, SuspendPlan, SuspendedQuery};

/// Write resume records for a positional subtree from its side snapshot:
/// each operator is repositioned to the recorded control state — pure
/// seeking, no replay (this is the mechanics behind §3.3's "skipping").
pub fn record_side_snapshot(sq: &mut SuspendedQuery, snap: &SideSnapshot) {
    sq.put_record(OpSuspendRecord {
        op: snap.op,
        strategy: Strategy::Dump,
        resume_point: snap.control.clone(),
        heap_dump: None,
        saved_tuples: Vec::new(),
        aux: Vec::new(),
    });
    for child in &snap.children {
        record_side_snapshot(sq, child);
    }
}

/// The effective strategy for an operator at suspend time: what the plan
/// says, defaulting to Dump (always valid for operators the optimizer did
/// not consider, e.g. positional scans).
pub fn planned_strategy(plan: &SuspendPlan, op: qsr_core::OpId) -> Strategy {
    plan.get(op)
}

/// Boxed operator alias.
pub type BoxedOp = Box<dyn Operator>;
