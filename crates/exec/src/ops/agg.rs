//! Grouping with aggregation and duplicate elimination over sorted input
//! (paper §4, "Grouping with aggregation, duplicate elimination").
//!
//! These are the sort-based variants: they stream over input sorted by the
//! group column, carrying only the current group's accumulator — which is
//! "stored as part of any requested contract", so the operators can
//! "resume from the exact point" as the paper says. Hash-based grouping is
//! expressed by composing `HashJoin`-style partitioning with these.

use crate::context::ExecContext;
use crate::operator::{BatchPoll, Operator, Poll, SuspendMode};
use qsr_core::{
    Batch, CkptId, ColumnVec, CtrId, OpId, OpSuspendInputs, OpSuspendRecord, SideSnapshot,
    SuspendPlan, SuspendedQuery,
};
use qsr_storage::{
    Column, DataType, Decode, Decoder, Encode, Encoder, Result, Schema, StorageError, Tuple,
    Value,
};
use std::collections::VecDeque;

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFn {
    /// Row count.
    Count,
    /// Integer sum of a column.
    Sum,
    /// Minimum of a column.
    Min,
    /// Maximum of a column.
    Max,
}

impl AggFn {
    fn tag(self) -> u8 {
        match self {
            AggFn::Count => 0,
            AggFn::Sum => 1,
            AggFn::Min => 2,
            AggFn::Max => 3,
        }
    }

    fn from_tag(t: u8) -> Result<Self> {
        Ok(match t {
            0 => AggFn::Count,
            1 => AggFn::Sum,
            2 => AggFn::Min,
            3 => AggFn::Max,
            x => return Err(StorageError::corrupt(format!("bad aggfn tag {x}"))),
        })
    }
}

impl Encode for AggFn {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.tag());
    }
}

impl Decode for AggFn {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        AggFn::from_tag(dec.get_u8()?)
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Accum {
    count: u64,
    sum: i64,
    min: i64,
    max: i64,
}

impl Accum {
    fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }

    fn add(&mut self, v: i64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn value(&self, f: AggFn) -> i64 {
        match f {
            AggFn::Count => self.count as i64,
            AggFn::Sum => self.sum,
            AggFn::Min => self.min,
            AggFn::Max => self.max,
        }
    }
}

impl Encode for Accum {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.count);
        enc.put_i64(self.sum);
        enc.put_i64(self.min);
        enc.put_i64(self.max);
    }
}

impl Decode for Accum {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Accum {
            count: dec.get_u64()?,
            sum: dec.get_i64()?,
            min: dec.get_i64()?,
            max: dec.get_i64()?,
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
struct AggControl {
    cur_group: Option<i64>,
    acc: Accum,
    done: bool,
    finished: bool,
}

impl Encode for AggControl {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_option(&self.cur_group);
        self.acc.encode(enc);
        enc.put_bool(self.done);
        enc.put_bool(self.finished);
    }
}

impl Decode for AggControl {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(AggControl {
            cur_group: dec.get_option()?,
            acc: Accum::decode(dec)?,
            done: dec.get_bool()?,
            finished: dec.get_bool()?,
        })
    }
}

/// Streaming group-by aggregate over input sorted on the group column.
/// With `group_col = None` it computes one global aggregate.
pub struct StreamAgg {
    op: OpId,
    child: Box<dyn Operator>,
    group_col: Option<usize>,
    agg_col: usize,
    func: AggFn,
    schema: Schema,

    cur_group: Option<i64>,
    acc: Accum,
    done: bool,
    finished: bool,
    pending: VecDeque<Tuple>,
}

impl StreamAgg {
    /// Create a streaming aggregate.
    pub fn new(
        op: OpId,
        child: Box<dyn Operator>,
        group_col: Option<usize>,
        agg_col: usize,
        func: AggFn,
    ) -> Self {
        let mut cols = Vec::new();
        if let Some(g) = group_col {
            cols.push(child.schema().column(g).clone());
        }
        cols.push(Column::new("agg", DataType::Int));
        Self {
            op,
            child,
            group_col,
            agg_col,
            func,
            schema: Schema::new(cols),
            cur_group: None,
            acc: Accum::new(),
            done: false,
            finished: false,
            pending: VecDeque::new(),
        }
    }

    fn control(&self) -> AggControl {
        AggControl {
            cur_group: self.cur_group,
            acc: self.acc,
            done: self.done,
            finished: self.finished,
        }
    }

    fn emit(&self) -> Tuple {
        let mut vals = Vec::new();
        if self.group_col.is_some() {
            vals.push(Value::Int(self.cur_group.unwrap_or(0)));
        }
        vals.push(Value::Int(self.acc.value(self.func)));
        Tuple::new(vals)
    }
}

impl Operator for StreamAgg {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Poll> {
        if let Some(t) = self.pending.pop_front() {
            return Ok(Poll::Tuple(t));
        }
        if self.finished {
            return Ok(Poll::Done);
        }
        loop {
            if ctx.suspend_pending() {
                return Ok(Poll::Suspended);
            }
            if self.done {
                self.finished = true;
                // Final group (or the global aggregate, even when empty).
                if self.cur_group.is_some() || self.group_col.is_none() {
                    return Ok(Poll::Tuple(self.emit()));
                }
                return Ok(Poll::Done);
            }
            match self.child.next(ctx)? {
                Poll::Tuple(t) => {
                    ctx.tick(self.op);
                    let v = t.get(self.agg_col).as_int()?;
                    match self.group_col {
                        None => self.acc.add(v),
                        Some(g) => {
                            let key = t.get(g).as_int()?;
                            match self.cur_group {
                                Some(cur) if cur == key => self.acc.add(v),
                                Some(_) => {
                                    let out = self.emit();
                                    self.cur_group = Some(key);
                                    self.acc = Accum::new();
                                    self.acc.add(v);
                                    return Ok(Poll::Tuple(out));
                                }
                                None => {
                                    self.cur_group = Some(key);
                                    self.acc = Accum::new();
                                    self.acc.add(v);
                                }
                            }
                        }
                    }
                }
                Poll::Done => self.done = true,
                Poll::Suspended => return Ok(Poll::Suspended),
            }
        }
    }

    /// Vectorized aggregation: consume whole child batches, updating the
    /// accumulator straight off unboxed columns where the input is dense
    /// integers. Group-boundary emissions accumulate into one output
    /// batch per consumed input batch (order preserved; brief overfill
    /// past `max` is allowed by the batch contract). Ticks stay per
    /// input row and the accumulator always reflects exactly the rows
    /// the child has emitted, so suspend/resume state is identical to
    /// the tuple path's.
    fn next_batch(&mut self, ctx: &mut ExecContext, max: usize) -> Result<BatchPoll> {
        let max = max.max(1);
        let mut out = Batch::with_capacity(self.schema.len(), max);
        while let Some(t) = self.pending.pop_front() {
            out.push(&t);
            if out.len() >= max {
                return Ok(BatchPoll::Batch(out));
            }
        }
        loop {
            if ctx.suspend_pending() {
                return Ok(match out.is_empty() {
                    true => BatchPoll::Suspended,
                    false => BatchPoll::Batch(out),
                });
            }
            if self.done {
                if !self.finished {
                    self.finished = true;
                    if self.cur_group.is_some() || self.group_col.is_none() {
                        out.push(&self.emit());
                    }
                }
                return Ok(match out.is_empty() {
                    true => BatchPoll::Done,
                    false => BatchPoll::Batch(out),
                });
            }
            if self.finished {
                return Ok(match out.is_empty() {
                    true => BatchPoll::Done,
                    false => BatchPoll::Batch(out),
                });
            }
            match self.child.next_batch(ctx, max)? {
                BatchPoll::Batch(b) => {
                    let aggs = b.column(self.agg_col).and_then(ColumnVec::as_ints);
                    match self.group_col {
                        // Global aggregate over a dense unboxed column:
                        // the whole batch is one slice walk.
                        None if aggs.is_some() && b.selection().is_none() => {
                            for &v in &aggs.unwrap()[..b.len()] {
                                ctx.tick(self.op);
                                self.acc.add(v);
                            }
                        }
                        None => {
                            let live: Vec<usize> = b.live_rows().collect();
                            for r in live {
                                ctx.tick(self.op);
                                let v = match aggs {
                                    Some(a) => a[r],
                                    None => b.value(r, self.agg_col).as_int()?,
                                };
                                self.acc.add(v);
                            }
                        }
                        Some(g) => {
                            let keys = b.column(g).and_then(ColumnVec::as_ints);
                            let live: Vec<usize> = b.live_rows().collect();
                            for r in live {
                                ctx.tick(self.op);
                                let v = match aggs {
                                    Some(a) => a[r],
                                    None => b.value(r, self.agg_col).as_int()?,
                                };
                                let key = match keys {
                                    Some(k) => k[r],
                                    None => b.value(r, g).as_int()?,
                                };
                                match self.cur_group {
                                    Some(cur) if cur == key => self.acc.add(v),
                                    Some(_) => {
                                        let t = self.emit();
                                        out.push(&t);
                                        self.cur_group = Some(key);
                                        self.acc = Accum::new();
                                        self.acc.add(v);
                                    }
                                    None => {
                                        self.cur_group = Some(key);
                                        self.acc = Accum::new();
                                        self.acc.add(v);
                                    }
                                }
                            }
                        }
                    }
                    if !out.is_empty() {
                        return Ok(BatchPoll::Batch(out));
                    }
                }
                BatchPoll::Done => self.done = true,
                BatchPoll::Suspended => {
                    return Ok(match out.is_empty() {
                        true => BatchPoll::Suspended,
                        false => BatchPoll::Batch(out),
                    })
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.close(ctx)
    }

    fn sign_contract(&mut self, ctx: &mut ExecContext, parent_ckpt: CkptId) -> Result<CtrId> {
        // Reactive: the accumulator travels in the contract, as §4 says.
        let control = self.control().encode_to_vec();
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, control.clone(), work);
        self.child.sign_contract(ctx, ck)?;
        ctx.graph.prune_for(self.op);
        ctx.graph
            .sign_contract(parent_ckpt, self.op, ck, control, work, vec![])
    }

    fn side_snapshot(&mut self, _ctx: &mut ExecContext) -> Result<SideSnapshot> {
        Err(StorageError::invalid(
            "aggregate cannot appear in a positional subtree",
        ))
    }

    fn suspend(
        &mut self,
        ctx: &mut ExecContext,
        mode: SuspendMode,
        plan: &SuspendPlan,
        sq: &mut SuspendedQuery,
    ) -> Result<()> {
        match mode {
            SuspendMode::Current => {
                sq.put_record(OpSuspendRecord {
                    op: self.op,
                    strategy: plan.get(self.op),
                    resume_point: self.control().encode_to_vec(),
                    heap_dump: None,
                    saved_tuples: Vec::new(),
                    aux: Vec::new(),
                });
                self.child.suspend(ctx, SuspendMode::Current, plan, sq)
            }
            SuspendMode::Contract(ctr_id) => {
                let ctr = ctx
                    .graph
                    .contract(ctr_id)
                    .ok_or_else(|| StorageError::invalid(format!("unknown contract {ctr_id}")))?;
                let (control, saved, my_ckpt) =
                    (ctr.control.clone(), ctr.saved_tuples.clone(), ctr.child_ckpt);
                sq.put_record(OpSuspendRecord {
                    op: self.op,
                    strategy: plan.get(self.op),
                    resume_point: control,
                    heap_dump: None,
                    saved_tuples: saved,
                    aux: Vec::new(),
                });
                let child_ctr = ctx
                    .graph
                    .contract_from(my_ckpt, self.child.op_id())
                    .map(|cc| cc.id)
                    .ok_or_else(|| {
                        StorageError::invalid("aggregate checkpoint missing child contract")
                    })?;
                self.child
                    .suspend(ctx, SuspendMode::Contract(child_ctr), plan, sq)
            }
        }
    }

    fn resume(&mut self, ctx: &mut ExecContext, sq: &SuspendedQuery) -> Result<()> {
        self.child.resume(ctx, sq)?;
        let rec = sq.record(self.op)?;
        let control = AggControl::decode_from_slice(&rec.resume_point)?;
        self.cur_group = control.cur_group;
        self.acc = control.acc;
        self.done = control.done;
        self.finished = control.finished;
        self.pending = rec
            .saved_tuples
            .iter()
            .map(|b| Tuple::decode_from_slice(b))
            .collect::<Result<_>>()?;
        Ok(())
    }

    fn suspend_inputs(&self) -> OpSuspendInputs {
        OpSuspendInputs {
            heap_bytes: 0,
            control_bytes: 48,
        }
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Operator)) {
        f(self);
        self.child.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Operator)) {
        f(self);
        self.child.visit_mut(f);
    }
}

/// Duplicate elimination over sorted input: emits each distinct tuple
/// once, carrying only "the tuple whose duplicates are currently being
/// eliminated" (paper §4).
pub struct Distinct {
    op: OpId,
    child: Box<dyn Operator>,
    schema: Schema,
    last: Option<Tuple>,
    pending: VecDeque<Tuple>,
}

impl Distinct {
    /// Create a duplicate-eliminating operator over sorted input.
    pub fn new(op: OpId, child: Box<dyn Operator>) -> Self {
        let schema = child.schema().clone();
        Self {
            op,
            child,
            schema,
            last: None,
            pending: VecDeque::new(),
        }
    }

    fn control_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_option(&self.last);
        enc.finish()
    }
}

impl Operator for Distinct {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Poll> {
        if let Some(t) = self.pending.pop_front() {
            return Ok(Poll::Tuple(t));
        }
        loop {
            if ctx.suspend_pending() {
                return Ok(Poll::Suspended);
            }
            match crate::pull!(self.child, ctx) {
                Some(t) => {
                    ctx.tick(self.op);
                    if self.last.as_ref() != Some(&t) {
                        self.last = Some(t.clone());
                        return Ok(Poll::Tuple(t));
                    }
                }
                None => return Ok(Poll::Done),
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.close(ctx)
    }

    fn sign_contract(&mut self, ctx: &mut ExecContext, parent_ckpt: CkptId) -> Result<CtrId> {
        let control = self.control_bytes();
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, control.clone(), work);
        self.child.sign_contract(ctx, ck)?;
        ctx.graph.prune_for(self.op);
        ctx.graph
            .sign_contract(parent_ckpt, self.op, ck, control, work, vec![])
    }

    fn side_snapshot(&mut self, _ctx: &mut ExecContext) -> Result<SideSnapshot> {
        Err(StorageError::invalid(
            "distinct cannot appear in a positional subtree",
        ))
    }

    fn suspend(
        &mut self,
        ctx: &mut ExecContext,
        mode: SuspendMode,
        plan: &SuspendPlan,
        sq: &mut SuspendedQuery,
    ) -> Result<()> {
        match mode {
            SuspendMode::Current => {
                sq.put_record(OpSuspendRecord {
                    op: self.op,
                    strategy: plan.get(self.op),
                    resume_point: self.control_bytes(),
                    heap_dump: None,
                    saved_tuples: Vec::new(),
                    aux: Vec::new(),
                });
                self.child.suspend(ctx, SuspendMode::Current, plan, sq)
            }
            SuspendMode::Contract(ctr_id) => {
                let ctr = ctx
                    .graph
                    .contract(ctr_id)
                    .ok_or_else(|| StorageError::invalid(format!("unknown contract {ctr_id}")))?;
                let (control, saved, my_ckpt) =
                    (ctr.control.clone(), ctr.saved_tuples.clone(), ctr.child_ckpt);
                sq.put_record(OpSuspendRecord {
                    op: self.op,
                    strategy: plan.get(self.op),
                    resume_point: control,
                    heap_dump: None,
                    saved_tuples: saved,
                    aux: Vec::new(),
                });
                let child_ctr = ctx
                    .graph
                    .contract_from(my_ckpt, self.child.op_id())
                    .map(|cc| cc.id)
                    .ok_or_else(|| {
                        StorageError::invalid("distinct checkpoint missing child contract")
                    })?;
                self.child
                    .suspend(ctx, SuspendMode::Contract(child_ctr), plan, sq)
            }
        }
    }

    fn resume(&mut self, ctx: &mut ExecContext, sq: &SuspendedQuery) -> Result<()> {
        self.child.resume(ctx, sq)?;
        let rec = sq.record(self.op)?;
        let mut dec = Decoder::new(&rec.resume_point);
        self.last = dec.get_option()?;
        self.pending = rec
            .saved_tuples
            .iter()
            .map(|b| Tuple::decode_from_slice(b))
            .collect::<Result<_>>()?;
        Ok(())
    }

    fn suspend_inputs(&self) -> OpSuspendInputs {
        OpSuspendInputs {
            heap_bytes: 0,
            control_bytes: 8 + self.last.as_ref().map(Tuple::heap_bytes).unwrap_or(0),
        }
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Operator)) {
        f(self);
        self.child.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Operator)) {
        f(self);
        self.child.visit_mut(f);
    }
}
