//! Projection: stateless column selection. Suspend/resume behavior is the
//! filter's minus contract migration (projection consumes nothing).

use crate::context::ExecContext;
use crate::operator::{BatchPoll, Operator, Poll, SuspendMode};
use qsr_core::{
    CkptId, CtrId, OpId, OpSuspendInputs, OpSuspendRecord, SideSnapshot, SuspendPlan,
    SuspendedQuery,
};
use qsr_storage::{Result, Schema, StorageError};

/// Column projection.
pub struct Project {
    op: OpId,
    columns: Vec<usize>,
    schema: Schema,
    child: Box<dyn Operator>,
}

impl Project {
    /// Project `child` onto `columns` (in the given order).
    pub fn new(op: OpId, columns: Vec<usize>, child: Box<dyn Operator>) -> Self {
        let schema = child.schema().project(&columns);
        Self {
            op,
            columns,
            schema,
            child,
        }
    }
}

impl Operator for Project {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Poll> {
        if ctx.suspend_pending() {
            return Ok(Poll::Suspended);
        }
        match crate::pull!(self.child, ctx) {
            Some(t) => {
                ctx.tick(self.op);
                Ok(Poll::Tuple(t.project(&self.columns)))
            }
            None => Ok(Poll::Done),
        }
    }

    /// Vectorized projection: whole columns are moved (or cloned, on
    /// repeats) out of the child batch — no per-row tuple rebuild, which
    /// is the dominant cost of the tuple path. Work units stay per-row.
    fn next_batch(&mut self, ctx: &mut ExecContext, max: usize) -> Result<BatchPoll> {
        if ctx.suspend_pending() {
            return Ok(BatchPoll::Suspended);
        }
        match self.child.next_batch(ctx, max)? {
            BatchPoll::Batch(b) => {
                for _ in 0..b.live_len() {
                    ctx.tick(self.op);
                }
                Ok(BatchPoll::Batch(b.project(&self.columns)))
            }
            BatchPoll::Done => Ok(BatchPoll::Done),
            BatchPoll::Suspended => Ok(BatchPoll::Suspended),
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.close(ctx)
    }

    fn sign_contract(&mut self, ctx: &mut ExecContext, parent_ckpt: CkptId) -> Result<CtrId> {
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, vec![], work);
        self.child.sign_contract(ctx, ck)?;
        ctx.graph.prune_for(self.op);
        ctx.graph
            .sign_contract(parent_ckpt, self.op, ck, vec![], work, vec![])
    }

    fn side_snapshot(&mut self, ctx: &mut ExecContext) -> Result<SideSnapshot> {
        let child = self.child.side_snapshot(ctx)?;
        Ok(SideSnapshot {
            op: self.op,
            control: vec![],
            work: ctx.work.get(self.op),
            children: vec![child],
        })
    }

    fn suspend(
        &mut self,
        ctx: &mut ExecContext,
        mode: SuspendMode,
        plan: &SuspendPlan,
        sq: &mut SuspendedQuery,
    ) -> Result<()> {
        sq.put_record(OpSuspendRecord {
            op: self.op,
            strategy: plan.get(self.op),
            resume_point: vec![],
            heap_dump: None,
            saved_tuples: Vec::new(),
            aux: Vec::new(),
        });
        match mode {
            SuspendMode::Current => self.child.suspend(ctx, SuspendMode::Current, plan, sq),
            SuspendMode::Contract(ctr) => {
                let my_ckpt = ctx
                    .graph
                    .contract(ctr)
                    .ok_or_else(|| StorageError::invalid(format!("unknown contract {ctr}")))?
                    .child_ckpt;
                let child_ctr = ctx
                    .graph
                    .contract_from(my_ckpt, self.child.op_id())
                    .map(|cc| cc.id)
                    .ok_or_else(|| {
                        StorageError::invalid("project checkpoint missing child contract")
                    })?;
                self.child
                    .suspend(ctx, SuspendMode::Contract(child_ctr), plan, sq)
            }
        }
    }

    fn resume(&mut self, ctx: &mut ExecContext, sq: &SuspendedQuery) -> Result<()> {
        self.child.resume(ctx, sq)
    }

    fn suspend_inputs(&self) -> OpSuspendInputs {
        OpSuspendInputs {
            heap_bytes: 0,
            control_bytes: 0,
        }
    }

    fn rewind(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.rewind(ctx)
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Operator)) {
        f(self);
        self.child.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Operator)) {
        f(self);
        self.child.visit_mut(f);
    }
}
