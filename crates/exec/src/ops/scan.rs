//! Table scan (paper §4, "Table Scan and Index Scan").
//!
//! * Contracting: reactive only — signing a contract stores the current
//!   cursor position (page + slot).
//! * Suspend: `Suspend()` records the current position; `Suspend(Ctr)`
//!   records the position stored in the contract.
//! * Resume: seek the cursor to the recorded position (the page is
//!   re-read on the next `next()` call, which is the charged resume I/O).

use crate::context::ExecContext;
use crate::operator::{BatchPoll, Operator, Poll, SuspendMode};
use qsr_core::{
    Batch, CkptId, CtrId, OpId, OpSuspendInputs, OpSuspendRecord, SideSnapshot, SuspendPlan,
    SuspendedQuery,
};
use qsr_storage::{
    Decode, Encode, HeapCursor, HeapFile, PageRun, Result, Schema, StorageError, Tuple, TupleAddr,
};
use std::collections::VecDeque;

/// Sequential scan over a catalog table.
pub struct TableScan {
    op: OpId,
    table: String,
    schema: Schema,
    heap: Option<HeapFile>,
    cursor: Option<HeapCursor>,
    pages_noted: u64,
    pending: VecDeque<Tuple>,
}

impl TableScan {
    /// Create a scan of `table` (schema from the catalog is supplied by
    /// the plan builder).
    pub fn new(op: OpId, table: String, schema: Schema) -> Self {
        Self {
            op,
            table,
            schema,
            heap: None,
            cursor: None,
            pages_noted: 0,
            pending: VecDeque::new(),
        }
    }

    fn acquire(&mut self, ctx: &ExecContext) -> Result<()> {
        if self.heap.is_none() {
            self.heap = Some(ctx.db.open_table_heap(&self.table)?);
        }
        if self.cursor.is_none() {
            let heap = self
                .heap
                .as_ref()
                .ok_or_else(|| StorageError::invalid("scan heap not open"))?;
            self.cursor = Some(heap.cursor());
        }
        Ok(())
    }

    fn cursor_mut(&mut self) -> Result<&mut HeapCursor> {
        self.cursor
            .as_mut()
            .ok_or_else(|| StorageError::invalid("scan not open"))
    }

    fn position(&self) -> TupleAddr {
        self.cursor
            .as_ref()
            .map(|c| c.position())
            .unwrap_or(TupleAddr::ZERO)
    }

    fn control_bytes(&self) -> Vec<u8> {
        self.position().encode_to_vec()
    }

    /// Attribute newly fetched pages to this operator's work counter.
    fn note_io(&mut self, ctx: &mut ExecContext) {
        let fetched = self.cursor.as_ref().map(|c| c.pages_fetched()).unwrap_or(0);
        let delta = fetched.saturating_sub(self.pages_noted);
        self.pages_noted = fetched;
        ctx.note_page_reads(self.op, delta);
    }
}

impl Operator for TableScan {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.acquire(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Poll> {
        if let Some(t) = self.pending.pop_front() {
            return Ok(Poll::Tuple(t));
        }
        if ctx.suspend_pending() {
            return Ok(Poll::Suspended);
        }
        let out = self.cursor_mut()?.next()?;
        self.note_io(ctx);
        match out {
            Some(t) => {
                ctx.tick(self.op);
                Ok(Poll::Tuple(t))
            }
            None => Ok(Poll::Done),
        }
    }

    /// Vectorized scan: heap pages are decoded column-major by the cursor
    /// (once per page, cached — page-read charges are identical to the
    /// tuple path) and whole page runs land in the output batch as slice
    /// copies via [`Batch::append_page_columns`]: scalar fields as unboxed
    /// `memcpy`s, strings as one raw-byte arena copy, no per-row `Tuple`
    /// or `Value` built at all. Tick accounting stays per tuple, same as
    /// `next()`, so suspend triggers land on identical work units and the
    /// row whose tick fires the trigger is included in the output —
    /// consumed slots are reported back to the cursor so `position()` is
    /// exact in both modes.
    fn next_batch(&mut self, ctx: &mut ExecContext, max: usize) -> Result<BatchPoll> {
        let max = max.max(1);
        let arity = self.schema.len();
        let mut out = Batch::with_capacity(arity, max);
        // Resume-saved rows first (row-oriented, only present right after
        // a resume).
        while let Some(t) = self.pending.pop_front() {
            out.push(&t);
            if out.len() >= max {
                return Ok(BatchPoll::Batch(out));
            }
        }
        loop {
            if ctx.suspend_pending() {
                return Ok(match out.is_empty() {
                    true => BatchPoll::Suspended,
                    false => BatchPoll::Batch(out),
                });
            }
            let run = self.cursor_mut()?.page_run()?;
            self.note_io(ctx);
            match run {
                PageRun::Eof => {
                    return Ok(match out.is_empty() {
                        true => BatchPoll::Done,
                        false => BatchPoll::Batch(out),
                    });
                }
                // Ragged page (or one the tuple path decoded first):
                // drain it row by row off the shared cache.
                PageRun::Rows => {
                    if let Some(t) = self.cursor_mut()?.next()? {
                        ctx.tick(self.op);
                        out.push(&t);
                        if out.len() >= max {
                            return Ok(BatchPoll::Batch(out));
                        }
                    }
                }
                PageRun::Cols { cols, start } => {
                    let start = start as usize;
                    let want = (cols.rows() - start).min(max - out.len());
                    // Tick per row, stopping after the row whose tick
                    // fires a suspend trigger — that row is the last one
                    // consumed, exactly as in tuple mode.
                    let mut consumed = 0;
                    let mut suspended = false;
                    while consumed < want {
                        ctx.tick(self.op);
                        consumed += 1;
                        if ctx.suspend_pending() {
                            suspended = true;
                            break;
                        }
                    }
                    out.append_page_columns(&cols, start, consumed);
                    self.cursor_mut()?.advance_slots(consumed as u16);
                    if suspended || out.len() >= max {
                        return Ok(BatchPoll::Batch(out));
                    }
                }
            }
        }
    }

    fn close(&mut self, _ctx: &mut ExecContext) -> Result<()> {
        self.cursor = None;
        self.heap = None;
        Ok(())
    }

    fn sign_contract(&mut self, ctx: &mut ExecContext, parent_ckpt: CkptId) -> Result<CtrId> {
        let control = self.control_bytes();
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, control.clone(), work);
        ctx.graph.prune_for(self.op);
        ctx.graph
            .sign_contract(parent_ckpt, self.op, ck, control, work, vec![])
    }

    fn side_snapshot(&mut self, ctx: &mut ExecContext) -> Result<SideSnapshot> {
        Ok(SideSnapshot {
            op: self.op,
            control: self.control_bytes(),
            work: ctx.work.get(self.op),
            children: vec![],
        })
    }

    fn suspend(
        &mut self,
        ctx: &mut ExecContext,
        mode: SuspendMode,
        plan: &SuspendPlan,
        sq: &mut SuspendedQuery,
    ) -> Result<()> {
        let (resume_point, saved) = match mode {
            SuspendMode::Current => (self.control_bytes(), Vec::new()),
            SuspendMode::Contract(ctr) => {
                let c = ctx
                    .graph
                    .contract(ctr)
                    .ok_or_else(|| StorageError::invalid(format!("unknown contract {ctr}")))?;
                (c.control.clone(), c.saved_tuples.clone())
            }
        };
        sq.put_record(OpSuspendRecord {
            op: self.op,
            strategy: plan.get(self.op),
            resume_point,
            heap_dump: None,
            saved_tuples: saved,
            aux: Vec::new(),
        });
        Ok(())
    }

    fn resume(&mut self, ctx: &mut ExecContext, sq: &SuspendedQuery) -> Result<()> {
        let rec = sq.record(self.op)?;
        let addr = TupleAddr::decode_from_slice(&rec.resume_point)?;
        self.acquire(ctx)?;
        self.cursor_mut()?.seek(addr);
        self.pending = rec
            .saved_tuples
            .iter()
            .map(|b| Tuple::decode_from_slice(b))
            .collect::<Result<_>>()?;
        Ok(())
    }

    fn suspend_inputs(&self) -> OpSuspendInputs {
        OpSuspendInputs {
            heap_bytes: 0,
            control_bytes: 10, // page + slot
        }
    }

    fn rewind(&mut self, _ctx: &mut ExecContext) -> Result<()> {
        self.cursor_mut()?.seek(TupleAddr::ZERO);
        self.pending.clear();
        Ok(())
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Operator)) {
        f(self);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Operator)) {
        f(self);
    }
}
