//! Tuple-based nested-loop join with an index on the inner relation
//! (paper §4, "Tuple-based NLJ with an index on inner").
//!
//! The operator's state is a single outer tuple plus the position within
//! its index-match list, so it uses **reactive checkpointing**: the
//! contract stores that tiny control state; on resume the index is simply
//! re-probed.

use crate::context::ExecContext;
use crate::operator::{Operator, Poll, SuspendMode};
use qsr_core::{
    CkptId, CtrId, OpId, OpSuspendInputs, OpSuspendRecord, SideSnapshot, SuspendPlan,
    SuspendedQuery,
};
use qsr_storage::{
    Decode, Decoder, Encode, Encoder, HeapFile, Result, Schema, SortedIndex, StorageError, Tuple,
    TupleAddr,
};
use std::collections::VecDeque;

#[derive(Debug, Clone, PartialEq)]
struct InljControl {
    cur_outer: Option<Tuple>,
    match_idx: u64,
}

impl Encode for InljControl {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_option(&self.cur_outer);
        enc.put_u64(self.match_idx);
    }
}

impl Decode for InljControl {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(InljControl {
            cur_outer: dec.get_option()?,
            match_idx: dec.get_u64()?,
        })
    }
}

/// Index nested-loop join: outer child stream probed against an indexed
/// base table.
pub struct IndexNlj {
    op: OpId,
    outer: Box<dyn Operator>,
    inner_table: String,
    /// Index column on the inner table.
    inner_key: usize,
    outer_key: usize,
    schema: Schema,

    index: Option<SortedIndex>,
    heap: Option<HeapFile>,
    cur_outer: Option<Tuple>,
    matches: Vec<TupleAddr>,
    match_idx: usize,
    pending: VecDeque<Tuple>,
}

impl IndexNlj {
    /// Create an index NLJ; `inner_schema` comes from the catalog via the
    /// plan builder.
    pub fn new(
        op: OpId,
        outer: Box<dyn Operator>,
        inner_table: String,
        inner_schema: &Schema,
        outer_key: usize,
        inner_key: usize,
    ) -> Self {
        let schema = outer.schema().join(inner_schema);
        Self {
            op,
            outer,
            inner_table,
            inner_key,
            outer_key,
            schema,
            index: None,
            heap: None,
            cur_outer: None,
            matches: Vec::new(),
            match_idx: 0,
            pending: VecDeque::new(),
        }
    }

    fn acquire(&mut self, ctx: &ExecContext) -> Result<()> {
        if self.index.is_none() {
            self.index = Some(ctx.db.open_table_index(&self.inner_table, self.inner_key)?);
        }
        if self.heap.is_none() {
            self.heap = Some(ctx.db.open_table_heap(&self.inner_table)?);
        }
        Ok(())
    }

    fn control(&self) -> InljControl {
        InljControl {
            cur_outer: self.cur_outer.clone(),
            match_idx: self.match_idx as u64,
        }
    }

    /// Probe the index for the current outer tuple, charging the page
    /// reads to this operator.
    fn probe(&mut self, ctx: &mut ExecContext, outer: &Tuple) -> Result<()> {
        let key = outer.get(self.outer_key).as_int()?;
        let before = ctx.db.ledger().snapshot().total_pages_read();
        self.matches = self
            .index
            .as_ref()
            .ok_or_else(|| StorageError::invalid("index-NLJ inner index not open"))?
            .lookup(key)?;
        let delta = ctx.db.ledger().snapshot().total_pages_read() - before;
        ctx.note_page_reads(self.op, delta);
        Ok(())
    }

    fn fetch_match(&mut self, ctx: &mut ExecContext, addr: TupleAddr) -> Result<Tuple> {
        let before = ctx.db.ledger().snapshot().total_pages_read();
        let t = self
            .heap
            .as_ref()
            .ok_or_else(|| StorageError::invalid("index-NLJ inner heap not open"))?
            .fetch(addr)?;
        let delta = ctx.db.ledger().snapshot().total_pages_read() - before;
        ctx.note_page_reads(self.op, delta);
        Ok(t)
    }
}

impl Operator for IndexNlj {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.outer.open(ctx)?;
        self.acquire(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Poll> {
        if let Some(t) = self.pending.pop_front() {
            return Ok(Poll::Tuple(t));
        }
        loop {
            if ctx.suspend_pending() {
                return Ok(Poll::Suspended);
            }
            if let Some(outer) = self.cur_outer.clone() {
                if self.match_idx < self.matches.len() {
                    let addr = self.matches[self.match_idx];
                    self.match_idx += 1;
                    let inner = self.fetch_match(ctx, addr)?;
                    return Ok(Poll::Tuple(outer.join(&inner)));
                }
                self.cur_outer = None;
                self.matches.clear();
                self.match_idx = 0;
            }
            match self.outer.next(ctx)? {
                Poll::Tuple(t) => {
                    ctx.tick(self.op);
                    self.probe(ctx, &t)?;
                    self.cur_outer = Some(t);
                    self.match_idx = 0;
                }
                Poll::Done => return Ok(Poll::Done),
                Poll::Suspended => return Ok(Poll::Suspended),
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.outer.close(ctx)
    }

    fn sign_contract(&mut self, ctx: &mut ExecContext, parent_ckpt: CkptId) -> Result<CtrId> {
        // Reactive: checkpoint the tiny control state and cascade.
        let control = self.control().encode_to_vec();
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, control.clone(), work);
        self.outer.sign_contract(ctx, ck)?;
        ctx.graph.prune_for(self.op);
        ctx.graph
            .sign_contract(parent_ckpt, self.op, ck, control, work, vec![])
    }

    fn side_snapshot(&mut self, _ctx: &mut ExecContext) -> Result<SideSnapshot> {
        Err(StorageError::invalid(
            "index NLJ cannot appear in a positional subtree",
        ))
    }

    fn suspend(
        &mut self,
        ctx: &mut ExecContext,
        mode: SuspendMode,
        plan: &SuspendPlan,
        sq: &mut SuspendedQuery,
    ) -> Result<()> {
        match mode {
            SuspendMode::Current => {
                sq.put_record(OpSuspendRecord {
                    op: self.op,
                    strategy: plan.get(self.op),
                    resume_point: self.control().encode_to_vec(),
                    heap_dump: None,
                    saved_tuples: Vec::new(),
                    aux: Vec::new(),
                });
                self.outer.suspend(ctx, SuspendMode::Current, plan, sq)
            }
            SuspendMode::Contract(ctr_id) => {
                let ctr = ctx
                    .graph
                    .contract(ctr_id)
                    .ok_or_else(|| StorageError::invalid(format!("unknown contract {ctr_id}")))?;
                let (control, saved, my_ckpt) =
                    (ctr.control.clone(), ctr.saved_tuples.clone(), ctr.child_ckpt);
                sq.put_record(OpSuspendRecord {
                    op: self.op,
                    strategy: plan.get(self.op),
                    resume_point: control,
                    heap_dump: None,
                    saved_tuples: saved,
                    aux: Vec::new(),
                });
                let child_ctr = ctx
                    .graph
                    .contract_from(my_ckpt, self.outer.op_id())
                    .map(|cc| cc.id)
                    .ok_or_else(|| {
                        StorageError::invalid("index NLJ checkpoint missing outer contract")
                    })?;
                self.outer
                    .suspend(ctx, SuspendMode::Contract(child_ctr), plan, sq)
            }
        }
    }

    fn resume(&mut self, ctx: &mut ExecContext, sq: &SuspendedQuery) -> Result<()> {
        self.outer.resume(ctx, sq)?;
        self.acquire(ctx)?;
        let rec = sq.record(self.op)?;
        let control = InljControl::decode_from_slice(&rec.resume_point)?;
        self.cur_outer = control.cur_outer.clone();
        self.match_idx = control.match_idx as usize;
        self.matches.clear();
        if let Some(outer) = self.cur_outer.clone() {
            // Re-probe to rebuild the match list (charged resume I/O).
            self.probe(ctx, &outer)?;
        }
        self.pending = rec
            .saved_tuples
            .iter()
            .map(|b| Tuple::decode_from_slice(b))
            .collect::<Result<_>>()?;
        Ok(())
    }

    fn suspend_inputs(&self) -> OpSuspendInputs {
        OpSuspendInputs {
            heap_bytes: 0,
            control_bytes: 16
                + self.cur_outer.as_ref().map(Tuple::heap_bytes).unwrap_or(0),
        }
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Operator)) {
        f(self);
        self.outer.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Operator)) {
        f(self);
        self.outer.visit_mut(f);
    }
}
