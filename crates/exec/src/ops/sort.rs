//! Two-phase merge sort (paper §4, "Two-Phase Merge Sort").
//!
//! Phase 1 reads the child into a sort buffer, sorts it, and writes each
//! sorted sublist to disk — the sublists are *disk-resident state* and
//! survive suspension untouched (materialization points, footnote 1 of the
//! paper: checkpoints record their locations, never their contents).
//! Proactive checkpoints happen before reading each new sublist; **contract
//! migration is crucial and done at every proactive checkpoint** (§4) —
//! without it, a GoBack would redo every sublist instead of only the
//! current buffer fill.
//!
//! Phase 2 merges the sublists; the operator then "behaves similarly to a
//! table scan": signing a contract creates a reactive checkpoint whose
//! control state is the per-run cursor positions, and resume just seeks.
//!
//! With a merge fan-in cap `F` (0 = unlimited), more than `F` sublists
//! trigger intermediate merge passes: groups of up to `F` runs are merged
//! into new disk-resident runs until at most `F` remain, then the final
//! merge streams to the parent. Every pass output is a materialization
//! point; group boundaries are minimal-heap-state points with proactive
//! checkpoints and contract migration (the operator emits nothing during
//! passes, so migration always applies). Suspend can land mid-group: Dump
//! seals the partial output run and records the group cursor heads, GoBack
//! restarts the group from its boundary checkpoint.

use crate::context::ExecContext;
use crate::operator::{Operator, Poll, SuspendMode};
use qsr_core::{
    CkptId, CtrId, Migration, OpId, OpSuspendInputs, OpSuspendRecord, SideSnapshot, Strategy,
    SuspendPlan, SuspendedQuery,
};
use qsr_storage::{
    Decode, Decoder, Encode, Encoder, Result, RunHandle, RunReader, RunWriter, Schema,
    StorageError, Tuple, TupleAddr, TupleBlock,
};
use std::collections::VecDeque;

const PHASE_BUILD: u8 = 0;
const PHASE_MERGE: u8 = 1;
const PHASE_PASS: u8 = 2;

#[derive(Debug, Clone, PartialEq)]
struct SortControl {
    phase: u8,
    /// Build: sealed sublists. Pass: runs still queued for the current
    /// pass. Merge: the final merge inputs.
    runs: Vec<RunHandle>,
    /// Phase 1: tuples in the (unsorted) buffer.
    fill: u64,
    child_done: bool,
    /// Phase 2 / in-progress pass group: address of each run's *current
    /// head* tuple (the head is re-read on resume; `None` = exhausted).
    head_addrs: Vec<Option<TupleAddr>>,
    /// Intermediate-pass cursor state (all empty/zero outside PHASE_PASS).
    pass_level: u64,
    /// Completed output runs of the current pass.
    pass_out: Vec<RunHandle>,
    /// Runs of the in-progress merge group (empty at a group boundary).
    group: Vec<RunHandle>,
    /// Sealed image of the in-progress group output (suspend-time Dump
    /// only; reopened for appends on resume).
    pass_run: Option<RunHandle>,
}

impl Encode for SortControl {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.phase);
        enc.put_seq(&self.runs);
        enc.put_u64(self.fill);
        enc.put_bool(self.child_done);
        enc.put_seq(&self.head_addrs);
        enc.put_u64(self.pass_level);
        enc.put_seq(&self.pass_out);
        enc.put_seq(&self.group);
        enc.put_option(&self.pass_run);
    }
}

impl Decode for SortControl {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(SortControl {
            phase: dec.get_u8()?,
            runs: dec.get_seq()?,
            fill: dec.get_u64()?,
            child_done: dec.get_bool()?,
            head_addrs: dec.get_seq()?,
            pass_level: dec.get_u64()?,
            pass_out: dec.get_seq()?,
            group: dec.get_seq()?,
            pass_run: dec.get_option()?,
        })
    }
}

/// External (two-phase merge) sort on an integer key column.
pub struct ExternalSort {
    op: OpId,
    child: Box<dyn Operator>,
    key: usize,
    buffer_size: usize,
    /// Merge fan-in cap (0 = unlimited, single-pass merge).
    merge_fanin: usize,
    schema: Schema,

    phase: u8,
    buf: Vec<Tuple>,
    heap_bytes: usize,
    runs: Vec<RunHandle>,
    child_done: bool,

    readers: Vec<RunReader>,
    heads: Vec<Option<Tuple>>,
    head_addrs: Vec<Option<TupleAddr>>,
    pages_noted: u64,

    /// Intermediate-pass state (PHASE_PASS only): pass ordinal, completed
    /// outputs of the current pass, the in-progress group's inputs, its
    /// output writer, and the sealed image of that writer at suspend.
    pass_level: u64,
    pass_out: Vec<RunHandle>,
    group: Vec<RunHandle>,
    pass_writer: Option<RunWriter>,
    pass_run: Option<RunHandle>,

    last_in_ctr: Option<CtrId>,
    produced_since_sign: u64,
    migration_enabled: bool,
    pending: VecDeque<Tuple>,
}

impl ExternalSort {
    /// Sort `child` on integer column `key` with a buffer of
    /// `buffer_size` tuples.
    pub fn new(op: OpId, child: Box<dyn Operator>, key: usize, buffer_size: usize) -> Self {
        let schema = child.schema().clone();
        Self {
            op,
            child,
            key,
            buffer_size,
            merge_fanin: 0,
            schema,
            phase: PHASE_BUILD,
            buf: Vec::new(),
            heap_bytes: 0,
            runs: Vec::new(),
            child_done: false,
            readers: Vec::new(),
            heads: Vec::new(),
            head_addrs: Vec::new(),
            pages_noted: 0,
            pass_level: 0,
            pass_out: Vec::new(),
            group: Vec::new(),
            pass_writer: None,
            pass_run: None,
            last_in_ctr: None,
            produced_since_sign: 0,
            migration_enabled: true,
            pending: VecDeque::new(),
        }
    }

    /// Disable contract migration (ablation toggle — dramatic for sort).
    pub fn without_migration(mut self) -> Self {
        self.migration_enabled = false;
        self
    }

    /// Cap the merge fan-in at `fanin` runs (0 = unlimited). More sublists
    /// than the cap trigger intermediate merge passes.
    pub fn with_merge_fanin(mut self, fanin: usize) -> Self {
        self.merge_fanin = fanin;
        self
    }

    fn control(&self) -> SortControl {
        SortControl {
            phase: self.phase,
            runs: self.runs.clone(),
            fill: self.buf.len() as u64,
            child_done: self.child_done,
            head_addrs: self.head_addrs.clone(),
            pass_level: self.pass_level,
            pass_out: self.pass_out.clone(),
            group: self.group.clone(),
            pass_run: self.pass_run,
        }
    }

    fn sort_key(&self, t: &Tuple) -> Result<i64> {
        t.get(self.key).as_int()
    }

    /// Sort the buffer and write it as a sublist. Charges the run writes
    /// to this operator's work.
    fn flush_run(&mut self, ctx: &mut ExecContext) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let mut keyed: Vec<(i64, Tuple)> = Vec::with_capacity(self.buf.len());
        for t in self.buf.drain(..) {
            let k = t.get(self.key).as_int()?;
            keyed.push((k, t));
        }
        keyed.sort_by_key(|(k, _)| *k);
        let mut w = RunWriter::create(ctx.db.pool().clone())?;
        for (_, t) in &keyed {
            w.append(t)?;
        }
        let handle = w.finish()?;
        let pages = ctx.db.pool().num_pages(handle.file)?;
        ctx.note_page_writes(self.op, pages);
        self.runs.push(handle);
        self.heap_bytes = 0;
        Ok(())
    }

    /// Proactive checkpoint at a phase-1 minimal-heap-state point, with
    /// contract signing on the child and migration of the incoming
    /// contract (sort produces nothing in phase 1, so migration always
    /// applies).
    fn checkpoint(&mut self, ctx: &mut ExecContext) -> Result<()> {
        if !ctx.checkpoints_enabled {
            return Ok(());
        }
        debug_assert!(self.buf.is_empty());
        let control = self.control().encode_to_vec();
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, control.clone(), work);
        if !self.child_done {
            self.child.sign_contract(ctx, ck)?;
        }
        if self.migration_enabled && self.produced_since_sign == 0 {
            if let Some(ctr) = self.last_in_ctr {
                if ctx.graph.contract(ctr).is_some() {
                    ctx.graph.migrate_contract(
                        ctr,
                        Migration::to(ck).with_control(control).with_work(work),
                    )?;
                }
            }
        }
        ctx.graph.prune_for(self.op);
        Ok(())
    }

    fn enter_merge(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.flush_run(ctx)?;
        if self.merge_fanin > 0 && self.runs.len() > self.merge_fanin {
            // Too many sublists for one merge: run intermediate passes.
            // The phase entry is a materialization point (all inputs are
            // sealed on disk) and a minimal-heap-state group boundary.
            self.phase = PHASE_PASS;
            self.checkpoint(ctx)?;
            return Ok(());
        }
        self.open_final_merge(ctx)?;
        // Proactive checkpoint at the phase boundary: the sublists are a
        // materialization point.
        self.checkpoint_merge(ctx)?;
        Ok(())
    }

    fn open_final_merge(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.phase = PHASE_MERGE;
        self.pages_noted = 0;
        self.readers = self
            .runs
            .iter()
            .map(|&h| RunReader::open(ctx.db.pool().clone(), h))
            .collect();
        self.heads = vec![None; self.runs.len()];
        self.head_addrs = vec![None; self.runs.len()];
        for i in 0..self.readers.len() {
            self.advance_head(ctx, i)?;
        }
        Ok(())
    }

    /// One unit of intermediate-pass work: start the next merge group,
    /// merge one tuple into the group's output run, or roll the pass over
    /// when its queue drains. Ticks once per merged tuple, so every
    /// mid-pass position is a suspendable work-unit boundary.
    fn pass_step(&mut self, ctx: &mut ExecContext) -> Result<()> {
        if self.readers.is_empty() {
            if self.runs.is_empty() {
                // Pass complete: its outputs are the next pass's inputs.
                self.runs = std::mem::take(&mut self.pass_out);
                self.pass_level += 1;
                if self.merge_fanin == 0 || self.runs.len() <= self.merge_fanin {
                    self.open_final_merge(ctx)?;
                    self.checkpoint_merge(ctx)?;
                } else {
                    self.checkpoint(ctx)?;
                }
                return Ok(());
            }
            // Start the next merge group.
            let take = self.merge_fanin.min(self.runs.len()).max(1);
            self.group = self.runs.drain(..take).collect();
            let (tuples, pages) = self
                .group
                .iter()
                .fold((0u64, 0u64), |(t, p), h| (t + h.tuples, p + h.pages));
            {
                let (op, pass, runs) = (self.op.0, self.pass_level, self.group.len() as u64);
                ctx.db.ledger().trace(|| qsr_storage::TraceEvent::MergePass {
                    op,
                    pass,
                    runs,
                    tuples,
                    pages,
                });
            }
            self.pages_noted = 0;
            self.readers = self
                .group
                .iter()
                .map(|&h| RunReader::open(ctx.db.pool().clone(), h))
                .collect();
            self.heads = vec![None; self.group.len()];
            self.head_addrs = vec![None; self.group.len()];
            for i in 0..self.readers.len() {
                self.advance_head(ctx, i)?;
            }
            self.pass_writer = Some(RunWriter::create(ctx.db.pool().clone())?);
            self.pass_run = None;
            return Ok(());
        }
        match self.pop_min(ctx)? {
            Some(t) => {
                self.pass_writer
                    .as_mut()
                    .ok_or_else(|| StorageError::invalid("sort pass writer missing"))?
                    .append(&t)?;
                ctx.tick(self.op);
            }
            None => {
                // Group exhausted: seal its output — a materialization
                // point — and checkpoint the group boundary (contract
                // migration applies: passes emit nothing).
                let w = self
                    .pass_writer
                    .take()
                    .ok_or_else(|| StorageError::invalid("sort pass writer missing"))?;
                let handle = w.finish()?;
                let pages = ctx.db.pool().num_pages(handle.file)?;
                ctx.note_page_writes(self.op, pages);
                self.pass_out.push(handle);
                self.pass_run = None;
                self.readers.clear();
                self.heads.clear();
                self.head_addrs.clear();
                self.group.clear();
                self.checkpoint(ctx)?;
            }
        }
        Ok(())
    }

    /// Seal the in-progress pass output so its handle can ride in the
    /// suspend control record. Retry-safe: once sealed, the writer is gone
    /// and a re-walked suspend finds `pass_run` already recorded.
    fn seal_pass_writer(&mut self, ctx: &mut ExecContext) -> Result<()> {
        if let Some(w) = self.pass_writer.as_mut() {
            let pending = w.pending_pages();
            ctx.guard_suspend_write(pending)?;
            let handle = w.seal()?;
            if pending > 0 {
                ctx.db.ledger().trace(|| qsr_storage::TraceEvent::MetaWrite {
                    label: "pass-seal",
                    pages: pending,
                });
            }
            let pages = ctx.db.pool().num_pages(handle.file)?;
            ctx.note_page_writes(self.op, pages);
            self.pass_run = Some(handle);
            self.pass_writer = None;
        }
        Ok(())
    }

    /// Phase-2 checkpoint: positions only (reactive-style; "behaves
    /// similarly to a table scan").
    fn checkpoint_merge(&mut self, ctx: &mut ExecContext) -> Result<()> {
        if !ctx.checkpoints_enabled {
            return Ok(());
        }
        let control = self.control().encode_to_vec();
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, control.clone(), work);
        if self.migration_enabled && self.produced_since_sign == 0 {
            if let Some(ctr) = self.last_in_ctr {
                if ctx.graph.contract(ctr).is_some() {
                    ctx.graph.migrate_contract(
                        ctr,
                        Migration::to(ck).with_control(control).with_work(work),
                    )?;
                }
            }
        }
        ctx.graph.prune_for(self.op);
        let _ = ck;
        Ok(())
    }

    fn advance_head(&mut self, ctx: &mut ExecContext, i: usize) -> Result<()> {
        let addr = self.readers[i].position();
        let t = self.readers[i].next()?;
        self.head_addrs[i] = t.as_ref().map(|_| addr);
        self.heads[i] = t;
        self.note_io(ctx);
        Ok(())
    }

    fn note_io(&mut self, ctx: &mut ExecContext) {
        let fetched: u64 = self.readers.iter().map(RunReader::pages_fetched).sum();
        let delta = fetched.saturating_sub(self.pages_noted);
        self.pages_noted = fetched;
        ctx.note_page_reads(self.op, delta);
    }

    fn pop_min(&mut self, ctx: &mut ExecContext) -> Result<Option<Tuple>> {
        let mut best: Option<(usize, i64)> = None;
        for (i, h) in self.heads.iter().enumerate() {
            if let Some(t) = h {
                let k = self.sort_key(t)?;
                if best.is_none_or(|(_, bk)| k < bk) {
                    best = Some((i, k));
                }
            }
        }
        match best {
            Some((i, _)) => {
                let t = self.heads[i]
                    .take()
                    .ok_or_else(|| StorageError::invalid("sort merge head missing"))?;
                self.advance_head(ctx, i)?;
                Ok(Some(t))
            }
            None => Ok(None),
        }
    }
}

impl Operator for ExternalSort {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.open(ctx)?;
        self.checkpoint(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Poll> {
        if let Some(t) = self.pending.pop_front() {
            return Ok(Poll::Tuple(t));
        }
        loop {
            if ctx.suspend_pending() {
                return Ok(Poll::Suspended);
            }
            if self.phase == PHASE_BUILD {
                if self.child_done {
                    self.enter_merge(ctx)?;
                    continue;
                }
                if self.buf.len() >= self.buffer_size {
                    self.flush_run(ctx)?;
                    self.checkpoint(ctx)?;
                    continue;
                }
                match self.child.next(ctx)? {
                    Poll::Tuple(t) => {
                        self.heap_bytes += t.heap_bytes();
                        self.buf.push(t);
                        ctx.tick(self.op);
                    }
                    Poll::Done => self.child_done = true,
                    Poll::Suspended => return Ok(Poll::Suspended),
                }
            } else if self.phase == PHASE_PASS {
                self.pass_step(ctx)?;
            } else {
                return match self.pop_min(ctx)? {
                    Some(t) => {
                        self.produced_since_sign += 1;
                        Ok(Poll::Tuple(t))
                    }
                    None => Ok(Poll::Done),
                };
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.close(ctx)?;
        self.buf.clear();
        self.readers.clear();
        Ok(())
    }

    fn sign_contract(&mut self, ctx: &mut ExecContext, parent_ckpt: CkptId) -> Result<CtrId> {
        // Build and pass phases anchor contracts at the latest proactive
        // checkpoint (a mid-group reactive point would not be a valid
        // GoBack target: the group's partial output run is unsealed).
        let ctr = if self.phase != PHASE_MERGE {
            let latest = match ctx.graph.latest_ckpt(self.op) {
                Some(ck) => ck,
                None => ctx.graph.create_barrier_checkpoint(
                    self.op,
                    self.control().encode_to_vec(),
                    ctx.work.get(self.op),
                ),
            };
            ctx.graph.sign_contract(
                parent_ckpt,
                self.op,
                latest,
                self.control().encode_to_vec(),
                ctx.work.get(self.op),
                vec![],
            )?
        } else {
            // Phase 2: fresh reactive checkpoint capturing run positions.
            let control = self.control().encode_to_vec();
            let work = ctx.work.get(self.op);
            let ck = ctx.graph.create_checkpoint(self.op, control.clone(), work);
            ctx.graph.prune_for(self.op);
            ctx.graph
                .sign_contract(parent_ckpt, self.op, ck, control, work, vec![])?
        };
        self.last_in_ctr = Some(ctr);
        self.produced_since_sign = 0;
        Ok(ctr)
    }

    fn side_snapshot(&mut self, _ctx: &mut ExecContext) -> Result<SideSnapshot> {
        Err(StorageError::invalid(
            "sort cannot appear in a positional subtree",
        ))
    }

    fn suspend(
        &mut self,
        ctx: &mut ExecContext,
        mode: SuspendMode,
        plan: &SuspendPlan,
        sq: &mut SuspendedQuery,
    ) -> Result<()> {
        let strategy = plan.get(self.op);
        // A Dump mid-pass must carry the partial group output: seal it so
        // its handle rides in the control record (no-op otherwise).
        if matches!(strategy, Strategy::Dump) {
            self.seal_pass_writer(ctx)?;
        }
        let (resume_point, saved, enforce_child): (Vec<u8>, Vec<Vec<u8>>, Option<Option<CtrId>>) =
            match mode {
                SuspendMode::Current => match strategy {
                    Strategy::Dump => (self.control().encode_to_vec(), Vec::new(), None),
                    Strategy::GoBack { .. } => {
                        let latest = ctx
                            .graph
                            .latest_ckpt(self.op)
                            .ok_or_else(|| StorageError::invalid("sort has no checkpoint"))?;
                        let child_ctr = ctx
                            .graph
                            .contract_from(latest, self.child.op_id())
                            .map(|c| c.id);
                        (self.control().encode_to_vec(), Vec::new(), Some(child_ctr))
                    }
                },
                SuspendMode::Contract(ctr_id) => {
                    let ctr = ctx
                        .graph
                        .contract(ctr_id)
                        .ok_or_else(|| StorageError::invalid(format!("unknown contract {ctr_id}")))?
                        .clone();
                    let target = SortControl::decode_from_slice(&ctr.control)?;
                    match strategy {
                        Strategy::Dump => {
                            // Build/pass targets produced no output since
                            // signing; current state reproduces everything
                            // (and, mid-pass, carries the sealed partial
                            // run a stale target control could not).
                            let resume = if target.phase != PHASE_MERGE {
                                self.control()
                            } else {
                                target
                            };
                            (resume.encode_to_vec(), ctr.saved_tuples.clone(), None)
                        }
                        Strategy::GoBack { .. } => {
                            if target.phase != PHASE_MERGE {
                                // Roll forward from the *fulfilling*
                                // checkpoint: its control (runs so far,
                                // empty buffer) matches exactly where the
                                // enforced child contract repositions the
                                // input. The work from there to the suspend
                                // point is redone by post-resume execution
                                // — one buffer fill when contract migration
                                // kept the checkpoint fresh, every sublist
                                // without it (the ablation case).
                                let ck_control = ctx
                                    .graph
                                    .checkpoint(ctr.child_ckpt)
                                    .ok_or_else(|| {
                                        StorageError::invalid("missing fulfilling checkpoint")
                                    })?
                                    .control
                                    .clone();
                                let child_ctr = ctx
                                    .graph
                                    .contract_from(ctr.child_ckpt, self.child.op_id())
                                    .map(|c| c.id);
                                (ck_control, ctr.saved_tuples.clone(), Some(child_ctr))
                            } else {
                                // Phase 2: pure repositioning to the
                                // contract point.
                                (ctr.control.clone(), ctr.saved_tuples.clone(), Some(None))
                            }
                        }
                    }
                }
            };

        let heap_dump = match strategy {
            Strategy::Dump if self.phase == PHASE_BUILD && !self.buf.is_empty() => {
                Some(ctx.put_dump_value(self.op, &BufferDump(self.buf.clone()))?)
            }
            _ => None,
        };
        sq.put_record(OpSuspendRecord {
            op: self.op,
            strategy,
            resume_point,
            heap_dump,
            saved_tuples: saved,
            aux: Vec::new(),
        });
        match enforce_child {
            Some(Some(ctr)) => self.child.suspend(ctx, SuspendMode::Contract(ctr), plan, sq),
            _ => self.child.suspend(ctx, SuspendMode::Current, plan, sq),
        }
    }

    fn resume(&mut self, ctx: &mut ExecContext, sq: &SuspendedQuery) -> Result<()> {
        self.child.resume(ctx, sq)?;
        let rec = sq.record(self.op)?;
        let control = SortControl::decode_from_slice(&rec.resume_point)?;
        self.runs = control.runs.clone();
        self.child_done = control.child_done;
        self.phase = control.phase;
        self.buf.clear();
        self.heap_bytes = 0;
        self.readers.clear();
        self.heads.clear();
        self.head_addrs.clear();
        self.pages_noted = 0;
        self.pass_level = control.pass_level;
        self.pass_out = control.pass_out.clone();
        self.group.clear();
        self.pass_writer = None;
        self.pass_run = None;

        if control.phase == PHASE_BUILD {
            match (&rec.strategy, &rec.heap_dump) {
                (Strategy::Dump, Some(blob)) => {
                    let BufferDump(tuples) = ctx.get_dump_value_for(self.op, *blob)?;
                    for t in &tuples {
                        self.heap_bytes += t.heap_bytes();
                    }
                    self.buf = tuples;
                }
                (Strategy::Dump, None) => { /* empty buffer at suspend */ }
                (Strategy::GoBack { .. }, _) => {
                    for _ in 0..control.fill {
                        match self.child.next(ctx)? {
                            Poll::Tuple(t) => {
                                self.heap_bytes += t.heap_bytes();
                                self.buf.push(t);
                            }
                            Poll::Done => {
                                return Err(StorageError::corrupt(
                                    "child exhausted during sort GoBack refill",
                                ))
                            }
                            Poll::Suspended => {
                                return Err(StorageError::invalid(
                                    "suspend during resume refill is not supported",
                                ))
                            }
                        }
                    }
                }
            }
        } else if control.phase == PHASE_PASS {
            match &rec.strategy {
                Strategy::Dump => {
                    // Mid-group: reattach the sealed partial output for
                    // appending and reopen the group readers at their
                    // recorded heads. Between groups (empty group) there is
                    // nothing to reopen.
                    self.group = control.group.clone();
                    if let Some(h) = control.pass_run {
                        self.pass_writer =
                            Some(RunWriter::reopen(ctx.db.pool().clone(), h)?);
                        self.pass_run = Some(h);
                    }
                    self.readers = self
                        .group
                        .iter()
                        .map(|&h| RunReader::open(ctx.db.pool().clone(), h))
                        .collect();
                    self.heads = vec![None; self.group.len()];
                    self.head_addrs = control.head_addrs.clone();
                    for i in 0..self.readers.len() {
                        if let Some(addr) = control.head_addrs[i] {
                            self.readers[i].seek(addr);
                            let t = self.readers[i].next()?;
                            if t.is_none() {
                                return Err(StorageError::corrupt(
                                    "recorded head missing from run",
                                ));
                            }
                            self.heads[i] = t;
                        }
                    }
                    self.note_io(ctx);
                }
                Strategy::GoBack { .. } => {
                    // Checkpoints land at group boundaries, so restart the
                    // in-flight group from scratch: put its inputs back at
                    // the front of the pending-run queue.
                    let mut runs = control.group.clone();
                    runs.append(&mut self.runs);
                    self.runs = runs;
                }
            }
        } else {
            // Final merge: reopen readers and re-read the recorded heads.
            self.readers = self
                .runs
                .iter()
                .map(|&h| RunReader::open(ctx.db.pool().clone(), h))
                .collect();
            self.heads = vec![None; self.runs.len()];
            self.head_addrs = control.head_addrs.clone();
            for i in 0..self.readers.len() {
                if let Some(addr) = control.head_addrs[i] {
                    self.readers[i].seek(addr);
                    let t = self.readers[i].next()?;
                    if t.is_none() {
                        return Err(StorageError::corrupt("recorded head missing from run"));
                    }
                    self.heads[i] = t;
                }
            }
            self.note_io(ctx);
        }
        self.pending = rec
            .saved_tuples
            .iter()
            .map(|b| Tuple::decode_from_slice(b))
            .collect::<Result<_>>()?;
        self.last_in_ctr = None;
        self.produced_since_sign = 0;
        Ok(())
    }

    fn suspend_inputs(&self) -> OpSuspendInputs {
        OpSuspendInputs {
            heap_bytes: self.heap_bytes,
            control_bytes: 32
                + 18
                    * (self.runs.len() + self.pass_out.len() + self.group.len())
                        .max(self.head_addrs.len()),
        }
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Operator)) {
        f(self);
        self.child.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Operator)) {
        f(self);
        self.child.visit_mut(f);
    }
}

/// Heap-dump image of the phase-1 sort buffer, stored as a column-major
/// [`TupleBlock`] (raw value runs, no per-tuple headers).
struct BufferDump(Vec<Tuple>);

impl Encode for BufferDump {
    fn encode(&self, enc: &mut Encoder) {
        TupleBlock(self.0.clone()).encode(enc);
    }
}

impl Decode for BufferDump {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(BufferDump(TupleBlock::decode(dec)?.0))
    }
}
