//! Hash-based grouping with aggregation (paper §4, "Grouping with
//! aggregation, duplicate elimination": "In case these operators use
//! hashing, the first phase is as before. In the second phase, an entire
//! bucket is brought into memory... We again maintain the current
//! aggregate value while processing the current bucket.").
//!
//! Phase 1 partitions the input to disk by group-key hash (the partitions
//! are materialization points, like the hash join's). Phase 2 loads one
//! partition at a time, aggregates it in memory, and emits its groups in
//! sorted group order (deterministic — required for exact resume).
//! Minimal-heap-state points occur at partition boundaries, where
//! proactive checkpoints are created; mid-emission suspension records the
//! partition number and emission cursor, and resume either reloads the
//! dumped table or re-aggregates the partition (GoBack) and *skips*
//! directly to the cursor.

use crate::context::ExecContext;
use crate::operator::{BatchPoll, Operator, Poll, SuspendMode};
use crate::ops::agg::AggFn;
use qsr_core::{
    Batch, CkptId, ColumnVec, CtrId, Migration, OpId, OpSuspendInputs, OpSuspendRecord,
    SideSnapshot, Strategy, SuspendPlan, SuspendedQuery,
};
use qsr_storage::{
    Column, DataType, Decode, Decoder, Encode, Encoder, Result, RunHandle, RunReader, RunWriter,
    Schema, StorageError, Tuple, Value,
};
use std::collections::{HashMap, VecDeque};

const PHASE_PARTITION: u8 = 0;
const PHASE_AGG: u8 = 1;
const PHASE_DONE: u8 = 2;

fn hash_partition(key: i64, partitions: usize) -> usize {
    ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize % partitions
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Acc {
    count: u64,
    sum: i64,
    min: i64,
    max: i64,
}

impl Acc {
    fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: i64::MAX,
            max: i64::MIN,
        }
    }

    fn add(&mut self, v: i64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn value(&self, f: AggFn) -> i64 {
        match f {
            AggFn::Count => self.count as i64,
            AggFn::Sum => self.sum,
            AggFn::Min => self.min,
            AggFn::Max => self.max,
        }
    }
}

impl Encode for Acc {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.count);
        enc.put_i64(self.sum);
        enc.put_i64(self.min);
        enc.put_i64(self.max);
    }
}

impl Decode for Acc {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(Acc {
            count: dec.get_u64()?,
            sum: dec.get_i64()?,
            min: dec.get_i64()?,
            max: dec.get_i64()?,
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
struct HaControl {
    phase: u8,
    runs: Vec<RunHandle>,
    cur_part: u64,
    emit_idx: u64,
    consumed: u64,
}

impl Encode for HaControl {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.phase);
        enc.put_seq(&self.runs);
        enc.put_u64(self.cur_part);
        enc.put_u64(self.emit_idx);
        enc.put_u64(self.consumed);
    }
}

impl Decode for HaControl {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(HaControl {
            phase: dec.get_u8()?,
            runs: dec.get_seq()?,
            cur_part: dec.get_u64()?,
            emit_idx: dec.get_u64()?,
            consumed: dec.get_u64()?,
        })
    }
}

/// Hash-partitioned group-by aggregate.
pub struct HashAgg {
    op: OpId,
    child: Box<dyn Operator>,
    group_col: usize,
    agg_col: usize,
    func: AggFn,
    partitions: usize,
    schema: Schema,

    phase: u8,
    writers: Vec<Option<RunWriter>>,
    runs: Vec<RunHandle>,
    cur_part: usize,
    /// Current partition's groups, sorted by key, with emission cursor.
    groups: Vec<(i64, Acc)>,
    emit_idx: usize,
    heap_bytes: usize,
    consumed: u64,

    last_in_ctr: Option<CtrId>,
    produced_since_sign: u64,
    migration_enabled: bool,
    pending: VecDeque<Tuple>,
}

impl HashAgg {
    /// Create a hash aggregate grouping on `group_col`, aggregating
    /// `agg_col` with `func`, using `partitions` disk partitions.
    pub fn new(
        op: OpId,
        child: Box<dyn Operator>,
        group_col: usize,
        agg_col: usize,
        func: AggFn,
        partitions: usize,
    ) -> Self {
        let schema = Schema::new(vec![
            child.schema().column(group_col).clone(),
            Column::new("agg", DataType::Int),
        ]);
        Self {
            op,
            child,
            group_col,
            agg_col,
            func,
            partitions: partitions.max(1),
            schema,
            phase: PHASE_PARTITION,
            writers: Vec::new(),
            runs: Vec::new(),
            cur_part: 0,
            groups: Vec::new(),
            emit_idx: 0,
            heap_bytes: 0,
            consumed: 0,
            last_in_ctr: None,
            produced_since_sign: 0,
            migration_enabled: true,
            pending: VecDeque::new(),
        }
    }

    /// Disable contract migration (ablation toggle).
    pub fn without_migration(mut self) -> Self {
        self.migration_enabled = false;
        self
    }

    fn control(&self) -> HaControl {
        HaControl {
            phase: self.phase,
            runs: self.runs.clone(),
            cur_part: self.cur_part as u64,
            emit_idx: self.emit_idx as u64,
            consumed: self.consumed,
        }
    }

    fn checkpoint(&mut self, ctx: &mut ExecContext, sign_child: bool) -> Result<()> {
        if !ctx.checkpoints_enabled {
            return Ok(());
        }
        let control = self.control().encode_to_vec();
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, control.clone(), work);
        if sign_child {
            self.child.sign_contract(ctx, ck)?;
        }
        if self.migration_enabled && self.produced_since_sign == 0 {
            if let Some(ctr) = self.last_in_ctr {
                if ctx.graph.contract(ctr).is_some() {
                    ctx.graph.migrate_contract(
                        ctr,
                        Migration::to(ck).with_control(control).with_work(work),
                    )?;
                }
            }
        }
        ctx.graph.prune_for(self.op);
        Ok(())
    }

    fn load_partition(&mut self, ctx: &mut ExecContext, part: usize) -> Result<()> {
        let mut table: HashMap<i64, Acc> = HashMap::new();
        let mut bytes = 0usize;
        let mut r = RunReader::open(ctx.db.pool().clone(), self.runs[part]);
        while let Some(t) = r.next()? {
            let g = t.get(self.group_col).as_int()?;
            let v = t.get(self.agg_col).as_int()?;
            table.entry(g).or_insert_with(Acc::new).add(v);
            bytes += 40;
        }
        ctx.note_page_reads(self.op, r.pages_fetched());
        let mut groups: Vec<(i64, Acc)> = table.into_iter().collect();
        groups.sort_by_key(|(g, _)| *g);
        self.groups = groups;
        self.heap_bytes = bytes;
        Ok(())
    }
}

impl Operator for HashAgg {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.open(ctx)?;
        self.checkpoint(ctx, true)?;
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Poll> {
        if let Some(t) = self.pending.pop_front() {
            return Ok(Poll::Tuple(t));
        }
        loop {
            if ctx.suspend_pending() {
                return Ok(Poll::Suspended);
            }
            match self.phase {
                PHASE_PARTITION => {
                    while self.writers.len() < self.partitions {
                        self.writers
                            .push(Some(RunWriter::create(ctx.db.pool().clone())?));
                    }
                    match self.child.next(ctx)? {
                        Poll::Tuple(t) => {
                            ctx.tick(self.op);
                            self.consumed += 1;
                            let g = t.get(self.group_col).as_int()?;
                            let p = hash_partition(g, self.partitions);
                            self.writers[p]
                                .as_mut()
                                .ok_or_else(|| {
                                    StorageError::invalid("hash-agg partition writer missing")
                                })?
                                .append(&t)?;
                        }
                        Poll::Done => {
                            for w in self.writers.drain(..) {
                                let handle = w
                                    .ok_or_else(|| {
                                        StorageError::invalid("hash-agg partition writer missing")
                                    })?
                                    .finish()?;
                                let pages = ctx.db.pool().num_pages(handle.file)?;
                                ctx.note_page_writes(self.op, pages);
                                self.runs.push(handle);
                            }
                            self.phase = PHASE_AGG;
                            self.cur_part = 0;
                            self.emit_idx = 0;
                            self.groups.clear();
                            self.heap_bytes = 0;
                            // Materialization point.
                            self.checkpoint(ctx, false)?;
                        }
                        Poll::Suspended => return Ok(Poll::Suspended),
                    }
                }
                PHASE_AGG => {
                    if self.cur_part >= self.partitions {
                        self.phase = PHASE_DONE;
                        continue;
                    }
                    if self.groups.is_empty() && self.emit_idx == 0 {
                        self.load_partition(ctx, self.cur_part)?;
                    }
                    if self.emit_idx < self.groups.len() {
                        let (g, acc) = self.groups[self.emit_idx];
                        self.emit_idx += 1;
                        self.produced_since_sign += 1;
                        return Ok(Poll::Tuple(Tuple::new(vec![
                            Value::Int(g),
                            Value::Int(acc.value(self.func)),
                        ])));
                    }
                    // Partition exhausted: minimal-heap-state point.
                    self.groups.clear();
                    self.heap_bytes = 0;
                    self.emit_idx = 0;
                    self.cur_part += 1;
                    self.checkpoint(ctx, false)?;
                }
                PHASE_DONE => return Ok(Poll::Done),
                p => return Err(StorageError::corrupt(format!("bad hash-agg phase {p}"))),
            }
        }
    }

    /// Vectorized execution. The partition phase consumes whole child
    /// batches (the group key is read from the unboxed column slice when
    /// monomorphic); the emission phase fills a column-major output batch
    /// in a tight loop. Per-tuple `tick` accounting matches `next()`, so
    /// suspend triggers fire on identical work units; a consumed child
    /// batch is always fully partitioned before a pending suspend
    /// surfaces.
    fn next_batch(&mut self, ctx: &mut ExecContext, max: usize) -> Result<BatchPoll> {
        let max = max.max(1);
        let mut out = Batch::with_capacity(self.schema.len(), max);
        while let Some(t) = self.pending.pop_front() {
            out.push(&t);
            if out.len() >= max {
                return Ok(BatchPoll::Batch(out));
            }
        }
        loop {
            if ctx.suspend_pending() {
                return Ok(match out.is_empty() {
                    true => BatchPoll::Suspended,
                    false => BatchPoll::Batch(out),
                });
            }
            match self.phase {
                PHASE_PARTITION => {
                    while self.writers.len() < self.partitions {
                        self.writers
                            .push(Some(RunWriter::create(ctx.db.pool().clone())?));
                    }
                    match self.child.next_batch(ctx, max)? {
                        BatchPoll::Batch(b) => {
                            let ints = b.column(self.group_col).and_then(ColumnVec::as_ints);
                            let rows: Vec<usize> = b.live_rows().collect();
                            for &r in &rows {
                                ctx.tick(self.op);
                                self.consumed += 1;
                                let g = match ints {
                                    Some(ints) => ints[r],
                                    None => b.value(r, self.group_col).as_int()?,
                                };
                                let p = hash_partition(g, self.partitions);
                                self.writers[p]
                                    .as_mut()
                                    .ok_or_else(|| {
                                        StorageError::invalid("hash-agg partition writer missing")
                                    })?
                                    .append(&b.tuple(r))?;
                            }
                        }
                        BatchPoll::Done => {
                            for w in self.writers.drain(..) {
                                let handle = w
                                    .ok_or_else(|| {
                                        StorageError::invalid("hash-agg partition writer missing")
                                    })?
                                    .finish()?;
                                let pages = ctx.db.pool().num_pages(handle.file)?;
                                ctx.note_page_writes(self.op, pages);
                                self.runs.push(handle);
                            }
                            self.phase = PHASE_AGG;
                            self.cur_part = 0;
                            self.emit_idx = 0;
                            self.groups.clear();
                            self.heap_bytes = 0;
                            self.checkpoint(ctx, false)?;
                        }
                        BatchPoll::Suspended => {
                            return Ok(match out.is_empty() {
                                true => BatchPoll::Suspended,
                                false => BatchPoll::Batch(out),
                            })
                        }
                    }
                }
                PHASE_AGG => {
                    if self.cur_part >= self.partitions {
                        self.phase = PHASE_DONE;
                        continue;
                    }
                    if self.groups.is_empty() && self.emit_idx == 0 {
                        self.load_partition(ctx, self.cur_part)?;
                    }
                    while self.emit_idx < self.groups.len() {
                        if ctx.suspend_pending() {
                            break;
                        }
                        let (g, acc) = self.groups[self.emit_idx];
                        self.emit_idx += 1;
                        self.produced_since_sign += 1;
                        out.push_row(vec![Value::Int(g), Value::Int(acc.value(self.func))]);
                        if out.len() >= max {
                            return Ok(BatchPoll::Batch(out));
                        }
                    }
                    if ctx.suspend_pending() {
                        continue; // loop top returns the partial batch
                    }
                    self.groups.clear();
                    self.heap_bytes = 0;
                    self.emit_idx = 0;
                    self.cur_part += 1;
                    self.checkpoint(ctx, false)?;
                }
                PHASE_DONE => {
                    return Ok(match out.is_empty() {
                        true => BatchPoll::Done,
                        false => BatchPoll::Batch(out),
                    })
                }
                p => return Err(StorageError::corrupt(format!("bad hash-agg phase {p}"))),
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.close(ctx)?;
        self.groups.clear();
        Ok(())
    }

    fn sign_contract(&mut self, ctx: &mut ExecContext, parent_ckpt: CkptId) -> Result<CtrId> {
        let ctr = if self.phase == PHASE_PARTITION {
            let latest = match ctx.graph.latest_ckpt(self.op) {
                Some(ck) => ck,
                None => ctx.graph.create_barrier_checkpoint(
                    self.op,
                    self.control().encode_to_vec(),
                    ctx.work.get(self.op),
                ),
            };
            ctx.graph.sign_contract(
                parent_ckpt,
                self.op,
                latest,
                self.control().encode_to_vec(),
                ctx.work.get(self.op),
                vec![],
            )?
        } else {
            // Reactive in the emission phase: the cursor is the contract.
            let control = self.control().encode_to_vec();
            let work = ctx.work.get(self.op);
            let ck = ctx.graph.create_checkpoint(self.op, control.clone(), work);
            ctx.graph.prune_for(self.op);
            ctx.graph
                .sign_contract(parent_ckpt, self.op, ck, control, work, vec![])?
        };
        self.last_in_ctr = Some(ctr);
        self.produced_since_sign = 0;
        Ok(ctr)
    }

    fn side_snapshot(&mut self, _ctx: &mut ExecContext) -> Result<SideSnapshot> {
        Err(StorageError::invalid(
            "hash aggregate cannot appear in a positional subtree",
        ))
    }

    fn suspend(
        &mut self,
        ctx: &mut ExecContext,
        mode: SuspendMode,
        plan: &SuspendPlan,
        sq: &mut SuspendedQuery,
    ) -> Result<()> {
        let strategy = plan.get(self.op);

        // Seal any in-progress partitions, in place: a writer leaves the
        // vec only after its flush succeeded and its handle is recorded
        // in `self.runs`, so a suspend attempt failing here or in a later
        // operator can be retried by the next degradation-ladder rung
        // without losing buffered tuples or already-sealed handles.
        while let Some(slot) = self.writers.first_mut() {
            let w = slot
                .as_mut()
                .ok_or_else(|| StorageError::invalid("hash-agg partition writer missing"))?;
            // Non-dump suspend write: admit the tail flush against the
            // rung's I/O budget (see ExecContext::guard_suspend_write).
            let pending = w.pending_pages();
            ctx.guard_suspend_write(pending)?;
            let handle = w.seal()?;
            if pending > 0 {
                ctx.db.ledger().trace(|| qsr_storage::TraceEvent::MetaWrite {
                    label: "partition-seal",
                    pages: pending,
                });
            }
            let pages = ctx.db.pool().num_pages(handle.file)?;
            ctx.note_page_writes(self.op, pages);
            self.runs.push(handle);
            self.writers.remove(0);
        }
        let current = HaControl {
            runs: self.runs.clone(),
            ..self.control()
        };

        let (resume_point, saved, ckpt_for_child): (HaControl, Vec<Vec<u8>>, Option<CkptId>) =
            match mode {
                SuspendMode::Current => match strategy {
                    Strategy::Dump => (current, Vec::new(), None),
                    Strategy::GoBack { .. } => {
                        if self.phase == PHASE_AGG {
                            // Rebuild the table from own runs + skip to the
                            // emission cursor.
                            (current, Vec::new(), None)
                        } else {
                            let latest = ctx.graph.latest_ckpt(self.op).ok_or_else(|| {
                                StorageError::invalid("hash agg has no checkpoint")
                            })?;
                            (current, Vec::new(), Some(latest))
                        }
                    }
                },
                SuspendMode::Contract(ctr_id) => {
                    let ctr = ctx
                        .graph
                        .contract(ctr_id)
                        .ok_or_else(|| StorageError::invalid(format!("unknown contract {ctr_id}")))?
                        .clone();
                    let target = HaControl::decode_from_slice(&ctr.control)?;
                    match strategy {
                        Strategy::Dump => {
                            if target.phase == PHASE_AGG {
                                (target, ctr.saved_tuples.clone(), None)
                            } else {
                                (current, ctr.saved_tuples.clone(), None)
                            }
                        }
                        Strategy::GoBack { .. } => {
                            if target.phase == PHASE_AGG {
                                (target, ctr.saved_tuples.clone(), None)
                            } else {
                                (target, ctr.saved_tuples.clone(), Some(ctr.child_ckpt))
                            }
                        }
                    }
                }
            };

        let heap_dump = match strategy {
            Strategy::Dump if !self.groups.is_empty() => {
                Some(ctx.put_dump_value(self.op, &GroupsDump(self.groups.clone()))?)
            }
            _ => None,
        };
        let aux = match ckpt_for_child {
            Some(ck) => ctx
                .graph
                .checkpoint(ck)
                .map(|c| c.control.clone())
                .unwrap_or_default(),
            None => Vec::new(),
        };
        sq.put_record(OpSuspendRecord {
            op: self.op,
            strategy,
            resume_point: resume_point.encode_to_vec(),
            heap_dump,
            saved_tuples: saved,
            aux,
        });

        match ckpt_for_child {
            Some(ck) => match ctx.graph.contract_from(ck, self.child.op_id()).map(|c| c.id) {
                Some(ctr) => self.child.suspend(ctx, SuspendMode::Contract(ctr), plan, sq),
                None => self.child.suspend(ctx, SuspendMode::Current, plan, sq),
            },
            None => self.child.suspend(ctx, SuspendMode::Current, plan, sq),
        }
    }

    fn resume(&mut self, ctx: &mut ExecContext, sq: &SuspendedQuery) -> Result<()> {
        self.child.resume(ctx, sq)?;
        let rec = sq.record(self.op)?;
        let control = HaControl::decode_from_slice(&rec.resume_point)?;
        self.phase = control.phase;
        self.runs = control.runs.clone();
        self.cur_part = control.cur_part as usize;
        self.emit_idx = control.emit_idx as usize;
        self.consumed = control.consumed;
        self.groups.clear();
        self.heap_bytes = 0;
        self.writers.clear();

        match (&rec.strategy, &rec.heap_dump) {
            (Strategy::Dump, Some(blob)) => {
                let GroupsDump(groups) = ctx.get_dump_value_for(self.op, *blob)?;
                self.heap_bytes = groups.len() * 40;
                self.groups = groups;
            }
            (Strategy::Dump, None) => {
                if self.phase == PHASE_PARTITION {
                    // Reopen partials for appending.
                    self.writers = self
                        .runs
                        .drain(..)
                        .map(|h| RunWriter::reopen(ctx.db.pool().clone(), h).map(Some))
                        .collect::<Result<_>>()?;
                } else if self.phase == PHASE_AGG
                    && (self.emit_idx > 0 || self.cur_part < self.partitions)
                {
                    // Empty table was dumped mid-boundary: nothing to load
                    // eagerly; next() reloads lazily when emit_idx == 0.
                    if self.emit_idx > 0 {
                        self.load_partition(ctx, self.cur_part)?;
                    }
                }
            }
            (Strategy::GoBack { .. }, _) => {
                if self.phase == PHASE_PARTITION {
                    // Counters back to the checkpoint baseline; partials
                    // discarded (redone by post-resume execution).
                    if !rec.aux.is_empty() {
                        let start = HaControl::decode_from_slice(&rec.aux)?;
                        self.consumed = start.consumed;
                    }
                    self.runs.clear();
                } else if self.phase == PHASE_AGG && self.emit_idx > 0 {
                    // Re-aggregate the current partition and skip to the
                    // cursor (§3.3 skipping: group order is deterministic).
                    self.load_partition(ctx, self.cur_part)?;
                }
            }
        }
        self.pending = rec
            .saved_tuples
            .iter()
            .map(|b| Tuple::decode_from_slice(b))
            .collect::<Result<_>>()?;
        self.last_in_ctr = None;
        self.produced_since_sign = 0;
        Ok(())
    }

    fn suspend_inputs(&self) -> OpSuspendInputs {
        OpSuspendInputs {
            heap_bytes: self.heap_bytes,
            control_bytes: 40 + 16 * self.runs.len(),
        }
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Operator)) {
        f(self);
        self.child.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Operator)) {
        f(self);
        self.child.visit_mut(f);
    }
}

/// Heap-dump image of the current partition's groups. Zero-copy layout:
/// one raw little-endian run of the `n` group keys followed by one raw
/// run of `n` fixed-width (32-byte) accumulators — no per-group headers.
struct GroupsDump(Vec<(i64, Acc)>);

const ACC_BYTES: usize = 32;

impl Encode for GroupsDump {
    fn encode(&self, enc: &mut Encoder) {
        let n = self.0.len();
        enc.put_u32(n as u32);
        let mut keys = Vec::with_capacity(n * 8);
        let mut accs = Vec::with_capacity(n * ACC_BYTES);
        for (g, a) in &self.0 {
            keys.extend_from_slice(&g.to_le_bytes());
            accs.extend_from_slice(&a.count.to_le_bytes());
            accs.extend_from_slice(&a.sum.to_le_bytes());
            accs.extend_from_slice(&a.min.to_le_bytes());
            accs.extend_from_slice(&a.max.to_le_bytes());
        }
        enc.put_raw(&keys);
        enc.put_raw(&accs);
    }
}

impl Decode for GroupsDump {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let n = dec.get_u32()? as usize;
        if n > (1 << 28) {
            return Err(StorageError::corrupt(format!(
                "groups dump claims {n} groups"
            )));
        }
        let keys = dec.get_raw(n * 8)?;
        let accs = dec.get_raw(n * ACC_BYTES)?;
        let mut out = Vec::with_capacity(n);
        for (krow, arow) in keys.chunks_exact(8).zip(accs.chunks_exact(ACC_BYTES)) {
            let g = i64::from_le_bytes(krow.try_into().expect("8-byte key"));
            let word = |i: usize| {
                arow[i * 8..i * 8 + 8]
                    .try_into()
                    .expect("8-byte accumulator word")
            };
            out.push((
                g,
                Acc {
                    count: u64::from_le_bytes(word(0)),
                    sum: i64::from_le_bytes(word(1)),
                    min: i64::from_le_bytes(word(2)),
                    max: i64::from_le_bytes(word(3)),
                },
            ));
        }
        Ok(GroupsDump(out))
    }
}
