//! Block-based nested-loop join — the paper's running example.
//!
//! The outer child fills a large in-memory buffer (the *heap state*); the
//! inner child is then rescanned, joining each inner tuple against the
//! buffer. The buffer is discarded at the end of each batch — the
//! *minimal-heap-state point* — where the operator creates its proactive
//! checkpoint and signs fresh contracts with the outer (rebuild) child.
//! The inner child is *positional*: contracts carry a side snapshot of its
//! position, and resume merely seeks it (§3.3, skipping versus redoing).
//!
//! Contract migration (§3.4 case 1): if a whole batch produces no join
//! output, incoming contracts migrate forward to the new checkpoint.
//!
//! ### Suspend semantics under an enforced contract
//!
//! When the parent enforces contract `Ctr` (signed at time `t_s`) and this
//! operator **dumps** (valid only when no checkpoint was created since
//! `Ctr`'s chain checkpoint — the paper's `c_{i,j} = 0` condition):
//!
//! * if the operator was *filling* at `t_s`, it had produced no output
//!   since `t_s`; the dumped (possibly fuller) buffer plus the *current*
//!   control state reproduce all future outputs, so resume continues from
//!   the current fill point;
//! * if it was *joining* at `t_s`, the buffer is unchanged since `t_s`;
//!   resume restores `Ctr`'s cursor / inner tuple over the dumped buffer.
//!
//! When it **goes back**, resume refills the buffer to `Ctr`'s fill level
//! through the outer child (repositioned via the checkpoint's contract)
//! and then restores `Ctr`'s control state directly — no joins are
//! recomputed.

use crate::context::ExecContext;
use crate::operator::{Operator, Poll, SuspendMode};
use crate::ops::record_side_snapshot;
use qsr_core::{
    CkptId, CtrId, Migration, OpId, OpSuspendInputs, OpSuspendRecord, SideSnapshot, Strategy,
    SuspendPlan, SuspendedQuery,
};
use qsr_storage::{
    Decode, Decoder, Encode, Encoder, Result, Schema, StorageError, Tuple, TupleBlock,
};
use std::collections::VecDeque;

const PHASE_FILL: u8 = 0;
const PHASE_JOIN: u8 = 1;

/// Serializable control state (paper §2: "NLJ's control state consists of
/// a tuple from its inner child and a cursor over the outer buffer" — plus
/// the fill level and phase needed for exact mid-fill suspension).
#[derive(Debug, Clone, PartialEq)]
struct NljControl {
    phase: u8,
    fill: u64,
    cursor: u64,
    inner_tuple: Option<Tuple>,
    outer_done: bool,
}

impl Encode for NljControl {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.phase);
        enc.put_u64(self.fill);
        enc.put_u64(self.cursor);
        enc.put_option(&self.inner_tuple);
        enc.put_bool(self.outer_done);
    }
}

impl Decode for NljControl {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(NljControl {
            phase: dec.get_u8()?,
            fill: dec.get_u64()?,
            cursor: dec.get_u64()?,
            inner_tuple: dec.get_option()?,
            outer_done: dec.get_bool()?,
        })
    }
}

/// Block-based nested-loop equi-join.
pub struct BlockNlj {
    op: OpId,
    outer: Box<dyn Operator>,
    inner: Box<dyn Operator>,
    outer_key: usize,
    inner_key: usize,
    buffer_size: usize,
    schema: Schema,

    buffer: Vec<Tuple>,
    heap_bytes: usize,
    phase: u8,
    cursor: usize,
    inner_tuple: Option<Tuple>,
    outer_done: bool,

    /// Latest incoming contract + outputs since, for migration.
    last_in_ctr: Option<CtrId>,
    produced_since_sign: u64,
    migration_enabled: bool,
    pending: VecDeque<Tuple>,
}

impl BlockNlj {
    /// Create a block NLJ joining `outer.outer_key == inner.inner_key`
    /// with an outer buffer of `buffer_size` tuples.
    pub fn new(
        op: OpId,
        outer: Box<dyn Operator>,
        inner: Box<dyn Operator>,
        outer_key: usize,
        inner_key: usize,
        buffer_size: usize,
    ) -> Self {
        let schema = outer.schema().join(inner.schema());
        Self {
            op,
            outer,
            inner,
            outer_key,
            inner_key,
            buffer_size,
            schema,
            buffer: Vec::new(),
            heap_bytes: 0,
            phase: PHASE_FILL,
            cursor: 0,
            inner_tuple: None,
            outer_done: false,
            last_in_ctr: None,
            produced_since_sign: 0,
            migration_enabled: true,
            pending: VecDeque::new(),
        }
    }

    /// Disable contract migration (ablation toggle).
    pub fn without_migration(mut self) -> Self {
        self.migration_enabled = false;
        self
    }

    fn control(&self) -> NljControl {
        NljControl {
            phase: self.phase,
            fill: self.buffer.len() as u64,
            cursor: self.cursor as u64,
            inner_tuple: self.inner_tuple.clone(),
            outer_done: self.outer_done,
        }
    }

    fn push_buffer(&mut self, t: Tuple) {
        self.heap_bytes += t.heap_bytes();
        self.buffer.push(t);
    }

    fn clear_buffer(&mut self) {
        self.buffer.clear();
        self.heap_bytes = 0;
    }

    /// Proactive checkpoint at the minimal-heap-state point (buffer just
    /// cleared), with contract signing on the rebuild (outer) child and
    /// migration of a dormant incoming contract.
    fn checkpoint(&mut self, ctx: &mut ExecContext) -> Result<()> {
        if !ctx.checkpoints_enabled {
            return Ok(());
        }
        debug_assert!(self.buffer.is_empty());
        let control = self.control().encode_to_vec();
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, control.clone(), work);
        self.outer.sign_contract(ctx, ck)?;
        if self.migration_enabled && self.produced_since_sign == 0 {
            if let Some(ctr) = self.last_in_ctr {
                if ctx.graph.contract(ctr).is_some() {
                    let sides = vec![self.inner.side_snapshot(ctx)?];
                    ctx.graph.migrate_contract(
                        ctr,
                        Migration::to(ck)
                            .with_control(control)
                            .with_work(work)
                            .with_sides(sides),
                    )?;
                }
            }
        }
        ctx.graph.prune_for(self.op);
        Ok(())
    }

    fn keys_match(&self, outer: &Tuple, inner: &Tuple) -> Result<bool> {
        Ok(outer.get(self.outer_key) == inner.get(self.inner_key))
    }

    /// Restore machine state from an encoded control record.
    fn restore_control(&mut self, c: &NljControl) {
        self.phase = c.phase;
        self.cursor = c.cursor as usize;
        self.inner_tuple = c.inner_tuple.clone();
        self.outer_done = c.outer_done;
    }
}

impl Operator for BlockNlj {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.outer.open(ctx)?;
        self.inner.open(ctx)?;
        // Initial proactive checkpoint "just before execution starts".
        self.checkpoint(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Poll> {
        if let Some(t) = self.pending.pop_front() {
            return Ok(Poll::Tuple(t));
        }
        loop {
            if ctx.suspend_pending() {
                return Ok(Poll::Suspended);
            }
            if self.phase == PHASE_FILL {
                if !self.outer_done && self.buffer.len() < self.buffer_size {
                    match self.outer.next(ctx)? {
                        Poll::Tuple(t) => {
                            self.push_buffer(t);
                            ctx.tick(self.op);
                        }
                        Poll::Done => self.outer_done = true,
                        Poll::Suspended => return Ok(Poll::Suspended),
                    }
                } else if self.buffer.is_empty() {
                    debug_assert!(self.outer_done);
                    return Ok(Poll::Done);
                } else {
                    self.inner.rewind(ctx)?;
                    self.inner_tuple = None;
                    self.cursor = 0;
                    self.phase = PHASE_JOIN;
                }
            } else {
                // PHASE_JOIN
                match &self.inner_tuple {
                    None => match self.inner.next(ctx)? {
                        Poll::Tuple(t) => {
                            self.inner_tuple = Some(t);
                            self.cursor = 0;
                        }
                        Poll::Done => {
                            // Batch complete.
                            if self.outer_done {
                                return Ok(Poll::Done);
                            }
                            self.clear_buffer();
                            self.phase = PHASE_FILL;
                            self.checkpoint(ctx)?;
                        }
                        Poll::Suspended => return Ok(Poll::Suspended),
                    },
                    Some(inner) => {
                        let inner = inner.clone();
                        while self.cursor < self.buffer.len() {
                            let i = self.cursor;
                            self.cursor += 1;
                            if self.keys_match(&self.buffer[i], &inner)? {
                                self.produced_since_sign += 1;
                                return Ok(Poll::Tuple(self.buffer[i].join(&inner)));
                            }
                        }
                        self.inner_tuple = None;
                    }
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.outer.close(ctx)?;
        self.inner.close(ctx)?;
        self.clear_buffer();
        Ok(())
    }

    fn sign_contract(&mut self, ctx: &mut ExecContext, parent_ckpt: CkptId) -> Result<CtrId> {
        let latest = match ctx.graph.latest_ckpt(self.op) {
            Some(ck) => ck,
            // No checkpoint yet (resume without a persisted graph, §3.3):
            // sign against a barrier so the contract exists but is never
            // offered as a GoBack chain; the graph re-forms at the next
            // minimal-heap-state point.
            None => ctx.graph.create_barrier_checkpoint(
                self.op,
                self.control().encode_to_vec(),
                ctx.work.get(self.op),
            ),
        };
        let control = self.control().encode_to_vec();
        let work = ctx.work.get(self.op);
        let sides = vec![self.inner.side_snapshot(ctx)?];
        let ctr = ctx
            .graph
            .sign_contract(parent_ckpt, self.op, latest, control, work, sides)?;
        self.last_in_ctr = Some(ctr);
        self.produced_since_sign = 0;
        Ok(ctr)
    }

    fn side_snapshot(&mut self, _ctx: &mut ExecContext) -> Result<SideSnapshot> {
        Err(StorageError::invalid(
            "block NLJ cannot appear in a positional subtree",
        ))
    }

    fn suspend(
        &mut self,
        ctx: &mut ExecContext,
        mode: SuspendMode,
        plan: &SuspendPlan,
        sq: &mut SuspendedQuery,
    ) -> Result<()> {
        let strategy = plan.get(self.op);
        match (mode, strategy) {
            (SuspendMode::Current, Strategy::Dump) => {
                let blob = ctx.put_dump_value(self.op, &BufferDump(self.buffer.clone()))?;
                sq.put_record(OpSuspendRecord {
                    op: self.op,
                    strategy,
                    resume_point: self.control().encode_to_vec(),
                    heap_dump: Some(blob),
                    saved_tuples: Vec::new(),
                    aux: Vec::new(),
                });
                self.outer.suspend(ctx, SuspendMode::Current, plan, sq)?;
                self.inner.suspend(ctx, SuspendMode::Current, plan, sq)
            }
            (SuspendMode::Current, Strategy::GoBack { to }) => {
                debug_assert_eq!(to, self.op, "direct suspend can only go back to self");
                let latest = ctx
                    .graph
                    .latest_ckpt(self.op)
                    .ok_or_else(|| StorageError::invalid("NLJ has no checkpoint"))?;
                sq.put_record(OpSuspendRecord {
                    op: self.op,
                    strategy,
                    resume_point: self.control().encode_to_vec(),
                    heap_dump: None,
                    saved_tuples: Vec::new(),
                    aux: Vec::new(),
                });
                // Enforce the checkpoint's contract on the rebuild child.
                match ctx
                    .graph
                    .contract_from(latest, self.outer.op_id())
                    .map(|c| c.id)
                {
                    Some(ctr) => self.outer.suspend(ctx, SuspendMode::Contract(ctr), plan, sq)?,
                    None => self.outer.suspend(ctx, SuspendMode::Current, plan, sq)?,
                }
                // The inner child is positional: current position suffices.
                self.inner.suspend(ctx, SuspendMode::Current, plan, sq)
            }
            (SuspendMode::Contract(ctr_id), strat) => {
                let ctr = ctx
                    .graph
                    .contract(ctr_id)
                    .ok_or_else(|| StorageError::invalid(format!("unknown contract {ctr_id}")))?
                    .clone();
                let target = NljControl::decode_from_slice(&ctr.control)?;
                match strat {
                    Strategy::Dump => {
                        // Valid only when c_{i,j} = 0 (no checkpoint since
                        // the chain checkpoint — buffer never cleared).
                        let resume = if target.phase == PHASE_FILL {
                            // No output since signing: current state
                            // reproduces all promised outputs.
                            self.control()
                        } else {
                            if target.fill != self.buffer.len() as u64 {
                                return Err(StorageError::invalid(format!(
                                    "NLJ buffer diverged from contract {ctr_id}: \
                                     contract fill {} vs current {}",
                                    target.fill,
                                    self.buffer.len()
                                )));
                            }
                            target
                        };
                        let blob =
                            ctx.put_dump_value(self.op, &BufferDump(self.buffer.clone()))?;
                        sq.put_record(OpSuspendRecord {
                            op: self.op,
                            strategy: strat,
                            resume_point: resume.encode_to_vec(),
                            heap_dump: Some(blob),
                            saved_tuples: ctr.saved_tuples.clone(),
                            aux: Vec::new(),
                        });
                        // Outer position unchanged since the fill that the
                        // contract covers: current position is correct.
                        self.outer.suspend(ctx, SuspendMode::Current, plan, sq)?;
                    }
                    Strategy::GoBack { .. } => {
                        sq.put_record(OpSuspendRecord {
                            op: self.op,
                            strategy: strat,
                            resume_point: ctr.control.clone(),
                            heap_dump: None,
                            saved_tuples: ctr.saved_tuples.clone(),
                            aux: Vec::new(),
                        });
                        match ctx
                            .graph
                            .contract_from(ctr.child_ckpt, self.outer.op_id())
                            .map(|c| c.id)
                        {
                            Some(out_ctr) => {
                                self.outer
                                    .suspend(ctx, SuspendMode::Contract(out_ctr), plan, sq)?
                            }
                            None => self.outer.suspend(ctx, SuspendMode::Current, plan, sq)?,
                        }
                    }
                }
                // The inner child repositions to the contract's side
                // snapshot in both cases.
                for side in &ctr.sides {
                    record_side_snapshot(sq, side);
                }
                Ok(())
            }
        }
    }

    fn resume(&mut self, ctx: &mut ExecContext, sq: &SuspendedQuery) -> Result<()> {
        self.outer.resume(ctx, sq)?;
        self.inner.resume(ctx, sq)?;
        let rec = sq.record(self.op)?;
        let control = NljControl::decode_from_slice(&rec.resume_point)?;
        self.clear_buffer();
        match (&rec.strategy, &rec.heap_dump) {
            (Strategy::Dump, Some(blob)) => {
                let BufferDump(tuples) = ctx.get_dump_value_for(self.op, *blob)?;
                for t in tuples {
                    self.push_buffer(t);
                }
                if self.buffer.len() as u64 != control.fill {
                    return Err(StorageError::corrupt(format!(
                        "NLJ buffer dump holds {} tuples but control records fill {}",
                        self.buffer.len(),
                        control.fill
                    )));
                }
            }
            (Strategy::GoBack { .. }, _) => {
                // Refill the buffer through the (repositioned) outer child.
                for _ in 0..control.fill {
                    match self.outer.next(ctx)? {
                        Poll::Tuple(t) => self.push_buffer(t),
                        Poll::Done => {
                            return Err(StorageError::corrupt(
                                "outer child exhausted during GoBack refill",
                            ))
                        }
                        Poll::Suspended => {
                            return Err(StorageError::invalid(
                                "suspend during resume refill is not supported",
                            ))
                        }
                    }
                }
            }
            (Strategy::Dump, None) => {
                return Err(StorageError::corrupt("dump record without heap blob"))
            }
        }
        self.restore_control(&control);
        self.pending = rec
            .saved_tuples
            .iter()
            .map(|b| Tuple::decode_from_slice(b))
            .collect::<Result<_>>()?;
        self.last_in_ctr = None;
        self.produced_since_sign = 0;
        Ok(())
    }

    fn suspend_inputs(&self) -> OpSuspendInputs {
        OpSuspendInputs {
            heap_bytes: self.heap_bytes,
            control_bytes: 64
                + self
                    .inner_tuple
                    .as_ref()
                    .map(Tuple::heap_bytes)
                    .unwrap_or(0),
        }
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Operator)) {
        f(self);
        self.outer.visit(f);
        self.inner.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Operator)) {
        f(self);
        self.outer.visit_mut(f);
        self.inner.visit_mut(f);
    }
}

/// Heap-dump payload: the outer buffer, stored as a column-major
/// [`TupleBlock`] (raw value runs, no per-tuple headers).
struct BufferDump(Vec<Tuple>);

impl Encode for BufferDump {
    fn encode(&self, enc: &mut Encoder) {
        TupleBlock(self.0.clone()).encode(enc);
    }
}

impl Decode for BufferDump {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(BufferDump(TupleBlock::decode(dec)?.0))
    }
}
