//! Filter (paper §4, "Filter").
//!
//! Stateless: reactive checkpointing only. Implements **contract
//! migration** (§3.4): after signing a contract, the filter migrates it to
//! a fresh reactive checkpoint upon finding the first matching tuple,
//! saving that tuple in the contract (footnote 3) so the child never has
//! to regenerate the non-matching prefix on resume.

use crate::context::ExecContext;
use crate::operator::{BatchPoll, Operator, Poll, SuspendMode};
use qsr_core::{
    Batch, CkptId, ColumnVec, CtrId, Migration, OpId, OpSuspendInputs, OpSuspendRecord,
    SideSnapshot, SuspendPlan, SuspendedQuery,
};
use qsr_storage::{
    Decode, Decoder, Encode, Encoder, Result, Schema, StorageError, Tuple,
};
use std::collections::VecDeque;

/// A serializable predicate over a tuple.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// `tuple[col] < value` (integer column). With the workload's `sel`
    /// column this expresses exact-selectivity filters.
    IntLt {
        /// Column index.
        col: usize,
        /// Threshold.
        value: i64,
    },
    /// `tuple[col] >= value`.
    IntGe {
        /// Column index.
        col: usize,
        /// Threshold.
        value: i64,
    },
    /// `tuple[col] == value`.
    IntEq {
        /// Column index.
        col: usize,
        /// Comparand.
        value: i64,
    },
}

impl Predicate {
    /// Evaluate against a tuple.
    pub fn eval(&self, t: &Tuple) -> Result<bool> {
        Ok(match self {
            Predicate::True => true,
            Predicate::IntLt { col, value } => t.get(*col).as_int()? < *value,
            Predicate::IntGe { col, value } => t.get(*col).as_int()? >= *value,
            Predicate::IntEq { col, value } => t.get(*col).as_int()? == *value,
        })
    }
}

impl Encode for Predicate {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Predicate::True => enc.put_u8(0),
            Predicate::IntLt { col, value } => {
                enc.put_u8(1);
                enc.put_usize(*col);
                enc.put_i64(*value);
            }
            Predicate::IntGe { col, value } => {
                enc.put_u8(2);
                enc.put_usize(*col);
                enc.put_i64(*value);
            }
            Predicate::IntEq { col, value } => {
                enc.put_u8(3);
                enc.put_usize(*col);
                enc.put_i64(*value);
            }
        }
    }
}

impl Decode for Predicate {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(match dec.get_u8()? {
            0 => Predicate::True,
            1 => Predicate::IntLt {
                col: dec.get_usize()?,
                value: dec.get_i64()?,
            },
            2 => Predicate::IntGe {
                col: dec.get_usize()?,
                value: dec.get_i64()?,
            },
            3 => Predicate::IntEq {
                col: dec.get_usize()?,
                value: dec.get_i64()?,
            },
            t => return Err(StorageError::corrupt(format!("bad predicate tag {t}"))),
        })
    }
}

/// Filtering operator.
pub struct Filter {
    op: OpId,
    predicate: Predicate,
    child: Box<dyn Operator>,
    schema: Schema,
    pending: VecDeque<Tuple>,
    /// Contract awaiting migration to the next matching tuple.
    pending_migration: Option<CtrId>,
    /// Whether contract migration is enabled (ablation toggle).
    migration_enabled: bool,
}

impl Filter {
    /// Create a filter over `child`.
    pub fn new(op: OpId, predicate: Predicate, child: Box<dyn Operator>) -> Self {
        let schema = child.schema().clone();
        Self {
            op,
            predicate,
            child,
            schema,
            pending: VecDeque::new(),
            pending_migration: None,
            migration_enabled: true,
        }
    }

    /// Disable contract migration (for the ablation benchmark).
    pub fn without_migration(mut self) -> Self {
        self.migration_enabled = false;
        self
    }

    fn migrate_if_pending(&mut self, ctx: &mut ExecContext, matching: &Tuple) -> Result<()> {
        let Some(ctr) = self.pending_migration.take() else {
            return Ok(());
        };
        // New reactive checkpoint at the current position (just past the
        // matching tuple) with a fresh cascaded contract to the child.
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, vec![], work);
        self.child.sign_contract(ctx, ck)?;
        ctx.graph.migrate_contract(
            ctr,
            Migration::to(ck)
                .saving(matching.encode_to_vec())
                .with_work(work),
        )?;
        ctx.graph.prune_for(self.op);
        Ok(())
    }

    /// Vectorized predicate evaluation: the surviving row indices among
    /// `batch`'s live rows, in order. Integer predicates run over the
    /// unboxed column slice when the column is monomorphic.
    fn eval_selection(&self, batch: &Batch) -> Result<Vec<u32>> {
        let mut sel = Vec::with_capacity(batch.live_len());
        let (col, test): (usize, Box<dyn Fn(i64) -> bool>) = match &self.predicate {
            Predicate::True => {
                sel.extend(batch.live_rows().map(|r| r as u32));
                return Ok(sel);
            }
            Predicate::IntLt { col, value } => {
                let v = *value;
                (*col, Box::new(move |x| x < v))
            }
            Predicate::IntGe { col, value } => {
                let v = *value;
                (*col, Box::new(move |x| x >= v))
            }
            Predicate::IntEq { col, value } => {
                let v = *value;
                (*col, Box::new(move |x| x == v))
            }
        };
        match batch.column(col).and_then(ColumnVec::as_ints) {
            Some(ints) => {
                for r in batch.live_rows() {
                    if test(ints[r]) {
                        sel.push(r as u32);
                    }
                }
            }
            None => {
                for r in batch.live_rows() {
                    if test(batch.value(r, col).as_int()?) {
                        sel.push(r as u32);
                    }
                }
            }
        }
        Ok(sel)
    }
}

impl Operator for Filter {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.open(ctx)
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Poll> {
        if let Some(t) = self.pending.pop_front() {
            return Ok(Poll::Tuple(t));
        }
        loop {
            if ctx.suspend_pending() {
                return Ok(Poll::Suspended);
            }
            let Some(t) = crate::pull!(self.child, ctx) else {
                return Ok(Poll::Done);
            };
            ctx.tick(self.op);
            if self.predicate.eval(&t)? {
                if self.migration_enabled {
                    self.migrate_if_pending(ctx, &t)?;
                }
                return Ok(Poll::Tuple(t));
            }
        }
    }

    /// Vectorized filter: consume one child batch, tick every consumed
    /// row (identical work-unit count to the tuple path), evaluate the
    /// predicate per column, and pass the batch through with a shrunk
    /// selection mask — survivors are never copied. A batch already
    /// consumed from the child is always fully processed; a pending
    /// suspend surfaces on the *next* pull, as in the tuple path.
    fn next_batch(&mut self, ctx: &mut ExecContext, max: usize) -> Result<BatchPoll> {
        if !self.pending.is_empty() {
            let max = max.max(1);
            let mut batch = Batch::with_capacity(self.schema.len(), max);
            while let Some(t) = self.pending.pop_front() {
                batch.push(&t);
                if batch.len() >= max {
                    break;
                }
            }
            return Ok(BatchPoll::Batch(batch));
        }
        loop {
            if ctx.suspend_pending() {
                return Ok(BatchPoll::Suspended);
            }
            let mut batch = match self.child.next_batch(ctx, max)? {
                BatchPoll::Batch(b) => b,
                BatchPoll::Done => return Ok(BatchPoll::Done),
                BatchPoll::Suspended => return Ok(BatchPoll::Suspended),
            };
            for _ in 0..batch.live_len() {
                ctx.tick(self.op);
            }
            let sel = self.eval_selection(&batch)?;
            if sel.is_empty() {
                continue;
            }
            if self.migration_enabled && self.pending_migration.is_some() {
                let first = batch.tuple(sel[0] as usize);
                self.migrate_if_pending(ctx, &first)?;
            }
            batch.set_selection(Some(sel));
            return Ok(BatchPoll::Batch(batch));
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.child.close(ctx)
    }

    fn sign_contract(&mut self, ctx: &mut ExecContext, parent_ckpt: CkptId) -> Result<CtrId> {
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, vec![], work);
        self.child.sign_contract(ctx, ck)?;
        ctx.graph.prune_for(self.op);
        let ctr = ctx
            .graph
            .sign_contract(parent_ckpt, self.op, ck, vec![], work, vec![])?;
        if self.migration_enabled {
            self.pending_migration = Some(ctr);
        }
        Ok(ctr)
    }

    fn side_snapshot(&mut self, ctx: &mut ExecContext) -> Result<SideSnapshot> {
        let child = self.child.side_snapshot(ctx)?;
        Ok(SideSnapshot {
            op: self.op,
            control: vec![],
            work: ctx.work.get(self.op),
            children: vec![child],
        })
    }

    fn suspend(
        &mut self,
        ctx: &mut ExecContext,
        mode: SuspendMode,
        plan: &SuspendPlan,
        sq: &mut SuspendedQuery,
    ) -> Result<()> {
        match mode {
            SuspendMode::Current => {
                sq.put_record(OpSuspendRecord {
                    op: self.op,
                    strategy: plan.get(self.op),
                    resume_point: vec![],
                    heap_dump: None,
                    saved_tuples: Vec::new(),
                    aux: Vec::new(),
                });
                self.child.suspend(ctx, SuspendMode::Current, plan, sq)
            }
            SuspendMode::Contract(ctr) => {
                let c = ctx
                    .graph
                    .contract(ctr)
                    .ok_or_else(|| StorageError::invalid(format!("unknown contract {ctr}")))?;
                let saved = c.saved_tuples.clone();
                let my_ckpt = c.child_ckpt;
                sq.put_record(OpSuspendRecord {
                    op: self.op,
                    strategy: plan.get(self.op),
                    resume_point: vec![],
                    heap_dump: None,
                    saved_tuples: saved,
                    aux: Vec::new(),
                });
                // Relay to the child via the cascaded contract of the
                // checkpoint that fulfills ours.
                let child_ctr = ctx
                    .graph
                    .contract_from(my_ckpt, self.child.op_id())
                    .map(|cc| cc.id)
                    .ok_or_else(|| {
                        StorageError::invalid("filter checkpoint missing child contract")
                    })?;
                self.child
                    .suspend(ctx, SuspendMode::Contract(child_ctr), plan, sq)
            }
        }
    }

    fn resume(&mut self, ctx: &mut ExecContext, sq: &SuspendedQuery) -> Result<()> {
        self.child.resume(ctx, sq)?;
        let rec = sq.record(self.op)?;
        self.pending = rec
            .saved_tuples
            .iter()
            .map(|b| Tuple::decode_from_slice(b))
            .collect::<Result<_>>()?;
        self.pending_migration = None;
        Ok(())
    }

    fn suspend_inputs(&self) -> OpSuspendInputs {
        OpSuspendInputs {
            heap_bytes: 0,
            control_bytes: 8,
        }
    }

    fn rewind(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.pending.clear();
        self.child.rewind(ctx)
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Operator)) {
        f(self);
        self.child.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Operator)) {
        f(self);
        self.child.visit_mut(f);
    }
}
