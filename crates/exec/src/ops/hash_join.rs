//! Partitioned hash join: simple (Grace) and hybrid variants (paper §4).
//!
//! **Simple hash join** runs in two phases. Phase 1 hashes each child into
//! `P` on-disk partitions; the end of phase 1 is a *materialization point*
//! — the partition runs are disk-resident state that survives suspension.
//! Phase 2 loads one build partition into an in-memory table (the heap
//! state) and streams the matching probe partition; minimal-heap-state
//! points occur at partition boundaries, where proactive checkpoints are
//! created.
//!
//! **Hybrid hash join** keeps partition 0 of the build side entirely in
//! memory and probes it on the fly during the probe child's partitioning
//! pass. As the paper notes, suspend is relatively expensive here: the
//! operator either dumps its whole in-memory table or goes back to the
//! beginning of the phase with respect to the build relation; the probe
//! relation still benefits from the materialization point.
//!
//! During the partitioning phases the operator produces nothing (simple
//! variant), so incoming contracts migrate forward across phase
//! boundaries like the sort's.

use crate::context::ExecContext;
use crate::operator::{BatchPoll, Operator, Poll, SuspendMode};
use qsr_core::{
    Batch, CkptId, ColumnVec, CtrId, Migration, OpId, OpSuspendInputs, OpSuspendRecord,
    SideSnapshot, Strategy, SuspendPlan, SuspendedQuery,
};
use qsr_storage::{
    Decode, Decoder, Encode, Encoder, Result, RunHandle, RunReader, RunWriter, Schema,
    StorageError, Tuple, TupleAddr, TupleBlock,
};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

const PHASE_BUILD: u8 = 0;
const PHASE_PROBE: u8 = 1;
const PHASE_JOIN: u8 = 2;
const PHASE_DONE: u8 = 3;
/// Grace-mode join phase (`mem_budget > 0`): a work queue of partition
/// tasks replaces the linear partition scan so over-budget partitions can
/// be recursively re-partitioned.
const PHASE_GRACE: u8 = 4;

/// Grace task stages. `TS_JOIN` and `TS_NLJ` emit output; the spill
/// stages only move tuples between runs (no output, so checkpoints and
/// contract migration behave like the partitioning phases).
const TS_JOIN: u8 = 0;
const TS_SPILL_BUILD: u8 = 1;
const TS_SPILL_PROBE: u8 = 2;
const TS_NLJ: u8 = 3;

/// Recursion bound: a task at this level that still exceeds the budget
/// falls back to block nested-loop (chunked build) instead of spilling
/// again — duplicate-heavy keys never split, so depth must be capped.
const MAX_SPILL_DEPTH: u64 = 2;

fn hash_partition(key: i64, partitions: usize) -> usize {
    ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize % partitions
}

/// Level-salted partition hash: re-partitioning one level deeper must not
/// reuse the parent's split (every tuple of a partition shares its parent
/// hash bucket). Level 0 reduces to [`hash_partition`] exactly.
fn hash_partition_at(key: i64, level: u64, partitions: usize) -> usize {
    let salted = (key as u64) ^ level.wrapping_mul(0xC6A4_A793_5BD1_E995);
    (salted.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize % partitions
}

/// One node of the grace partition tree: a matched (build, probe) pair of
/// sealed runs awaiting join, spill, or NLJ fallback. `path` is the chain
/// of partition indices from the root (display form `"2.0"`).
#[derive(Debug, Clone, PartialEq)]
struct PartTask {
    level: u64,
    path: Vec<u32>,
    build: RunHandle,
    probe: RunHandle,
}

impl PartTask {
    fn path_string(&self) -> String {
        let parts: Vec<String> = self.path.iter().map(u32::to_string).collect();
        parts.join(".")
    }
}

impl Encode for PartTask {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.level);
        enc.put_u32(self.path.len() as u32);
        for p in &self.path {
            enc.put_u32(*p);
        }
        self.build.encode(enc);
        self.probe.encode(enc);
    }
}

impl Decode for PartTask {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let level = dec.get_u64()?;
        let n = dec.get_u32()? as usize;
        if n > 64 {
            return Err(StorageError::corrupt(format!("partition path depth {n}")));
        }
        let mut path = Vec::with_capacity(n);
        for _ in 0..n {
            path.push(dec.get_u32()?);
        }
        Ok(PartTask {
            level,
            path,
            build: RunHandle::decode(dec)?,
            probe: RunHandle::decode(dec)?,
        })
    }
}

/// One step of the grace task machine (shared by `next` / `next_batch` so
/// tick accounting — and therefore every suspend boundary — is identical
/// in tuple and vectorized execution).
enum GraceStep {
    Emit(Tuple),
    Continue,
    Done,
}

#[derive(Debug, Clone, PartialEq)]
struct HjControl {
    phase: u8,
    /// Sealed (or in-progress, at suspend) partition runs per side.
    build_runs: Vec<RunHandle>,
    probe_runs: Vec<RunHandle>,
    /// Join phase: current partition and probe cursor.
    cur_part: u64,
    probe_addr: Option<TupleAddr>,
    cur_probe: Option<Tuple>,
    match_idx: u64,
    build_done: bool,
    probe_done: bool,
    build_consumed: u64,
    probe_consumed: u64,
    /// Grace mode: pending tasks (popped from the back), the in-flight
    /// task and its stage, sealed child runs of an in-progress spill, the
    /// re-partition read cursor, and the NLJ block cursor (current block
    /// start and the precomputed next-block start).
    tasks: Vec<PartTask>,
    cur_task: Option<PartTask>,
    stage: u8,
    spill_build_children: Vec<RunHandle>,
    spill_probe_children: Vec<RunHandle>,
    spill_addr: Option<TupleAddr>,
    nlj_pos: u64,
    nlj_addr: Option<TupleAddr>,
    nlj_next_pos: u64,
    nlj_next_addr: Option<TupleAddr>,
}

impl Encode for HjControl {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.phase);
        enc.put_seq(&self.build_runs);
        enc.put_seq(&self.probe_runs);
        enc.put_u64(self.cur_part);
        enc.put_option(&self.probe_addr);
        enc.put_option(&self.cur_probe);
        enc.put_u64(self.match_idx);
        enc.put_bool(self.build_done);
        enc.put_bool(self.probe_done);
        enc.put_u64(self.build_consumed);
        enc.put_u64(self.probe_consumed);
        enc.put_seq(&self.tasks);
        enc.put_option(&self.cur_task);
        enc.put_u8(self.stage);
        enc.put_seq(&self.spill_build_children);
        enc.put_seq(&self.spill_probe_children);
        enc.put_option(&self.spill_addr);
        enc.put_u64(self.nlj_pos);
        enc.put_option(&self.nlj_addr);
        enc.put_u64(self.nlj_next_pos);
        enc.put_option(&self.nlj_next_addr);
    }
}

impl Decode for HjControl {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        Ok(HjControl {
            phase: dec.get_u8()?,
            build_runs: dec.get_seq()?,
            probe_runs: dec.get_seq()?,
            cur_part: dec.get_u64()?,
            probe_addr: dec.get_option()?,
            cur_probe: dec.get_option()?,
            match_idx: dec.get_u64()?,
            build_done: dec.get_bool()?,
            probe_done: dec.get_bool()?,
            build_consumed: dec.get_u64()?,
            probe_consumed: dec.get_u64()?,
            tasks: dec.get_seq()?,
            cur_task: dec.get_option()?,
            stage: dec.get_u8()?,
            spill_build_children: dec.get_seq()?,
            spill_probe_children: dec.get_seq()?,
            spill_addr: dec.get_option()?,
            nlj_pos: dec.get_u64()?,
            nlj_addr: dec.get_option()?,
            nlj_next_pos: dec.get_u64()?,
            nlj_next_addr: dec.get_option()?,
        })
    }
}

/// Partitioned (Grace / hybrid) hash equi-join.
pub struct HashJoin {
    op: OpId,
    build: Box<dyn Operator>,
    probe: Box<dyn Operator>,
    build_key: usize,
    probe_key: usize,
    partitions: usize,
    hybrid: bool,
    schema: Schema,

    phase: u8,
    build_writers: Vec<Option<RunWriter>>,
    probe_writers: Vec<Option<RunWriter>>,
    build_runs: Vec<RunHandle>,
    probe_runs: Vec<RunHandle>,
    build_done: bool,
    probe_done: bool,

    /// In-memory hash table: partition 0 during hybrid build/probe, or the
    /// current partition during the join phase.
    table: HashMap<i64, Vec<Tuple>>,
    heap_bytes: usize,
    cur_part: usize,
    probe_reader: Option<RunReader>,
    pages_noted: u64,
    cur_probe: Option<Tuple>,
    cur_probe_addr: Option<TupleAddr>,
    match_idx: usize,
    build_consumed: u64,
    probe_consumed: u64,

    last_in_ctr: Option<CtrId>,
    produced_since_sign: u64,
    migration_enabled: bool,
    pending: VecDeque<Tuple>,
    /// Resume-replay stop point: (build_consumed, probe_consumed). When
    /// set, `next()` freezes (returns `Suspended`) upon reaching it.
    replay_stop: Option<(u64, u64)>,

    /// Grace mode: per-partition build budget in tuples (0 = disabled,
    /// bit-identical legacy join phase).
    mem_budget: usize,
    tasks: Vec<PartTask>,
    cur_task: Option<PartTask>,
    stage: u8,
    spill_reader: Option<RunReader>,
    spill_pages_noted: u64,
    spill_build_writers: Vec<Option<RunWriter>>,
    spill_probe_writers: Vec<Option<RunWriter>>,
    spill_build_children: Vec<RunHandle>,
    spill_probe_children: Vec<RunHandle>,
    nlj_pos: u64,
    nlj_addr: Option<TupleAddr>,
    nlj_next_pos: u64,
    nlj_next_addr: Option<TupleAddr>,
}

impl HashJoin {
    /// Create a hash join of `build.build_key == probe.probe_key` with `P`
    /// partitions; `hybrid` keeps build partition 0 in memory.
    pub fn new(
        op: OpId,
        build: Box<dyn Operator>,
        probe: Box<dyn Operator>,
        build_key: usize,
        probe_key: usize,
        partitions: usize,
        hybrid: bool,
    ) -> Self {
        // Output schema follows (probe, build)? Conventionally joins emit
        // (left, right) = (build, probe) here.
        let schema = build.schema().join(probe.schema());
        Self {
            op,
            build,
            probe,
            build_key,
            probe_key,
            partitions: partitions.max(1),
            hybrid,
            schema,
            phase: PHASE_BUILD,
            build_writers: Vec::new(),
            probe_writers: Vec::new(),
            build_runs: Vec::new(),
            probe_runs: Vec::new(),
            build_done: false,
            probe_done: false,
            table: HashMap::new(),
            heap_bytes: 0,
            cur_part: 0,
            probe_reader: None,
            pages_noted: 0,
            cur_probe: None,
            cur_probe_addr: None,
            match_idx: 0,
            build_consumed: 0,
            probe_consumed: 0,
            last_in_ctr: None,
            produced_since_sign: 0,
            migration_enabled: true,
            pending: VecDeque::new(),
            replay_stop: None,
            mem_budget: 0,
            tasks: Vec::new(),
            cur_task: None,
            stage: TS_JOIN,
            spill_reader: None,
            spill_pages_noted: 0,
            spill_build_writers: Vec::new(),
            spill_probe_writers: Vec::new(),
            spill_build_children: Vec::new(),
            spill_probe_children: Vec::new(),
            nlj_pos: 0,
            nlj_addr: None,
            nlj_next_pos: 0,
            nlj_next_addr: None,
        }
    }

    fn replay_reached(&self) -> bool {
        matches!(self.replay_stop, Some((b, p))
            if self.build_consumed >= b && self.probe_consumed >= p)
    }

    /// Disable contract migration (ablation toggle).
    pub fn without_migration(mut self) -> Self {
        self.migration_enabled = false;
        self
    }

    /// Cap the in-memory build partition at `budget` tuples (0 disables):
    /// over-budget partitions are recursively re-partitioned with a
    /// level-salted hash up to [`MAX_SPILL_DEPTH`], then joined by block
    /// nested-loop in `budget`-tuple build chunks.
    pub fn with_memory_budget(mut self, budget: usize) -> Self {
        self.mem_budget = budget;
        self
    }

    /// Stages that emit output; the spill stages do not, so they can go
    /// back to their task-boundary checkpoint without re-emission.
    fn grace_emitting(stage: u8) -> bool {
        matches!(stage, TS_JOIN | TS_NLJ)
    }

    fn control(&self) -> HjControl {
        HjControl {
            phase: self.phase,
            build_runs: self.build_runs.clone(),
            probe_runs: self.probe_runs.clone(),
            cur_part: self.cur_part as u64,
            probe_addr: self.cur_probe_addr.or_else(|| {
                self.probe_reader.as_ref().map(|r| r.position())
            }),
            cur_probe: self.cur_probe.clone(),
            match_idx: self.match_idx as u64,
            build_done: self.build_done,
            probe_done: self.probe_done,
            build_consumed: self.build_consumed,
            probe_consumed: self.probe_consumed,
            tasks: self.tasks.clone(),
            cur_task: self.cur_task.clone(),
            stage: self.stage,
            spill_build_children: self.spill_build_children.clone(),
            spill_probe_children: self.spill_probe_children.clone(),
            spill_addr: self.spill_reader.as_ref().map(|r| r.position()),
            nlj_pos: self.nlj_pos,
            nlj_addr: self.nlj_addr,
            nlj_next_pos: self.nlj_next_pos,
            nlj_next_addr: self.nlj_next_addr,
        }
    }

    /// A checkpoint with optional migration of the incoming contract.
    fn checkpoint(&mut self, ctx: &mut ExecContext, sign_children: bool) -> Result<()> {
        if !ctx.checkpoints_enabled {
            return Ok(());
        }
        let control = self.control().encode_to_vec();
        let work = ctx.work.get(self.op);
        let ck = ctx.graph.create_checkpoint(self.op, control.clone(), work);
        if sign_children {
            if !self.build_done {
                self.build.sign_contract(ctx, ck)?;
            }
            if !self.probe_done {
                self.probe.sign_contract(ctx, ck)?;
            }
        }
        if self.migration_enabled && self.produced_since_sign == 0 {
            if let Some(ctr) = self.last_in_ctr {
                if ctx.graph.contract(ctr).is_some() {
                    ctx.graph.migrate_contract(
                        ctr,
                        Migration::to(ck).with_control(control).with_work(work),
                    )?;
                }
            }
        }
        ctx.graph.prune_for(self.op);
        let _ = ck;
        Ok(())
    }

    fn ensure_writers(writers: &mut Vec<Option<RunWriter>>, pool: &Arc<qsr_storage::BufferPool>, n: usize) -> Result<()> {
        while writers.len() < n {
            writers.push(Some(RunWriter::create(pool.clone())?));
        }
        Ok(())
    }

    fn table_insert(&mut self, key: i64, t: Tuple) {
        self.heap_bytes += t.heap_bytes();
        self.table.entry(key).or_default().push(t);
    }

    /// Seal in-progress partition writers into `runs`, in place. A writer
    /// leaves the vec only after its flush succeeded and its handle is
    /// recorded in `runs`, so a seal that fails mid-way (quota, injected
    /// fault) can be retried by a later degradation-ladder rung without
    /// losing buffered tuples or already-sealed handles.
    fn seal_writers(
        ctx: &mut ExecContext,
        op: OpId,
        writers: &mut Vec<Option<RunWriter>>,
        runs: &mut Vec<RunHandle>,
    ) -> Result<()> {
        while let Some(slot) = writers.first_mut() {
            let w = slot
                .as_mut()
                .ok_or_else(|| StorageError::invalid("hash-join partition writer missing"))?;
            // Suspend-time seals write outside the dump-blob path; admit
            // the flush against the rung's I/O budget before committing,
            // so a rung cannot overrun via writes the dump watchdog never
            // sees (no-op during execution, when no watchdog is armed).
            let pending = w.pending_pages();
            ctx.guard_suspend_write(pending)?;
            let handle = w.seal()?;
            if pending > 0 {
                ctx.db.ledger().trace(|| qsr_storage::TraceEvent::MetaWrite {
                    label: "partition-seal",
                    pages: pending,
                });
            }
            let pages = ctx.db.pool().num_pages(handle.file)?;
            ctx.note_page_writes(op, pages);
            runs.push(handle);
            writers.remove(0);
        }
        Ok(())
    }

    fn load_build_partition(&mut self, ctx: &mut ExecContext, part: usize) -> Result<()> {
        let handle = self.build_runs[part];
        self.load_build_run(ctx, handle)
    }

    /// Load a whole sealed run into the in-memory table.
    fn load_build_run(&mut self, ctx: &mut ExecContext, handle: RunHandle) -> Result<()> {
        self.table.clear();
        self.heap_bytes = 0;
        let mut r = RunReader::open(ctx.db.pool().clone(), handle);
        while let Some(t) = r.next()? {
            let key = t.get(self.build_key).as_int()?;
            self.table_insert(key, t);
        }
        ctx.note_page_reads(self.op, r.pages_fetched());
        Ok(())
    }

    /// Load the next NLJ build chunk (up to `mem_budget` tuples starting
    /// at `nlj_addr`) into the table and precompute the next block cursor.
    /// Deterministic from (`nlj_pos`, `nlj_addr`), so a GoBack resume can
    /// rebuild the in-flight block by re-running it.
    fn load_nlj_block(&mut self, ctx: &mut ExecContext, task: &PartTask) -> Result<()> {
        self.table.clear();
        self.heap_bytes = 0;
        let mut r = RunReader::open(ctx.db.pool().clone(), task.build);
        if let Some(addr) = self.nlj_addr {
            r.seek(addr);
        }
        let mut loaded = 0u64;
        while (loaded as usize) < self.mem_budget.max(1) {
            match r.next()? {
                Some(t) => {
                    let key = t.get(self.build_key).as_int()?;
                    self.table_insert(key, t);
                    loaded += 1;
                }
                None => break,
            }
        }
        ctx.note_page_reads(self.op, r.pages_fetched());
        self.nlj_next_pos = self.nlj_pos + loaded;
        self.nlj_next_addr = Some(r.position());
        Ok(())
    }

    fn open_probe_reader(&mut self, ctx: &mut ExecContext, part: usize, at: Option<TupleAddr>) {
        let handle = self.probe_runs[part];
        self.open_probe_run(ctx, handle, at);
    }

    fn open_probe_run(&mut self, ctx: &mut ExecContext, handle: RunHandle, at: Option<TupleAddr>) {
        let mut r = RunReader::open(ctx.db.pool().clone(), handle);
        if let Some(addr) = at {
            r.seek(addr);
        }
        self.pages_noted = 0;
        self.probe_reader = Some(r);
    }

    fn note_probe_io(&mut self, ctx: &mut ExecContext) {
        if let Some(r) = &self.probe_reader {
            let fetched = r.pages_fetched();
            let delta = fetched.saturating_sub(self.pages_noted);
            self.pages_noted = fetched;
            ctx.note_page_reads(self.op, delta);
        }
    }

    /// First join-phase partition: 0 for simple, 1 for hybrid (partition 0
    /// was consumed on the fly).
    fn first_join_partition(&self) -> usize {
        if self.hybrid {
            1
        } else {
            0
        }
    }

    /// Emit matches of `probe_tuple` against the in-memory table, resuming
    /// at `self.match_idx`.
    fn next_match(&mut self, probe_tuple: &Tuple, probe_key: usize) -> Result<Option<Tuple>> {
        let key = probe_tuple.get(probe_key).as_int()?;
        if let Some(matches) = self.table.get(&key) {
            if self.match_idx < matches.len() {
                let out = matches[self.match_idx].join(probe_tuple);
                self.match_idx += 1;
                return Ok(Some(out));
            }
        }
        Ok(None)
    }

    /// Seed the grace work queue from the sealed top-level partitions
    /// (pushed in reverse so they pop in partition order; spill children
    /// are pushed the same way, giving a depth-first tree walk).
    fn seed_grace_tasks(&mut self) {
        self.tasks.clear();
        for part in (self.first_join_partition()..self.partitions).rev() {
            self.tasks.push(PartTask {
                level: 0,
                path: vec![part as u32],
                build: self.build_runs[part],
                probe: self.probe_runs[part],
            });
        }
        self.cur_task = None;
        self.stage = TS_JOIN;
    }

    fn note_spill_io(&mut self, ctx: &mut ExecContext) {
        if let Some(r) = &self.spill_reader {
            let fetched = r.pages_fetched();
            let delta = fetched.saturating_sub(self.spill_pages_noted);
            self.spill_pages_noted = fetched;
            ctx.note_page_reads(self.op, delta);
        }
    }

    /// Classify the popped task and set up its stage. Joins and NLJ load
    /// lazily on the first step; a spill opens its re-partition reader
    /// here and announces itself in the trace.
    fn start_task(&mut self, ctx: &mut ExecContext, task: PartTask) {
        self.nlj_pos = 0;
        self.nlj_addr = None;
        self.nlj_next_pos = 0;
        self.nlj_next_addr = None;
        if task.build.tuples as usize > self.mem_budget {
            if task.level >= MAX_SPILL_DEPTH {
                self.stage = TS_NLJ;
            } else {
                self.stage = TS_SPILL_BUILD;
                let (op, level) = (self.op.0, task.level + 1);
                let (path, tuples, pages) = (task.path_string(), task.build.tuples, task.build.pages);
                ctx.db.ledger().trace(|| qsr_storage::TraceEvent::PartitionSpill {
                    op,
                    level,
                    path: path.clone(),
                    tuples,
                    pages,
                });
                self.spill_build_children.clear();
                self.spill_probe_children.clear();
                self.spill_pages_noted = 0;
                self.spill_reader = Some(RunReader::open(ctx.db.pool().clone(), task.build));
            }
        } else {
            self.stage = TS_JOIN;
        }
        self.cur_task = Some(task);
    }

    /// Task complete: minimal-heap-state point, proactive checkpoint.
    fn finish_task(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.table.clear();
        self.heap_bytes = 0;
        self.probe_reader = None;
        self.cur_probe = None;
        self.cur_probe_addr = None;
        self.match_idx = 0;
        self.nlj_pos = 0;
        self.nlj_addr = None;
        self.nlj_next_pos = 0;
        self.nlj_next_addr = None;
        self.cur_task = None;
        self.checkpoint(ctx, false)
    }

    /// One step of the grace task machine. Tick placement matches the
    /// legacy join phase (one tick per probe tuple consumed, plus one per
    /// tuple moved during a spill), so work-unit boundaries are identical
    /// between tuple and batch execution.
    fn grace_step(&mut self, ctx: &mut ExecContext) -> Result<GraceStep> {
        let task = match self.cur_task.clone() {
            Some(t) => t,
            None => match self.tasks.pop() {
                Some(t) => {
                    self.start_task(ctx, t);
                    return Ok(GraceStep::Continue);
                }
                None => return Ok(GraceStep::Done),
            },
        };
        match self.stage {
            TS_JOIN => {
                if self.probe_reader.is_none() {
                    self.load_build_run(ctx, task.build)?;
                    self.open_probe_run(ctx, task.probe, None);
                }
                if let Some(p) = self.cur_probe.clone() {
                    match self.next_match(&p, self.probe_key)? {
                        Some(out) => return Ok(GraceStep::Emit(out)),
                        None => {
                            self.cur_probe = None;
                            self.cur_probe_addr = None;
                            self.match_idx = 0;
                        }
                    }
                    return Ok(GraceStep::Continue);
                }
                let reader = self
                    .probe_reader
                    .as_mut()
                    .ok_or_else(|| StorageError::invalid("hash-join probe reader not open"))?;
                let addr = reader.position();
                let t = reader.next()?;
                self.note_probe_io(ctx);
                match t {
                    Some(t) => {
                        ctx.tick(self.op);
                        self.cur_probe = Some(t);
                        self.cur_probe_addr = Some(addr);
                        self.match_idx = 0;
                    }
                    None => self.finish_task(ctx)?,
                }
                Ok(GraceStep::Continue)
            }
            TS_SPILL_BUILD => {
                Self::ensure_writers(&mut self.spill_build_writers, ctx.db.pool(), self.partitions)?;
                let reader = self
                    .spill_reader
                    .as_mut()
                    .ok_or_else(|| StorageError::invalid("hash-join spill reader not open"))?;
                let t = reader.next()?;
                self.note_spill_io(ctx);
                match t {
                    Some(t) => {
                        ctx.tick(self.op);
                        let key = t.get(self.build_key).as_int()?;
                        let p = hash_partition_at(key, task.level + 1, self.partitions);
                        self.spill_build_writers[p]
                            .as_mut()
                            .ok_or_else(|| {
                                StorageError::invalid("hash-join spill partition writer missing")
                            })?
                            .append(&t)?;
                    }
                    None => {
                        Self::seal_writers(
                            ctx,
                            self.op,
                            &mut self.spill_build_writers,
                            &mut self.spill_build_children,
                        )?;
                        self.spill_pages_noted = 0;
                        self.spill_reader =
                            Some(RunReader::open(ctx.db.pool().clone(), task.probe));
                        self.stage = TS_SPILL_PROBE;
                    }
                }
                Ok(GraceStep::Continue)
            }
            TS_SPILL_PROBE => {
                Self::ensure_writers(&mut self.spill_probe_writers, ctx.db.pool(), self.partitions)?;
                let reader = self
                    .spill_reader
                    .as_mut()
                    .ok_or_else(|| StorageError::invalid("hash-join spill reader not open"))?;
                let t = reader.next()?;
                self.note_spill_io(ctx);
                match t {
                    Some(t) => {
                        ctx.tick(self.op);
                        let key = t.get(self.probe_key).as_int()?;
                        let p = hash_partition_at(key, task.level + 1, self.partitions);
                        self.spill_probe_writers[p]
                            .as_mut()
                            .ok_or_else(|| {
                                StorageError::invalid("hash-join spill partition writer missing")
                            })?
                            .append(&t)?;
                    }
                    None => {
                        Self::seal_writers(
                            ctx,
                            self.op,
                            &mut self.spill_probe_writers,
                            &mut self.spill_probe_children,
                        )?;
                        self.spill_reader = None;
                        let builds = std::mem::take(&mut self.spill_build_children);
                        let probes = std::mem::take(&mut self.spill_probe_children);
                        for i in (0..self.partitions).rev() {
                            let mut path = task.path.clone();
                            path.push(i as u32);
                            self.tasks.push(PartTask {
                                level: task.level + 1,
                                path,
                                build: builds[i],
                                probe: probes[i],
                            });
                        }
                        self.cur_task = None;
                        self.checkpoint(ctx, false)?;
                    }
                }
                Ok(GraceStep::Continue)
            }
            TS_NLJ => {
                if self.nlj_pos >= task.build.tuples {
                    self.finish_task(ctx)?;
                    return Ok(GraceStep::Continue);
                }
                if self.probe_reader.is_none() {
                    self.load_nlj_block(ctx, &task)?;
                    self.open_probe_run(ctx, task.probe, None);
                    return Ok(GraceStep::Continue);
                }
                if let Some(p) = self.cur_probe.clone() {
                    match self.next_match(&p, self.probe_key)? {
                        Some(out) => return Ok(GraceStep::Emit(out)),
                        None => {
                            self.cur_probe = None;
                            self.cur_probe_addr = None;
                            self.match_idx = 0;
                        }
                    }
                    return Ok(GraceStep::Continue);
                }
                let reader = self
                    .probe_reader
                    .as_mut()
                    .ok_or_else(|| StorageError::invalid("hash-join probe reader not open"))?;
                let addr = reader.position();
                let t = reader.next()?;
                self.note_probe_io(ctx);
                match t {
                    Some(t) => {
                        ctx.tick(self.op);
                        self.cur_probe = Some(t);
                        self.cur_probe_addr = Some(addr);
                        self.match_idx = 0;
                    }
                    None => {
                        // Block finished: advance to the precomputed next
                        // block (a minimal-heap point only at task end —
                        // intermediate blocks skip the checkpoint to keep
                        // the block cursor the sole recovery input).
                        self.table.clear();
                        self.heap_bytes = 0;
                        self.probe_reader = None;
                        self.cur_probe = None;
                        self.cur_probe_addr = None;
                        self.match_idx = 0;
                        self.nlj_pos = self.nlj_next_pos;
                        self.nlj_addr = self.nlj_next_addr;
                        if self.nlj_pos >= task.build.tuples {
                            self.finish_task(ctx)?;
                        }
                    }
                }
                Ok(GraceStep::Continue)
            }
            s => Err(StorageError::corrupt(format!("bad grace stage {s}"))),
        }
    }
}

impl Operator for HashJoin {
    fn op_id(&self) -> OpId {
        self.op
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn open(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.build.open(ctx)?;
        self.probe.open(ctx)?;
        // Proactive checkpoint at the beginning of the hash phase.
        self.checkpoint(ctx, true)?;
        Ok(())
    }

    fn next(&mut self, ctx: &mut ExecContext) -> Result<Poll> {
        if let Some(t) = self.pending.pop_front() {
            return Ok(Poll::Tuple(t));
        }
        loop {
            if ctx.suspend_pending() || (self.replay_stop.is_some() && self.replay_reached()) {
                return Ok(Poll::Suspended);
            }
            match self.phase {
                PHASE_BUILD => {
                    Self::ensure_writers(&mut self.build_writers, ctx.db.pool(), self.partitions)?;
                    match self.build.next(ctx)? {
                        Poll::Tuple(t) => {
                            ctx.tick(self.op);
                            self.build_consumed += 1;
                            let key = t.get(self.build_key).as_int()?;
                            let p = hash_partition(key, self.partitions);
                            if self.hybrid && p == 0 {
                                self.table_insert(key, t);
                            } else {
                                self.build_writers[p]
                                    .as_mut()
                                    .ok_or_else(|| {
                                        StorageError::invalid(
                                            "hash-join build partition writer missing",
                                        )
                                    })?
                                    .append(&t)?;
                            }
                        }
                        Poll::Done => {
                            self.build_done = true;
                            Self::seal_writers(
                                ctx,
                                self.op,
                                &mut self.build_writers,
                                &mut self.build_runs,
                            )?;
                            self.phase = PHASE_PROBE;
                            // Materialization point: phase-boundary ckpt —
                            // but NOT for hybrid: its in-memory partition-0
                            // table means this is not a minimal-heap-state
                            // point (the paper's §4 observation that hybrid
                            // can only dump or go back to the beginning
                            // w.r.t. the build relation).
                            if !self.hybrid {
                                self.checkpoint(ctx, true)?;
                            }
                        }
                        Poll::Suspended => return Ok(Poll::Suspended),
                    }
                }
                PHASE_PROBE => {
                    Self::ensure_writers(&mut self.probe_writers, ctx.db.pool(), self.partitions)?;
                    // Hybrid: finish emitting matches of the current probe
                    // tuple before pulling the next one.
                    if self.hybrid {
                        if let Some(p) = self.cur_probe.clone() {
                            match self.next_match(&p, self.probe_key)? {
                                Some(out) => {
                                    self.produced_since_sign += 1;
                                    return Ok(Poll::Tuple(out));
                                }
                                None => {
                                    self.cur_probe = None;
                                    self.match_idx = 0;
                                }
                            }
                        }
                    }
                    match self.probe.next(ctx)? {
                        Poll::Tuple(t) => {
                            ctx.tick(self.op);
                            self.probe_consumed += 1;
                            let key = t.get(self.probe_key).as_int()?;
                            let p = hash_partition(key, self.partitions);
                            if self.hybrid && p == 0 {
                                self.cur_probe = Some(t);
                                self.match_idx = 0;
                            } else {
                                self.probe_writers[p]
                                    .as_mut()
                                    .ok_or_else(|| {
                                        StorageError::invalid(
                                            "hash-join probe partition writer missing",
                                        )
                                    })?
                                    .append(&t)?;
                            }
                        }
                        Poll::Done => {
                            self.probe_done = true;
                            Self::seal_writers(
                                ctx,
                                self.op,
                                &mut self.probe_writers,
                                &mut self.probe_runs,
                            )?;
                            // Hybrid drops the in-memory partition-0 table
                            // here: minimal-heap-state point.
                            self.table.clear();
                            self.heap_bytes = 0;
                            if self.mem_budget > 0 {
                                self.phase = PHASE_GRACE;
                                self.seed_grace_tasks();
                            } else {
                                self.phase = PHASE_JOIN;
                            }
                            self.cur_part = self.first_join_partition();
                            self.cur_probe = None;
                            self.cur_probe_addr = None;
                            self.match_idx = 0;
                            self.probe_reader = None;
                            self.checkpoint(ctx, false)?;
                        }
                        Poll::Suspended => return Ok(Poll::Suspended),
                    }
                }
                PHASE_GRACE => match self.grace_step(ctx)? {
                    GraceStep::Emit(t) => {
                        self.produced_since_sign += 1;
                        return Ok(Poll::Tuple(t));
                    }
                    GraceStep::Continue => {}
                    GraceStep::Done => self.phase = PHASE_DONE,
                },
                PHASE_JOIN => {
                    if self.cur_part >= self.partitions {
                        self.phase = PHASE_DONE;
                        continue;
                    }
                    if self.probe_reader.is_none() {
                        self.load_build_partition(ctx, self.cur_part)?;
                        self.open_probe_reader(ctx, self.cur_part, None);
                    }
                    if let Some(p) = self.cur_probe.clone() {
                        match self.next_match(&p, self.probe_key)? {
                            Some(out) => {
                                self.produced_since_sign += 1;
                                return Ok(Poll::Tuple(out));
                            }
                            None => {
                                self.cur_probe = None;
                                self.cur_probe_addr = None;
                                self.match_idx = 0;
                            }
                        }
                        continue;
                    }
                    let reader = self
                        .probe_reader
                        .as_mut()
                        .ok_or_else(|| StorageError::invalid("hash-join probe reader not open"))?;
                    let addr = reader.position();
                    let t = reader.next()?;
                    self.note_probe_io(ctx);
                    match t {
                        Some(t) => {
                            ctx.tick(self.op);
                            self.cur_probe = Some(t);
                            self.cur_probe_addr = Some(addr);
                            self.match_idx = 0;
                        }
                        None => {
                            // Partition exhausted: minimal-heap point.
                            self.table.clear();
                            self.heap_bytes = 0;
                            self.probe_reader = None;
                            self.cur_part += 1;
                            self.cur_probe = None;
                            self.cur_probe_addr = None;
                            self.match_idx = 0;
                            self.checkpoint(ctx, false)?;
                        }
                    }
                }
                PHASE_DONE => return Ok(Poll::Done),
                p => return Err(StorageError::corrupt(format!("bad HJ phase {p}"))),
            }
        }
    }

    /// Vectorized execution. The partitioning phases consume whole child
    /// batches (key extraction runs over the unboxed column slice when the
    /// key column is monomorphic); the join phase emits matches into a
    /// column-major output batch without per-tuple driver dispatch.
    /// Per-tuple `tick` accounting is identical to `next()`, so suspend
    /// triggers land on the same work units. A child batch, once
    /// consumed, is always fully partitioned — in hybrid mode the inline
    /// match emission can overfill the output past `max`, which `Batch`
    /// permits.
    fn next_batch(&mut self, ctx: &mut ExecContext, max: usize) -> Result<BatchPoll> {
        let max = max.max(1);
        let mut out = Batch::with_capacity(self.schema.len(), max);
        while let Some(t) = self.pending.pop_front() {
            out.push(&t);
            if out.len() >= max {
                return Ok(BatchPoll::Batch(out));
            }
        }
        loop {
            if ctx.suspend_pending() || (self.replay_stop.is_some() && self.replay_reached()) {
                return Ok(match out.is_empty() {
                    true => BatchPoll::Suspended,
                    false => BatchPoll::Batch(out),
                });
            }
            match self.phase {
                PHASE_BUILD => {
                    Self::ensure_writers(&mut self.build_writers, ctx.db.pool(), self.partitions)?;
                    match self.build.next_batch(ctx, max)? {
                        BatchPoll::Batch(b) => {
                            let ints = b.column(self.build_key).and_then(ColumnVec::as_ints);
                            let rows: Vec<usize> = b.live_rows().collect();
                            for &r in &rows {
                                ctx.tick(self.op);
                                self.build_consumed += 1;
                                let key = match ints {
                                    Some(ints) => ints[r],
                                    None => b.value(r, self.build_key).as_int()?,
                                };
                                let p = hash_partition(key, self.partitions);
                                let t = b.tuple(r);
                                if self.hybrid && p == 0 {
                                    self.table_insert(key, t);
                                } else {
                                    self.build_writers[p]
                                        .as_mut()
                                        .ok_or_else(|| {
                                            StorageError::invalid(
                                                "hash-join build partition writer missing",
                                            )
                                        })?
                                        .append(&t)?;
                                }
                            }
                        }
                        BatchPoll::Done => {
                            self.build_done = true;
                            Self::seal_writers(
                                ctx,
                                self.op,
                                &mut self.build_writers,
                                &mut self.build_runs,
                            )?;
                            self.phase = PHASE_PROBE;
                            if !self.hybrid {
                                self.checkpoint(ctx, true)?;
                            }
                        }
                        BatchPoll::Suspended => {
                            return Ok(match out.is_empty() {
                                true => BatchPoll::Suspended,
                                false => BatchPoll::Batch(out),
                            })
                        }
                    }
                }
                PHASE_PROBE => {
                    Self::ensure_writers(&mut self.probe_writers, ctx.db.pool(), self.partitions)?;
                    // Hybrid: finish emitting matches of a probe tuple left
                    // over from a previous (possibly tuple-mode) call.
                    if self.hybrid {
                        if let Some(p) = self.cur_probe.clone() {
                            while let Some(m) = self.next_match(&p, self.probe_key)? {
                                self.produced_since_sign += 1;
                                out.push(&m);
                            }
                            self.cur_probe = None;
                            self.match_idx = 0;
                            if out.len() >= max {
                                return Ok(BatchPoll::Batch(out));
                            }
                        }
                    }
                    match self.probe.next_batch(ctx, max)? {
                        BatchPoll::Batch(b) => {
                            let ints = b.column(self.probe_key).and_then(ColumnVec::as_ints);
                            let rows: Vec<usize> = b.live_rows().collect();
                            for &r in &rows {
                                ctx.tick(self.op);
                                self.probe_consumed += 1;
                                let key = match ints {
                                    Some(ints) => ints[r],
                                    None => b.value(r, self.probe_key).as_int()?,
                                };
                                let p = hash_partition(key, self.partitions);
                                let t = b.tuple(r);
                                if self.hybrid && p == 0 {
                                    // All matches are emitted inline, so no
                                    // in-flight probe tuple survives past
                                    // this row.
                                    self.match_idx = 0;
                                    while let Some(m) = self.next_match(&t, self.probe_key)? {
                                        self.produced_since_sign += 1;
                                        out.push(&m);
                                    }
                                    self.match_idx = 0;
                                } else {
                                    self.probe_writers[p]
                                        .as_mut()
                                        .ok_or_else(|| {
                                            StorageError::invalid(
                                                "hash-join probe partition writer missing",
                                            )
                                        })?
                                        .append(&t)?;
                                }
                            }
                            if out.len() >= max {
                                return Ok(BatchPoll::Batch(out));
                            }
                        }
                        BatchPoll::Done => {
                            self.probe_done = true;
                            Self::seal_writers(
                                ctx,
                                self.op,
                                &mut self.probe_writers,
                                &mut self.probe_runs,
                            )?;
                            self.table.clear();
                            self.heap_bytes = 0;
                            if self.mem_budget > 0 {
                                self.phase = PHASE_GRACE;
                                self.seed_grace_tasks();
                            } else {
                                self.phase = PHASE_JOIN;
                            }
                            self.cur_part = self.first_join_partition();
                            self.cur_probe = None;
                            self.cur_probe_addr = None;
                            self.match_idx = 0;
                            self.probe_reader = None;
                            self.checkpoint(ctx, false)?;
                        }
                        BatchPoll::Suspended => {
                            return Ok(match out.is_empty() {
                                true => BatchPoll::Suspended,
                                false => BatchPoll::Batch(out),
                            })
                        }
                    }
                }
                PHASE_GRACE => match self.grace_step(ctx)? {
                    GraceStep::Emit(t) => {
                        self.produced_since_sign += 1;
                        out.push(&t);
                        if out.len() >= max {
                            return Ok(BatchPoll::Batch(out));
                        }
                    }
                    GraceStep::Continue => {}
                    GraceStep::Done => self.phase = PHASE_DONE,
                },
                PHASE_JOIN => {
                    if self.cur_part >= self.partitions {
                        self.phase = PHASE_DONE;
                        continue;
                    }
                    if self.probe_reader.is_none() {
                        self.load_build_partition(ctx, self.cur_part)?;
                        self.open_probe_reader(ctx, self.cur_part, None);
                    }
                    if let Some(p) = self.cur_probe.clone() {
                        match self.next_match(&p, self.probe_key)? {
                            Some(m) => {
                                self.produced_since_sign += 1;
                                out.push(&m);
                                if out.len() >= max {
                                    return Ok(BatchPoll::Batch(out));
                                }
                            }
                            None => {
                                self.cur_probe = None;
                                self.cur_probe_addr = None;
                                self.match_idx = 0;
                            }
                        }
                        continue;
                    }
                    let reader = self
                        .probe_reader
                        .as_mut()
                        .ok_or_else(|| StorageError::invalid("hash-join probe reader not open"))?;
                    let addr = reader.position();
                    let t = reader.next()?;
                    self.note_probe_io(ctx);
                    match t {
                        Some(t) => {
                            ctx.tick(self.op);
                            self.cur_probe = Some(t);
                            self.cur_probe_addr = Some(addr);
                            self.match_idx = 0;
                        }
                        None => {
                            self.table.clear();
                            self.heap_bytes = 0;
                            self.probe_reader = None;
                            self.cur_part += 1;
                            self.cur_probe = None;
                            self.cur_probe_addr = None;
                            self.match_idx = 0;
                            self.checkpoint(ctx, false)?;
                        }
                    }
                }
                PHASE_DONE => {
                    return Ok(match out.is_empty() {
                        true => BatchPoll::Done,
                        false => BatchPoll::Batch(out),
                    })
                }
                p => return Err(StorageError::corrupt(format!("bad HJ phase {p}"))),
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecContext) -> Result<()> {
        self.build.close(ctx)?;
        self.probe.close(ctx)?;
        self.table.clear();
        Ok(())
    }

    fn sign_contract(&mut self, ctx: &mut ExecContext, parent_ckpt: CkptId) -> Result<CtrId> {
        // Reactive (fresh-cursor) checkpoints are valid GoBack targets only
        // where state is rebuildable from sealed runs: the legacy join
        // phase, and grace join/NLJ stages or task boundaries. A mid-spill
        // reactive point would reference unsealed child writers, so spill
        // stages anchor at the latest proactive (task-boundary) checkpoint
        // like the partitioning phases do.
        let reactive = self.phase == PHASE_JOIN
            || self.phase == PHASE_DONE
            || (self.phase == PHASE_GRACE
                && (self.cur_task.is_none() || Self::grace_emitting(self.stage)));
        let ctr = if reactive {
            // Reactive: fresh checkpoint capturing the join-phase cursor
            // (bucket number + probe position, §4).
            let control = self.control().encode_to_vec();
            let work = ctx.work.get(self.op);
            let ck = ctx.graph.create_checkpoint(self.op, control.clone(), work);
            ctx.graph.prune_for(self.op);
            ctx.graph
                .sign_contract(parent_ckpt, self.op, ck, control, work, vec![])?
        } else {
            let latest = match ctx.graph.latest_ckpt(self.op) {
                Some(ck) => ck,
                None => ctx.graph.create_barrier_checkpoint(
                    self.op,
                    self.control().encode_to_vec(),
                    ctx.work.get(self.op),
                ),
            };
            ctx.graph.sign_contract(
                parent_ckpt,
                self.op,
                latest,
                self.control().encode_to_vec(),
                ctx.work.get(self.op),
                vec![],
            )?
        };
        self.last_in_ctr = Some(ctr);
        self.produced_since_sign = 0;
        Ok(ctr)
    }

    fn side_snapshot(&mut self, _ctx: &mut ExecContext) -> Result<SideSnapshot> {
        Err(StorageError::invalid(
            "hash join cannot appear in a positional subtree",
        ))
    }

    fn suspend(
        &mut self,
        ctx: &mut ExecContext,
        mode: SuspendMode,
        plan: &SuspendPlan,
        sq: &mut SuspendedQuery,
    ) -> Result<()> {
        let strategy = plan.get(self.op);

        // Seal any in-progress partition writers; their handles are part
        // of the recorded state either way (Dump keeps them; GoBack to a
        // phase-start checkpoint discards in-phase partials, but sealing
        // first is harmless and keeps the accounting simple). Sealing
        // mutates `self` so that a suspend attempt failing *here or in
        // any later operator* leaves the sealed handles recorded — a
        // retried walk (the next ladder rung) resumes sealing where this
        // one stopped instead of dropping runs already on disk.
        Self::seal_writers(ctx, self.op, &mut self.build_writers, &mut self.build_runs)?;
        Self::seal_writers(ctx, self.op, &mut self.probe_writers, &mut self.probe_runs)?;
        // Mid-spill grace suspends seal the child partition writers the
        // same way; the sealed handles ride in the control record (Dump
        // reopens them for appending, GoBack discards them).
        Self::seal_writers(
            ctx,
            self.op,
            &mut self.spill_build_writers,
            &mut self.spill_build_children,
        )?;
        Self::seal_writers(
            ctx,
            self.op,
            &mut self.spill_probe_writers,
            &mut self.spill_probe_children,
        )?;
        let sealed_build = self.build_runs.clone();
        let sealed_probe = self.probe_runs.clone();

        let current_control = HjControl {
            build_runs: sealed_build.clone(),
            probe_runs: sealed_probe.clone(),
            ..self.control()
        };

        let (resume_point, saved, ckpt_for_children): (HjControl, Vec<Vec<u8>>, Option<CkptId>) =
            match mode {
                SuspendMode::Current => match strategy {
                    Strategy::Dump => (current_control, Vec::new(), None),
                    Strategy::GoBack { .. } => {
                        let latest = ctx
                            .graph
                            .latest_ckpt(self.op)
                            .ok_or_else(|| StorageError::invalid("hash join has no checkpoint"))?;
                        let grace_reposition = self.phase == PHASE_GRACE
                            && (self.cur_task.is_none() || Self::grace_emitting(self.stage));
                        if self.phase == PHASE_JOIN || grace_reposition {
                            // Join phase (or a grace join/NLJ stage):
                            // rebuild the table from own runs and
                            // reposition the probe cursor — target is the
                            // current control state.
                            (current_control, Vec::new(), None)
                        } else if self.phase == PHASE_GRACE {
                            // Mid-spill: restart the in-flight task from
                            // its boundary checkpoint (spill stages emit
                            // nothing, so no output is re-delivered).
                            let ck = ctx
                                .graph
                                .checkpoint(latest)
                                .ok_or_else(|| {
                                    StorageError::invalid("missing latest checkpoint")
                                })?
                                .control
                                .clone();
                            (HjControl::decode_from_slice(&ck)?, Vec::new(), None)
                        } else {
                            // Partition phases: go back to the phase-start
                            // checkpoint (shipped via `aux`); the resume
                            // target is the *current* point, so already
                            // delivered output is never re-emitted.
                            (current_control.clone(), Vec::new(), Some(latest))
                        }
                    }
                },
                SuspendMode::Contract(ctr_id) => {
                    let ctr = ctx
                        .graph
                        .contract(ctr_id)
                        .ok_or_else(|| StorageError::invalid(format!("unknown contract {ctr_id}")))?
                        .clone();
                    let target = HjControl::decode_from_slice(&ctr.control)?;
                    // Grace targets split like the phases do: join/NLJ
                    // stages (and task boundaries) reposition over sealed
                    // runs; spill-stage targets reference unsealed child
                    // writers and fall back to the boundary state.
                    let target_repositions = target.phase == PHASE_JOIN
                        || (target.phase == PHASE_GRACE
                            && (target.cur_task.is_none()
                                || Self::grace_emitting(target.stage)));
                    match strategy {
                        Strategy::Dump => {
                            // c = 0: no checkpoint since signing. In the
                            // partition phases (and mid-spill) nothing was
                            // produced since, so current state reproduces
                            // all outputs; in the join phase the contract's
                            // cursor is the resume point over the dumped
                            // table.
                            if target_repositions {
                                (target, ctr.saved_tuples.clone(), None)
                            } else {
                                (current_control, ctr.saved_tuples.clone(), None)
                            }
                        }
                        Strategy::GoBack { .. } => {
                            if target_repositions {
                                (target, ctr.saved_tuples.clone(), None)
                            } else if target.phase == PHASE_GRACE {
                                // Spill-stage target: roll forward from the
                                // fulfilling (task-boundary) checkpoint.
                                let ck = ctx
                                    .graph
                                    .checkpoint(ctr.child_ckpt)
                                    .ok_or_else(|| {
                                        StorageError::invalid("missing fulfilling checkpoint")
                                    })?
                                    .control
                                    .clone();
                                (
                                    HjControl::decode_from_slice(&ck)?,
                                    ctr.saved_tuples.clone(),
                                    None,
                                )
                            } else {
                                (target, ctr.saved_tuples.clone(), Some(ctr.child_ckpt))
                            }
                        }
                    }
                }
            };

        // Heap dump: the in-memory table (hybrid partition 0 or the
        // current join partition).
        let heap_dump = match strategy {
            Strategy::Dump if !self.table.is_empty() => {
                let mut pairs: Vec<(i64, Vec<Tuple>)> =
                    self.table.iter().map(|(k, v)| (*k, v.clone())).collect();
                pairs.sort_by_key(|(k, _)| *k);
                Some(ctx.put_dump_value(self.op, &TableDump(pairs))?)
            }
            _ => None,
        };

        let aux = match ckpt_for_children {
            Some(ck) => ctx
                .graph
                .checkpoint(ck)
                .map(|c| c.control.clone())
                .unwrap_or_default(),
            None => Vec::new(),
        };
        sq.put_record(OpSuspendRecord {
            op: self.op,
            strategy,
            resume_point: resume_point.encode_to_vec(),
            heap_dump,
            saved_tuples: saved,
            aux,
        });

        match ckpt_for_children {
            Some(ck) => {
                for child in [&mut self.build, &mut self.probe] {
                    match ctx.graph.contract_from(ck, child.op_id()).map(|c| c.id) {
                        Some(ctr) => child.suspend(ctx, SuspendMode::Contract(ctr), plan, sq)?,
                        None => child.suspend(ctx, SuspendMode::Current, plan, sq)?,
                    }
                }
                Ok(())
            }
            None => {
                self.build.suspend(ctx, SuspendMode::Current, plan, sq)?;
                self.probe.suspend(ctx, SuspendMode::Current, plan, sq)
            }
        }
    }

    fn resume(&mut self, ctx: &mut ExecContext, sq: &SuspendedQuery) -> Result<()> {
        self.build.resume(ctx, sq)?;
        self.probe.resume(ctx, sq)?;
        let rec = sq.record(self.op)?;
        let control = HjControl::decode_from_slice(&rec.resume_point)?;

        self.phase = control.phase;
        self.build_done = control.build_done;
        self.probe_done = control.probe_done;
        self.cur_part = control.cur_part as usize;
        self.cur_probe = control.cur_probe.clone();
        self.cur_probe_addr = control.probe_addr;
        self.match_idx = control.match_idx as usize;
        self.table.clear();
        self.heap_bytes = 0;
        self.probe_reader = None;
        self.pages_noted = 0;
        self.tasks = control.tasks.clone();
        self.cur_task = control.cur_task.clone();
        self.stage = control.stage;
        self.spill_build_children = control.spill_build_children.clone();
        self.spill_probe_children = control.spill_probe_children.clone();
        self.spill_reader = None;
        self.spill_pages_noted = 0;
        self.spill_build_writers.clear();
        self.spill_probe_writers.clear();
        self.nlj_pos = control.nlj_pos;
        self.nlj_addr = control.nlj_addr;
        self.nlj_next_pos = control.nlj_next_pos;
        self.nlj_next_addr = control.nlj_next_addr;

        match (&rec.strategy, &rec.heap_dump) {
            (Strategy::Dump, dump) => {
                // Reopen partially written partitions for appending.
                self.build_runs = control.build_runs.clone();
                self.probe_runs = control.probe_runs.clone();
                if self.phase == PHASE_BUILD {
                    self.build_writers = self
                        .build_runs
                        .drain(..)
                        .map(|h| RunWriter::reopen(ctx.db.pool().clone(), h).map(Some))
                        .collect::<Result<_>>()?;
                } else if self.phase == PHASE_PROBE {
                    self.probe_writers = self
                        .probe_runs
                        .drain(..)
                        .map(|h| RunWriter::reopen(ctx.db.pool().clone(), h).map(Some))
                        .collect::<Result<_>>()?;
                } else if self.phase == PHASE_GRACE && self.cur_task.is_some() {
                    // Mid-spill: the stage's child runs were sealed at
                    // suspend; reopen them all as in-progress writers and
                    // reposition the re-partition reader. (In build-spill,
                    // probe children don't exist yet; in probe-spill, the
                    // build children are final and stay sealed.)
                    let task = self.cur_task.clone().expect("checked above");
                    if self.stage == TS_SPILL_BUILD {
                        self.spill_build_writers = self
                            .spill_build_children
                            .drain(..)
                            .map(|h| RunWriter::reopen(ctx.db.pool().clone(), h).map(Some))
                            .collect::<Result<_>>()?;
                        let mut r = RunReader::open(ctx.db.pool().clone(), task.build);
                        if let Some(addr) = control.spill_addr {
                            r.seek(addr);
                        }
                        self.spill_reader = Some(r);
                    } else if self.stage == TS_SPILL_PROBE {
                        self.spill_probe_writers = self
                            .spill_probe_children
                            .drain(..)
                            .map(|h| RunWriter::reopen(ctx.db.pool().clone(), h).map(Some))
                            .collect::<Result<_>>()?;
                        let mut r = RunReader::open(ctx.db.pool().clone(), task.probe);
                        if let Some(addr) = control.spill_addr {
                            r.seek(addr);
                        }
                        self.spill_reader = Some(r);
                    }
                }
                if let Some(blob) = dump {
                    let TableDump(pairs) = ctx.get_dump_value_for(self.op, *blob)?;
                    for (k, vs) in pairs {
                        for t in vs {
                            self.table_insert(k, t);
                        }
                    }
                }
            }
            (Strategy::GoBack { .. }, _) => {
                self.build_runs = control.build_runs.clone();
                self.probe_runs = control.probe_runs.clone();
                if self.phase == PHASE_BUILD || (self.phase == PHASE_PROBE && !self.hybrid) {
                    // Reset counters to the checkpoint baseline: the work
                    // from there to the suspend point is redone by normal
                    // post-resume execution (no output exists in these
                    // phases for the simple variant).
                    if !rec.aux.is_empty() {
                        let start = HjControl::decode_from_slice(&rec.aux)?;
                        self.build_consumed = start.build_consumed;
                        self.probe_consumed = start.probe_consumed;
                    }
                }
                if self.phase == PHASE_BUILD {
                    // Partials discarded: fresh writers are created lazily
                    // by next(); children were repositioned to phase start.
                    self.build_writers.clear();
                    self.build_runs.clear();
                    self.probe_runs.clear();
                    // A build-phase target means nothing was emitted yet;
                    // hybrid's in-memory table is rebuilt by re-execution.
                    self.cur_probe = None;
                    self.cur_probe_addr = None;
                    self.match_idx = 0;
                } else if self.phase == PHASE_PROBE {
                    self.probe_writers.clear();
                    self.probe_runs.clear();
                    if self.hybrid {
                        // Hybrid: the enforced contract is fulfilled by the
                        // build-phase-start checkpoint (hybrid has no probe
                        // boundary checkpoint). Roll forward from there:
                        // replay the deterministic partitioning machine
                        // with output suppressed until the consumed
                        // counters reach the contract point, then restore
                        // the emission cursors (§3.3 skipping).
                        let target = control.clone();
                        let start = if rec.aux.is_empty() {
                            return Err(StorageError::corrupt(
                                "hybrid GoBack record missing checkpoint control",
                            ));
                        } else {
                            HjControl::decode_from_slice(&rec.aux)?
                        };
                        self.phase = start.phase;
                        self.build_done = start.build_done;
                        self.probe_done = start.probe_done;
                        self.build_consumed = start.build_consumed;
                        self.probe_consumed = start.probe_consumed;
                        self.build_runs = start.build_runs.clone();
                        self.probe_runs = start.probe_runs.clone();
                        self.cur_probe = None;
                        self.cur_probe_addr = None;
                        self.match_idx = 0;
                        self.replay_stop =
                            Some((target.build_consumed, target.probe_consumed));
                        while !self.replay_reached() {
                            match self.next(ctx)? {
                                Poll::Tuple(_) => {} // suppressed re-emission
                                Poll::Done => {
                                    self.replay_stop = None;
                                    return Err(StorageError::corrupt(
                                        "hybrid replay finished before target",
                                    ));
                                }
                                Poll::Suspended => {
                                    if self.replay_reached() {
                                        break;
                                    }
                                    self.replay_stop = None;
                                    return Err(StorageError::invalid(
                                        "suspend during resume replay is not supported",
                                    ));
                                }
                            }
                        }
                        self.replay_stop = None;
                        self.cur_probe = target.cur_probe.clone();
                        self.match_idx = target.match_idx as usize;
                    }
                }
            }
        }

        if self.phase == PHASE_JOIN && self.cur_part < self.partitions {
            // Rebuild the current partition's table and reposition the
            // probe cursor (GoBack), or restore from the dump (Dump).
            if rec.heap_dump.is_none() {
                self.load_build_partition(ctx, self.cur_part)?;
            }
            let at = self.cur_probe_addr.or(control.probe_addr);
            self.open_probe_reader(ctx, self.cur_part, at);
            if self.cur_probe.is_some() {
                // The recorded probe tuple was already consumed from the
                // run; skip past it.
                let r = self
                    .probe_reader
                    .as_mut()
                    .ok_or_else(|| StorageError::invalid("hash-join probe reader not open"))?;
                let _ = r.next()?;
                self.note_probe_io(ctx);
            }
        }

        // Grace join/NLJ stages mirror the legacy join-phase rebuild, but
        // over the in-flight task's runs (the NLJ block reload is
        // deterministic from the recorded block cursor).
        if self.phase == PHASE_GRACE && Self::grace_emitting(self.stage) {
            if let Some(task) = self.cur_task.clone() {
                if rec.heap_dump.is_none() {
                    if self.stage == TS_JOIN {
                        self.load_build_run(ctx, task.build)?;
                    } else if self.nlj_pos < task.build.tuples {
                        self.load_nlj_block(ctx, &task)?;
                    }
                }
                let at = self.cur_probe_addr.or(control.probe_addr);
                self.open_probe_run(ctx, task.probe, at);
                if self.cur_probe.is_some() {
                    let r = self
                        .probe_reader
                        .as_mut()
                        .ok_or_else(|| StorageError::invalid("hash-join probe reader not open"))?;
                    let _ = r.next()?;
                    self.note_probe_io(ctx);
                }
            }
        }

        self.pending = rec
            .saved_tuples
            .iter()
            .map(|b| Tuple::decode_from_slice(b))
            .collect::<Result<_>>()?;
        self.last_in_ctr = None;
        self.produced_since_sign = 0;
        Ok(())
    }

    fn suspend_inputs(&self) -> OpSuspendInputs {
        let grace_entries = self.tasks.len()
            + self.spill_build_children.len()
            + self.spill_probe_children.len()
            + usize::from(self.cur_task.is_some());
        OpSuspendInputs {
            heap_bytes: self.heap_bytes,
            control_bytes: 64
                + 16 * (self.build_runs.len() + self.probe_runs.len())
                + 48 * grace_entries,
        }
    }

    fn visit(&self, f: &mut dyn FnMut(&dyn Operator)) {
        f(self);
        self.build.visit(f);
        self.probe.visit(f);
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut dyn Operator)) {
        f(self);
        self.build.visit_mut(f);
        self.probe.visit_mut(f);
    }
}

/// Heap-dump image of the in-memory hash table. Zero-copy layout: one raw
/// little-endian run of the `n` keys, one raw run of per-key tuple counts,
/// then every tuple flattened into a single column-major [`TupleBlock`] —
/// no per-pair tags or per-tuple headers.
struct TableDump(Vec<(i64, Vec<Tuple>)>);

impl Encode for TableDump {
    fn encode(&self, enc: &mut Encoder) {
        let n = self.0.len();
        enc.put_u32(n as u32);
        let mut keys = Vec::with_capacity(n * 8);
        let mut counts = Vec::with_capacity(n * 4);
        let mut flat = Vec::new();
        for (k, vs) in &self.0 {
            keys.extend_from_slice(&k.to_le_bytes());
            counts.extend_from_slice(&(vs.len() as u32).to_le_bytes());
            flat.extend(vs.iter().cloned());
        }
        enc.put_raw(&keys);
        enc.put_raw(&counts);
        TupleBlock(flat).encode(enc);
    }
}

impl Decode for TableDump {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self> {
        let n = dec.get_u32()? as usize;
        if n > (1 << 28) {
            return Err(StorageError::corrupt(format!("table dump claims {n} keys")));
        }
        let keys = dec.get_raw(n * 8)?;
        let counts = dec.get_raw(n * 4)?;
        let TupleBlock(flat) = TupleBlock::decode(dec)?;
        let mut it = flat.into_iter();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let k = i64::from_le_bytes(keys[i * 8..i * 8 + 8].try_into().expect("8-byte key"));
            let c =
                u32::from_le_bytes(counts[i * 4..i * 4 + 4].try_into().expect("4-byte count"))
                    as usize;
            let mut vs = Vec::with_capacity(c.min(1 << 20));
            for _ in 0..c {
                vs.push(it.next().ok_or_else(|| {
                    StorageError::corrupt("table dump truncated: fewer tuples than counts claim")
                })?);
            }
            out.push((k, vs));
        }
        if it.next().is_some() {
            return Err(StorageError::corrupt(
                "table dump has trailing tuples beyond counted groups",
            ));
        }
        Ok(TableDump(out))
    }
}
