//! Overlapped suspend-dump write pipeline.
//!
//! At suspend time every dump-bearing operator serializes its in-memory
//! state into a blob. Writing those blobs one after another puts the full
//! I/O latency on the suspend critical path — exactly the window the paper
//! wants small. The [`DumpPipeline`] is a bounded pool of background
//! writer threads: the submitting (operator) thread encodes the payload,
//! creates the backing file, and computes the [`BlobId`] — so operators
//! get their id synchronously, same as the serial path — while the page
//! writes and the per-blob fsync happen on worker threads, overlapping
//! across blobs (the [`DiskManager`](qsr_storage::DiskManager) locks files
//! individually, so writers to distinct files genuinely run in parallel).
//!
//! Crash-safety is unchanged from the serial protocol: the driver joins
//! every writer (via [`DumpPipeline::finish`]) *before* the atomic
//! `SUSPEND.manifest` rename, so nothing the manifest references can still
//! be in flight at the commit point. Under the fault injector the global
//! ordering of write events becomes scheduling-dependent, but the *set*
//! of events — and therefore the total count the crash matrix enumerates —
//! is identical to a serial suspend, and every pre-commit write targets a
//! fresh file that is invisible without the manifest.

use qsr_storage::{fnv1a, BlobId, BufferPool, Database, Encode, FileId, Page, Result, PAGE_SIZE};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex as StdMutex};
use std::thread::JoinHandle;

enum Job {
    /// Write `bytes` as pages of `file`, then fsync it.
    WriteBlob { file: FileId, bytes: Vec<u8> },
    /// Flush dirty buffer-pool frames of `file` and fsync it.
    SyncFile(FileId),
}

/// Bounded background writer pool for suspend-time dump blobs. See the
/// module docs for the protocol.
pub struct DumpPipeline {
    pool: Arc<BufferPool>,
    tx: StdMutex<Option<Sender<Job>>>,
    workers: StdMutex<Vec<JoinHandle<()>>>,
    errors: Arc<StdMutex<Vec<qsr_storage::StorageError>>>,
}

impl DumpPipeline {
    /// Spawn `workers` writer threads over the database's buffer pool.
    /// `workers` must be ≥ 1 (a serial suspend simply uses no pipeline).
    pub fn new(db: &Database, workers: usize) -> Arc<Self> {
        let pool = db.pool().clone();
        let (tx, rx) = std::sync::mpsc::channel::<Job>();
        let rx = Arc::new(StdMutex::new(rx));
        let errors = Arc::new(StdMutex::new(Vec::new()));
        let handles = (0..workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let pool = pool.clone();
                let errors = errors.clone();
                std::thread::spawn(move || worker_loop(&rx, &pool, &errors))
            })
            .collect();
        Arc::new(Self {
            pool,
            tx: StdMutex::new(Some(tx)),
            workers: StdMutex::new(handles),
            errors,
        })
    }

    /// Encode `value` and schedule it as a new dump blob. The file is
    /// created and the blob id (length + checksum) computed on the calling
    /// thread; page writes and the fsync happen on a worker.
    pub fn put_value<T: Encode>(&self, value: &T) -> Result<BlobId> {
        self.put_encoded(value.encode_to_vec())
    }

    /// Schedule pre-encoded `bytes` as a new dump blob (the caller already
    /// serialized the payload — e.g. to consult the salvage cache by
    /// checksum before paying for a write).
    pub fn put_encoded(&self, bytes: Vec<u8>) -> Result<BlobId> {
        let file = self.pool.create_file()?;
        let id = BlobId {
            file,
            len: bytes.len() as u64,
            checksum: fnv1a(&bytes),
        };
        let unsent = match &*self.tx.lock().expect("pipeline sender poisoned") {
            Some(tx) => tx.send(Job::WriteBlob { file, bytes }).err().map(|e| e.0),
            None => Some(Job::WriteBlob { file, bytes }),
        };
        if let Some(Job::WriteBlob { file, bytes }) = unsent {
            // Pipeline already finished (or its workers died): write
            // inline so the returned id is always backed by data.
            write_blob(&self.pool, file, &bytes)?;
        }
        Ok(id)
    }

    /// Schedule a flush-and-fsync of `file` (dirty buffer-pool pages).
    pub fn submit_sync(&self, file: FileId) {
        let inline = match &*self.tx.lock().expect("pipeline sender poisoned") {
            Some(tx) => tx.send(Job::SyncFile(file)).is_err(),
            None => true,
        };
        if inline {
            if let Err(e) = self.pool.sync_file(file) {
                self.errors.lock().expect("error list poisoned").push(e);
            }
        }
    }

    /// Join every writer. Returns the first error any worker hit (all
    /// submitted jobs are attempted regardless). Idempotent; the driver
    /// MUST call this before committing the suspend manifest.
    pub fn finish(&self) -> Result<()> {
        drop(self.tx.lock().expect("pipeline sender poisoned").take());
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker list poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let mut errs = self.errors.lock().expect("error list poisoned");
        match errs.is_empty() {
            true => Ok(()),
            false => Err(errs.remove(0)),
        }
    }
}

impl Drop for DumpPipeline {
    fn drop(&mut self) {
        // Never leave detached writers behind: an error path that skips
        // finish() would otherwise race later phases of the test or query.
        let _ = self.finish();
    }
}

fn worker_loop(
    rx: &StdMutex<Receiver<Job>>,
    pool: &Arc<BufferPool>,
    errors: &StdMutex<Vec<qsr_storage::StorageError>>,
) {
    loop {
        // Hold the receiver lock only while waiting, not while writing.
        let job = match rx.lock() {
            Ok(rx) => match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // sender dropped: pipeline finished
            },
            Err(_) => return,
        };
        let outcome = match job {
            Job::WriteBlob { file, bytes } => write_blob(pool, file, &bytes),
            Job::SyncFile(file) => pool.sync_file(file),
        };
        if let Err(e) = outcome {
            if let Ok(mut errs) = errors.lock() {
                errs.push(e);
            }
        }
    }
}

/// Page-by-page blob body write + fsync (the id's checksum was computed
/// at submit time from the same bytes).
fn write_blob(pool: &Arc<BufferPool>, file: FileId, bytes: &[u8]) -> Result<()> {
    for chunk in bytes.chunks(PAGE_SIZE) {
        let mut page = Page::zeroed();
        page.bytes_mut()[..chunk.len()].copy_from_slice(chunk);
        pool.append_page(file, &page)?;
    }
    pool.sync_file(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsr_storage::CostModel;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new() -> Self {
            static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let p = std::env::temp_dir().join(format!(
                "qsr-writers-test-{}-{}",
                std::process::id(),
                N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn parallel_blobs_read_back_after_finish() {
        let d = TempDir::new();
        let db = Database::open(&d.0, CostModel::symmetric(1.0)).unwrap();
        let pipe = DumpPipeline::new(&db, 4);
        let payloads: Vec<Vec<u8>> = (0..8u8)
            .map(|i| vec![i; (i as usize + 1) * (PAGE_SIZE / 2)])
            .collect();
        let ids: Vec<BlobId> = payloads
            .iter()
            .map(|p| pipe.put_value(p).unwrap())
            .collect();
        pipe.finish().unwrap();
        for (id, p) in ids.iter().zip(&payloads) {
            assert_eq!(db.blobs().get_value::<Vec<u8>>(*id).unwrap(), *p);
        }
    }

    #[test]
    fn finish_is_idempotent_and_put_after_finish_writes_inline() {
        let d = TempDir::new();
        let db = Database::open(&d.0, CostModel::symmetric(1.0)).unwrap();
        let pipe = DumpPipeline::new(&db, 2);
        pipe.finish().unwrap();
        pipe.finish().unwrap();
        let id = pipe.put_value(&b"late".to_vec()).unwrap();
        assert_eq!(db.blobs().get_value::<Vec<u8>>(id).unwrap(), b"late");
    }

    #[test]
    fn charged_writes_match_serial_path() {
        let d = TempDir::new();
        let db = Database::open(&d.0, CostModel::symmetric(1.0)).unwrap();
        let payload = vec![3u8; 2 * PAGE_SIZE + 1];

        let before = db.ledger().snapshot();
        db.blobs().put_value(&payload).unwrap();
        let serial = db.ledger().snapshot().since(&before);

        let before = db.ledger().snapshot();
        let pipe = DumpPipeline::new(&db, 3);
        pipe.put_value(&payload).unwrap();
        pipe.finish().unwrap();
        let parallel = db.ledger().snapshot().since(&before);

        assert_eq!(
            serial.total_pages_written(),
            parallel.total_pages_written(),
            "pipeline must charge exactly the serial I/O"
        );
    }
}
