//! Overlapped suspend-dump write pipeline.
//!
//! At suspend time every dump-bearing operator serializes its in-memory
//! state into a blob. Writing those blobs one after another puts the full
//! I/O latency on the suspend critical path — exactly the window the paper
//! wants small. The [`DumpPipeline`] is a bounded pool of background
//! writer threads: the submitting (operator) thread encodes the payload,
//! creates the backing file, and computes the [`BlobId`] — so operators
//! get their id synchronously, same as the serial path — while the page
//! writes and the per-blob fsync happen on worker threads, overlapping
//! across blobs (the [`DiskManager`](qsr_storage::DiskManager) locks files
//! individually, so writers to distinct files genuinely run in parallel).
//!
//! Crash-safety is unchanged from the serial protocol: the driver joins
//! every writer (via [`DumpPipeline::finish`]) *before* the atomic
//! `SUSPEND.manifest` rename, so nothing the manifest references can still
//! be in flight at the commit point. Under the fault injector the global
//! ordering of write events becomes scheduling-dependent, but the *set*
//! of events — and therefore the total count the crash matrix enumerates —
//! is identical to a serial suspend, and every pre-commit write targets a
//! fresh file that is invisible without the manifest.

use qsr_storage::{fnv1a, BlobId, BufferPool, Database, Encode, FileId, Page, Result, PAGE_SIZE};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;

enum Job {
    /// Write `bytes` as pages of `file`, then fsync it.
    WriteBlob { file: FileId, bytes: Vec<u8> },
    /// Flush dirty buffer-pool frames of `file` and fsync it.
    SyncFile(FileId),
}

/// Bounded background writer pool for suspend-time dump blobs. See the
/// module docs for the protocol.
pub struct DumpPipeline {
    pool: Arc<BufferPool>,
    tx: StdMutex<Option<Sender<Job>>>,
    workers: StdMutex<Vec<JoinHandle<()>>>,
    errors: Arc<StdMutex<Vec<qsr_storage::StorageError>>>,
}

impl DumpPipeline {
    /// Spawn `workers` writer threads over the database's buffer pool.
    /// `workers` must be ≥ 1 (a serial suspend simply uses no pipeline).
    pub fn new(db: &Database, workers: usize) -> Arc<Self> {
        let pool = db.pool().clone();
        let (tx, rx) = std::sync::mpsc::channel::<Job>();
        let rx = Arc::new(StdMutex::new(rx));
        let errors = Arc::new(StdMutex::new(Vec::new()));
        let handles = (0..workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let pool = pool.clone();
                let errors = errors.clone();
                std::thread::spawn(move || worker_loop(&rx, &pool, &errors))
            })
            .collect();
        Arc::new(Self {
            pool,
            tx: StdMutex::new(Some(tx)),
            workers: StdMutex::new(handles),
            errors,
        })
    }

    /// Encode `value` and schedule it as a new dump blob. The file is
    /// created and the blob id (length + checksum) computed on the calling
    /// thread; page writes and the fsync happen on a worker.
    pub fn put_value<T: Encode>(&self, value: &T) -> Result<BlobId> {
        self.put_encoded(value.encode_to_vec())
    }

    /// Schedule pre-encoded `bytes` as a new dump blob (the caller already
    /// serialized the payload — e.g. to consult the salvage cache by
    /// checksum before paying for a write).
    pub fn put_encoded(&self, bytes: Vec<u8>) -> Result<BlobId> {
        let file = self.pool.create_file()?;
        let id = BlobId {
            file,
            len: bytes.len() as u64,
            checksum: fnv1a(&bytes),
        };
        let unsent = match &*self.tx.lock().expect("pipeline sender poisoned") {
            Some(tx) => tx.send(Job::WriteBlob { file, bytes }).err().map(|e| e.0),
            None => Some(Job::WriteBlob { file, bytes }),
        };
        if let Some(Job::WriteBlob { file, bytes }) = unsent {
            // Pipeline already finished (or its workers died): write
            // inline so the returned id is always backed by data.
            write_blob(&self.pool, file, &bytes)?;
        }
        Ok(id)
    }

    /// Schedule a flush-and-fsync of `file` (dirty buffer-pool pages).
    pub fn submit_sync(&self, file: FileId) {
        let inline = match &*self.tx.lock().expect("pipeline sender poisoned") {
            Some(tx) => tx.send(Job::SyncFile(file)).is_err(),
            None => true,
        };
        if inline {
            if let Err(e) = self.pool.sync_file(file) {
                self.errors.lock().expect("error list poisoned").push(e);
            }
        }
    }

    /// Join every writer. Returns the first error any worker hit (all
    /// submitted jobs are attempted regardless). Idempotent; the driver
    /// MUST call this before committing the suspend manifest.
    pub fn finish(&self) -> Result<()> {
        drop(self.tx.lock().expect("pipeline sender poisoned").take());
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker list poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let mut errs = self.errors.lock().expect("error list poisoned");
        match errs.is_empty() {
            true => Ok(()),
            false => Err(errs.remove(0)),
        }
    }
}

impl Drop for DumpPipeline {
    fn drop(&mut self) {
        // Never leave detached writers behind: an error path that skips
        // finish() would otherwise race later phases of the test or query.
        let _ = self.finish();
    }
}

/// One in-flight prefetched dump blob: a worker thread fills it once,
/// the consuming operator blocks on [`PrefetchSlot::take`]. This is the
/// rendezvous that lets resume-time blob reads overlap operator state
/// rebuilding instead of forming a read-everything barrier up front.
pub struct PrefetchSlot {
    cell: StdMutex<Option<std::result::Result<Vec<u8>, qsr_storage::StorageError>>>,
    ready: Condvar,
}

impl PrefetchSlot {
    fn new() -> Self {
        Self {
            cell: StdMutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, res: std::result::Result<Vec<u8>, qsr_storage::StorageError>) {
        let mut g = self.cell.lock().unwrap_or_else(|e| e.into_inner());
        *g = Some(res);
        self.ready.notify_all();
    }

    /// Block until the worker's read lands, then move the payload (or its
    /// typed read error, replayed at this consumption site) out.
    pub fn take(&self) -> std::result::Result<Vec<u8>, qsr_storage::StorageError> {
        let mut g = self.cell.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(res) = g.take() {
                return res;
            }
            g = self.ready.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block until the worker's read lands, leaving the payload in place.
    /// The drop-time barrier for slots no operator consumed.
    pub fn wait_filled(&self) {
        let mut g = self.cell.lock().unwrap_or_else(|e| e.into_inner());
        while g.is_none() {
            g = self.ready.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Dump blobs being pre-read by the parallel resume pool, keyed by id.
/// Dropping the collection blocks until every still-queued read has
/// landed — the driver drops it before leaving `Phase::Resume`, so a
/// resume that aborts early (or substitutes a fallback and never consumes
/// a blob) cannot leak charged reads into the next phase.
#[derive(Default)]
pub struct PrefetchedDumps {
    slots: HashMap<BlobId, Arc<PrefetchSlot>>,
}

impl PrefetchedDumps {
    /// An empty collection (no worker threads attached).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of blobs queued.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no blobs are queued.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Detach the slot for `id`, if it was queued. The caller then blocks
    /// on [`PrefetchSlot::take`] for the payload.
    pub fn remove(&mut self, id: &BlobId) -> Option<Arc<PrefetchSlot>> {
        self.slots.remove(id)
    }
}

impl Drop for PrefetchedDumps {
    fn drop(&mut self) {
        for slot in self.slots.values() {
            slot.wait_filled();
        }
    }
}

/// Bounded parallel prefetch of resume-time dump blobs — the read-side
/// mirror of [`DumpPipeline`]. Worker threads pull blob ids off a shared
/// queue and read them through the regular [`qsr_storage::BlobStore`]
/// path, so page reads are charged to the ambient ledger phase
/// (`Phase::Resume` during recovery), checksum verification runs, and
/// fault injection fires exactly as on the serial path; only the
/// wall-clock overlaps. `fetch` returns immediately: reads proceed in the
/// background and *pipeline* with operator state rebuilding — each
/// operator blocks only on its own blob's [`PrefetchSlot`], so on a
/// single core the blob I/O wait hides under the decode CPU of whichever
/// operator resumed first. Errors are never raised here: they replay
/// when the owning operator consumes the blob (via
/// [`ExecContext::get_dump_value`](crate::context::ExecContext::get_dump_value)),
/// preserving the serial error taxonomy and surfacing order.
pub struct ResumePool;

impl ResumePool {
    /// Start reading `blobs` with up to `workers` detached threads (at
    /// least one; capped at the queue length) and return the slot map
    /// immediately. Duplicate ids are fetched once, so charged reads
    /// match a serial first consumption; dropping the returned map waits
    /// for every read to land.
    pub fn fetch(db: &Database, blobs: &[BlobId], workers: usize) -> PrefetchedDumps {
        let mut queue: Vec<BlobId> = Vec::with_capacity(blobs.len());
        for &b in blobs {
            if !queue.contains(&b) {
                queue.push(b);
            }
        }
        if queue.is_empty() {
            return PrefetchedDumps::new();
        }
        let workers = workers.max(1).min(queue.len());
        let slots: HashMap<BlobId, Arc<PrefetchSlot>> = queue
            .iter()
            .map(|&id| (id, Arc::new(PrefetchSlot::new())))
            .collect();
        let queue = Arc::new(queue);
        let next = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for _ in 0..workers {
            let store = db.blobs().clone();
            let queue = queue.clone();
            let next = next.clone();
            let slots = slots.clone();
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let Some(&id) = queue.get(i) else { return };
                let res = store.get(id);
                slots[&id].fill(res);
            });
        }
        PrefetchedDumps { slots }
    }
}

fn worker_loop(
    rx: &StdMutex<Receiver<Job>>,
    pool: &Arc<BufferPool>,
    errors: &StdMutex<Vec<qsr_storage::StorageError>>,
) {
    loop {
        // Hold the receiver lock only while waiting, not while writing.
        let job = match rx.lock() {
            Ok(rx) => match rx.recv() {
                Ok(job) => job,
                Err(_) => return, // sender dropped: pipeline finished
            },
            Err(_) => return,
        };
        let outcome = match job {
            Job::WriteBlob { file, bytes } => write_blob(pool, file, &bytes),
            Job::SyncFile(file) => pool.sync_file(file),
        };
        if let Err(e) = outcome {
            if let Ok(mut errs) = errors.lock() {
                errs.push(e);
            }
        }
    }
}

/// Page-by-page blob body write + fsync (the id's checksum was computed
/// at submit time from the same bytes).
fn write_blob(pool: &Arc<BufferPool>, file: FileId, bytes: &[u8]) -> Result<()> {
    for chunk in bytes.chunks(PAGE_SIZE) {
        let mut page = Page::zeroed();
        page.bytes_mut()[..chunk.len()].copy_from_slice(chunk);
        pool.append_page(file, &page)?;
    }
    pool.sync_file(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsr_storage::CostModel;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new() -> Self {
            static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let p = std::env::temp_dir().join(format!(
                "qsr-writers-test-{}-{}",
                std::process::id(),
                N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn parallel_blobs_read_back_after_finish() {
        let d = TempDir::new();
        let db = Database::open(&d.0, CostModel::symmetric(1.0)).unwrap();
        let pipe = DumpPipeline::new(&db, 4);
        let payloads: Vec<Vec<u8>> = (0..8u8)
            .map(|i| vec![i; (i as usize + 1) * (PAGE_SIZE / 2)])
            .collect();
        let ids: Vec<BlobId> = payloads
            .iter()
            .map(|p| pipe.put_value(p).unwrap())
            .collect();
        pipe.finish().unwrap();
        for (id, p) in ids.iter().zip(&payloads) {
            assert_eq!(db.blobs().get_value::<Vec<u8>>(*id).unwrap(), *p);
        }
    }

    #[test]
    fn finish_is_idempotent_and_put_after_finish_writes_inline() {
        let d = TempDir::new();
        let db = Database::open(&d.0, CostModel::symmetric(1.0)).unwrap();
        let pipe = DumpPipeline::new(&db, 2);
        pipe.finish().unwrap();
        pipe.finish().unwrap();
        let id = pipe.put_value(&b"late".to_vec()).unwrap();
        assert_eq!(db.blobs().get_value::<Vec<u8>>(id).unwrap(), b"late");
    }

    #[test]
    fn resume_pool_prefetches_payloads_and_captures_errors() {
        let d = TempDir::new();
        let db = Database::open(&d.0, CostModel::symmetric(1.0)).unwrap();
        let payloads: Vec<Vec<u8>> = (0..6u8).map(|i| vec![i; 100 * (i as usize + 1)]).collect();
        let ids: Vec<BlobId> = payloads.iter().map(|p| db.blobs().put(p).unwrap()).collect();
        // A blob whose backing file is gone must surface as a stored
        // error, not a panic or a missing entry.
        db.blobs().delete(ids[2]).unwrap();

        let mut fetched = ResumePool::fetch(&db, &ids, 4);
        assert_eq!(fetched.len(), ids.len());
        for (i, id) in ids.iter().enumerate() {
            match fetched.remove(id).expect("every id gets a slot").take() {
                Ok(bytes) => {
                    assert_ne!(i, 2);
                    assert_eq!(bytes, payloads[i]);
                }
                Err(_) => assert_eq!(i, 2, "only the deleted blob may fail"),
            }
        }
        assert!(fetched.is_empty());
    }

    #[test]
    fn resume_pool_charges_match_serial_reads() {
        let d = TempDir::new();
        let db = Database::open(&d.0, CostModel::symmetric(1.0)).unwrap();
        let ids: Vec<BlobId> = (0..5u8)
            .map(|i| db.blobs().put(&vec![i; PAGE_SIZE + 7]).unwrap())
            .collect();

        let before = db.ledger().snapshot();
        for id in &ids {
            db.blobs().get(*id).unwrap();
        }
        let serial = db.ledger().snapshot().since(&before);

        let before = db.ledger().snapshot();
        let fetched = ResumePool::fetch(&db, &ids, 4);
        assert_eq!(fetched.len(), ids.len());
        // Dropping the slot map is the barrier: it waits for every queued
        // read to land, so the snapshot below sees all charges.
        drop(fetched);
        let parallel = db.ledger().snapshot().since(&before);

        assert_eq!(
            serial.total_pages_read(),
            parallel.total_pages_read(),
            "pool must charge exactly the serial read I/O"
        );
    }

    #[test]
    fn charged_writes_match_serial_path() {
        let d = TempDir::new();
        let db = Database::open(&d.0, CostModel::symmetric(1.0)).unwrap();
        let payload = vec![3u8; 2 * PAGE_SIZE + 1];

        let before = db.ledger().snapshot();
        db.blobs().put_value(&payload).unwrap();
        let serial = db.ledger().snapshot().since(&before);

        let before = db.ledger().snapshot();
        let pipe = DumpPipeline::new(&db, 3);
        pipe.put_value(&payload).unwrap();
        pipe.finish().unwrap();
        let parallel = db.ledger().snapshot().since(&before);

        assert_eq!(
            serial.total_pages_written(),
            parallel.total_pages_written(),
            "pipeline must charge exactly the serial I/O"
        );
    }
}
