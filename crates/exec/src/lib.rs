//! # qsr-exec
//!
//! Suspendable iterator-based query execution (paper §2–§4): the extended
//! operator interface (`Open`/`GetNext`/`Close` plus `SignContract`,
//! `Suspend()`, `Suspend(Ctr)`, `Resume`), the physical operators with
//! their semantics-driven checkpointing, the plan specification, and the
//! execute/suspend/resume lifecycle driver.

pub mod context;
pub mod driver;
pub mod operator;
pub mod ops;
pub mod plan;
pub mod recovery;
pub mod writers;

pub use context::{DumpWatchdog, ExecContext, SalvageCache, SuspendTrigger, WorkUnitObserver};
pub use driver::{QueryExecution, Rung, SuspendOptions, SuspendedHandle};
pub use writers::DumpPipeline;
pub use recovery::{
    clear_manifest, clear_manifest_named, read_manifest, read_manifest_named, with_backoff,
    with_retries, BackoffSchedule, ResumeError, SuspendManifest, RESUME_BACKOFF, SUSPEND_MANIFEST,
};
pub use operator::{Operator, Poll, SuspendMode};
pub use ops::{
    AggFn, BlockNlj, Filter, HashAgg, HashJoin, IndexNlj, MergeJoin, Predicate, Project,
    TableScan,
};
pub use plan::{build_plan, build_plan_with, plan_schema, BuildOptions, BuiltPlan, PlanSpec};
