//! The query lifecycle driver (paper §2, Figure 3): execute → suspend →
//! resume → continue.
//!
//! `QueryExecution` owns a built plan and its execution context. During
//! the execute phase, `next()` pulls tuples from the root; when a suspend
//! request lands (via [`crate::context::SuspendTrigger`] or
//! [`QueryExecution::request_suspend`]), `Poll::Suspended` bubbles up and
//! the caller invokes [`QueryExecution::suspend`], which:
//!
//! 1. switches the cost ledger to the suspend phase,
//! 2. snapshots per-operator statistics and asks the
//!    [`SuspendPolicy`] for a suspend plan (the online MIP optimizer, a
//!    purist policy, or a fixed plan),
//! 3. carries the plan out by walking the tree with `Suspend()` /
//!    `Suspend(Ctr)` calls,
//! 4. serializes the `SuspendedQuery` structure (plus the contract graph
//!    and the work snapshot) to the blob store, and
//! 5. drops the whole tree — all memory is released.
//!
//! [`QueryExecution::resume`] reverses the process; the resumed execution
//! delivers exactly the tuples following the last pre-suspend output.

use crate::context::{ExecContext, SuspendTrigger};
use crate::operator::{Operator, Poll, SuspendMode};
use crate::plan::{build_plan, PlanSpec};
use qsr_core::{
    ContractGraph, OpSuspendInputs, OptimizeReport, PlanTopology, SuspendOptimizer,
    SuspendPolicy, SuspendProblem, SuspendedQuery,
};
use qsr_storage::{
    BlobId, Database, Decode, Encode, Phase, Result, Schema, StorageError, Tuple,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Handle to a suspended query on disk.
#[derive(Debug, Clone)]
pub struct SuspendedHandle {
    /// Blob holding the serialized `SuspendedQuery`.
    pub blob: BlobId,
    /// The optimizer's report (chosen plan, estimated costs, solve time).
    pub report: OptimizeReport,
}

/// Options for the suspend phase.
#[derive(Debug, Clone)]
pub struct SuspendOptions {
    /// Persist the contract graph inside `SuspendedQuery` (paper §3.3,
    /// "Suspend During or After Resume"): with it, a resumed query can be
    /// re-suspended immediately with full flexibility; without it, the
    /// graph re-forms gradually as execution continues, and early
    /// re-suspensions fall back to DumpState-heavy plans. Persisting costs
    /// a few hundred bytes — the default.
    pub persist_graph: bool,
}

impl Default for SuspendOptions {
    fn default() -> Self {
        Self {
            persist_graph: true,
        }
    }
}

/// A live query execution.
pub struct QueryExecution {
    db: Arc<Database>,
    ctx: ExecContext,
    root: Box<dyn Operator>,
    spec: PlanSpec,
    topology: PlanTopology,
    tuples_emitted: u64,
    finished: bool,
}

impl QueryExecution {
    /// Build and open a fresh execution of `spec` (the execute phase
    /// begins; stateful operators create their initial checkpoints).
    pub fn start(db: Arc<Database>, spec: PlanSpec) -> Result<Self> {
        Self::start_inner(db, spec, true)
    }

    /// Like [`QueryExecution::start`] but with checkpointing disabled —
    /// the ablation baseline for the paper's "negligible overhead during
    /// execution" claim. Only all-DumpState suspends remain possible.
    pub fn start_without_checkpointing(db: Arc<Database>, spec: PlanSpec) -> Result<Self> {
        Self::start_inner(db, spec, false)
    }

    /// Like [`QueryExecution::start`] with explicit
    /// [`crate::plan::BuildOptions`] (ablation toggles such as disabling
    /// contract migration).
    pub fn start_with_build_options(
        db: Arc<Database>,
        spec: PlanSpec,
        options: crate::plan::BuildOptions,
    ) -> Result<Self> {
        db.ledger().set_phase(Phase::Execute);
        let built = crate::plan::build_plan_with(&db, &spec, options)?;
        let mut exec = Self {
            ctx: ExecContext::new(db.clone()),
            db,
            root: built.root,
            spec,
            topology: built.topology,
            tuples_emitted: 0,
            finished: false,
        };
        exec.root.open(&mut exec.ctx)?;
        Ok(exec)
    }

    fn start_inner(db: Arc<Database>, spec: PlanSpec, checkpoints: bool) -> Result<Self> {
        db.ledger().set_phase(Phase::Execute);
        let built = build_plan(&db, &spec)?;
        let mut exec = Self {
            ctx: ExecContext::new(db.clone()),
            db,
            root: built.root,
            spec,
            topology: built.topology,
            tuples_emitted: 0,
            finished: false,
        };
        exec.ctx.checkpoints_enabled = checkpoints;
        exec.root.open(&mut exec.ctx)?;
        Ok(exec)
    }

    /// The plan's output schema.
    pub fn schema(&self) -> &Schema {
        self.root.schema()
    }

    /// The plan topology.
    pub fn topology(&self) -> &PlanTopology {
        &self.topology
    }

    /// Shared execution context (contract graph, work table, ...).
    pub fn ctx(&self) -> &ExecContext {
        &self.ctx
    }

    /// Number of result tuples delivered so far (across suspensions).
    pub fn tuples_emitted(&self) -> u64 {
        self.tuples_emitted
    }

    /// Install a deterministic suspend trigger (experiments).
    pub fn set_trigger(&mut self, trigger: Option<SuspendTrigger>) {
        self.ctx.set_trigger(trigger);
    }

    /// Raise a suspend request (the paper's suspend exception).
    pub fn request_suspend(&mut self) {
        self.ctx.request_suspend();
    }

    /// Pull the next output tuple.
    pub fn next(&mut self) -> Result<Poll> {
        if self.finished {
            return Ok(Poll::Done);
        }
        let out = self.root.next(&mut self.ctx)?;
        match &out {
            Poll::Tuple(_) => self.tuples_emitted += 1,
            Poll::Done => self.finished = true,
            Poll::Suspended => {}
        }
        Ok(out)
    }

    /// Run until completion or suspension. Returns the tuples produced in
    /// this stretch and whether the query finished.
    pub fn run(&mut self) -> Result<(Vec<Tuple>, bool)> {
        let mut out = Vec::new();
        loop {
            match self.next()? {
                Poll::Tuple(t) => out.push(t),
                Poll::Done => return Ok((out, true)),
                Poll::Suspended => return Ok((out, false)),
            }
        }
    }

    /// Run to completion, failing if a suspend request interrupts.
    pub fn run_to_completion(&mut self) -> Result<Vec<Tuple>> {
        let (tuples, done) = self.run()?;
        if !done {
            return Err(StorageError::invalid(
                "query suspended during run_to_completion",
            ));
        }
        Ok(tuples)
    }

    /// Snapshot the optimizer inputs (per-operator statistics + topology +
    /// work table). Public so experiments can inspect the problem.
    pub fn suspend_problem(&self) -> SuspendProblem {
        let mut inputs: BTreeMap<_, OpSuspendInputs> = BTreeMap::new();
        self.root.visit(&mut |op: &dyn Operator| {
            inputs.insert(op.op_id(), op.suspend_inputs());
        });
        SuspendProblem {
            topo: self.topology.clone(),
            model: *self.db.ledger().model(),
            inputs,
            work: self.ctx.work.snapshot(),
        }
    }

    /// Carry out the suspend phase under `policy`, consuming the
    /// execution. All in-memory state is released; the returned handle
    /// resumes the query later (or elsewhere).
    pub fn suspend(self, policy: &SuspendPolicy) -> Result<SuspendedHandle> {
        self.suspend_with(policy, &SuspendOptions::default())
    }

    /// [`QueryExecution::suspend`] with explicit [`SuspendOptions`].
    pub fn suspend_with(
        mut self,
        policy: &SuspendPolicy,
        options: &SuspendOptions,
    ) -> Result<SuspendedHandle> {
        self.db.ledger().set_phase(Phase::Suspend);
        let problem = self.suspend_problem();
        let report = SuspendOptimizer::choose(policy, &problem, &self.ctx.graph)?;

        let mut sq = SuspendedQuery {
            plan_bytes: self.spec.encode_to_vec(),
            suspend_plan: report.plan.clone(),
            tuples_emitted: self.tuples_emitted,
            graph_bytes: options
                .persist_graph
                .then(|| self.ctx.graph.encode_to_vec()),
            work_snapshot: self.ctx.work.snapshot().into_iter().collect(),
            ..Default::default()
        };
        self.root
            .suspend(&mut self.ctx, SuspendMode::Current, &report.plan, &mut sq)?;
        let blob = sq.save(self.db.blobs())?;
        self.root.close(&mut self.ctx)?;
        self.db.ledger().set_phase(Phase::Execute);
        Ok(SuspendedHandle { blob, report })
    }

    /// Resume a suspended query: read `SuspendedQuery`, rebuild the plan,
    /// and reconstruct all operator state (the resume phase). The returned
    /// execution continues exactly after the last pre-suspend tuple.
    pub fn resume(db: Arc<Database>, handle: &SuspendedHandle) -> Result<Self> {
        Self::resume_from_blob(db, handle.blob)
    }

    /// Resume from a raw blob id (e.g. in a fresh process).
    pub fn resume_from_blob(db: Arc<Database>, blob: BlobId) -> Result<Self> {
        db.ledger().set_phase(Phase::Resume);
        let sq = SuspendedQuery::load(db.blobs(), blob)?;
        let spec = PlanSpec::decode_from_slice(&sq.plan_bytes)?;
        let built = build_plan(&db, &spec)?;
        let mut ctx = ExecContext::new(db.clone());
        if let Some(gb) = &sq.graph_bytes {
            ctx.graph = ContractGraph::decode_from_slice(gb)?;
        }
        ctx.work.restore(sq.work_snapshot.iter().copied());
        let mut exec = Self {
            db,
            ctx,
            root: built.root,
            spec,
            topology: built.topology,
            tuples_emitted: sq.tuples_emitted,
            finished: false,
        };
        exec.root.resume(&mut exec.ctx, &sq)?;
        exec.db.ledger().set_phase(Phase::Execute);
        Ok(exec)
    }
}
