//! The query lifecycle driver (paper §2, Figure 3): execute → suspend →
//! resume → continue.
//!
//! `QueryExecution` owns a built plan and its execution context. During
//! the execute phase, `next()` pulls tuples from the root; when a suspend
//! request lands (via [`crate::context::SuspendTrigger`] or
//! [`QueryExecution::request_suspend`]), `Poll::Suspended` bubbles up and
//! the caller invokes [`QueryExecution::suspend`], which:
//!
//! 1. switches the cost ledger to the suspend phase,
//! 2. snapshots per-operator statistics and asks the
//!    [`SuspendPolicy`] for a suspend plan (the online MIP optimizer, a
//!    purist policy, or a fixed plan),
//! 3. carries the plan out by walking the tree with `Suspend()` /
//!    `Suspend(Ctr)` calls,
//! 4. serializes the `SuspendedQuery` structure (plus the contract graph
//!    and the work snapshot) to the blob store, and
//! 5. drops the whole tree — all memory is released.
//!
//! [`QueryExecution::resume`] reverses the process; the resumed execution
//! delivers exactly the tuples following the last pre-suspend output.

use crate::context::{DumpWatchdog, ExecContext, SuspendTrigger, WorkUnitObserver};
use crate::operator::{BatchPoll, Operator, Poll, SuspendMode};
use crate::plan::{build_plan, PlanSpec};
use crate::recovery::{
    clear_manifest_named, commit_manifest_named, read_manifest_named, with_retries, ResumeError,
    SuspendManifest, SUSPEND_MANIFEST,
};
use crate::writers::{DumpPipeline, ResumePool};
use qsr_core::{
    ContractGraph, OpId, OpSuspendInputs, OptimizeReport, PlanTopology, SolveBudget, Strategy,
    SuspendOptimizer, SuspendPlan, SuspendPolicy, SuspendProblem, SuspendedQuery,
};
use qsr_storage::{
    env_flag, env_parse, is_delta_frame, pages_for_bytes, BlobId, Database, Decode, DeltaDump,
    Encode, FileId, Phase, Result, Schema, StorageError, TraceEvent, Tuple,
};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Handle to a suspended query on disk.
#[derive(Debug, Clone)]
pub struct SuspendedHandle {
    /// Blob holding the serialized `SuspendedQuery`.
    pub blob: BlobId,
    /// The optimizer's report (chosen plan, estimated costs, solve time).
    pub report: OptimizeReport,
    /// Generation number the suspend committed under (see
    /// [`SuspendManifest`]).
    pub generation: u64,
    /// The degradation-ladder rung that actually committed.
    pub rung: Rung,
}

/// Options for the suspend phase.
#[derive(Debug, Clone)]
pub struct SuspendOptions {
    /// Persist the contract graph inside `SuspendedQuery` (paper §3.3,
    /// "Suspend During or After Resume"): with it, a resumed query can be
    /// re-suspended immediately with full flexibility; without it, the
    /// graph re-forms gradually as execution continues, and early
    /// re-suspensions fall back to DumpState-heavy plans. Persisting costs
    /// a few hundred bytes — the default.
    pub persist_graph: bool,
    /// Number of background writer threads flushing dump blobs (and dirty
    /// cached pages) during the suspend phase. `0` writes everything
    /// serially on the suspending thread — the paper's baseline. Either
    /// way every byte is durable before the manifest rename commits the
    /// suspend; the pipeline only overlaps the writes.
    pub dump_writers: usize,
    /// Suspend I/O deadline in simulated cost units. When set, each
    /// degradation-ladder rung runs under a live watchdog: a rung whose
    /// dump I/O would overrun the deadline fails with a typed
    /// [`StorageError::DeadlineExceeded`] and the driver steps down to the
    /// next, cheaper rung. It also feeds the optimizer's suspend-budget
    /// constraint when the policy does not carry one (admission control:
    /// plans are chosen to fit the deadline before any I/O is spent).
    /// `None` disables both — the pre-ladder behavior.
    pub deadline: Option<f64>,
    /// Node/pivot budget for the anytime MIP solver. `None` uses
    /// [`SuspendOptimizer::default_solve_budget`] (the `QSR_SOLVE_NODES`
    /// environment knob, or the solver default).
    pub solve_budget: Option<SolveBudget>,
    /// Number of background reader threads prefetching operator dump
    /// blobs during resume (the read-side mirror of `dump_writers`). `0`
    /// reads every blob serially at the point of consumption — the
    /// paper's baseline. Prefetching charges the identical
    /// [`Phase::Resume`] ledger I/O (the blob set is deduplicated, so
    /// each dump is read exactly once either way) and read *errors* are
    /// replayed when the owning operator consumes the blob, so the
    /// [`ResumeError`] taxonomy and fallback substitution are unchanged.
    pub resume_workers: usize,
    /// Delta checkpoints: when enabled, an operator whose state was
    /// materialized during resume dumps only the pages that changed since,
    /// as a delta frame chained to the previous generation's blob
    /// ([`qsr_storage::DeltaDump`]). Chains are bounded by
    /// [`qsr_storage::COMPACT_CHAIN_LEN`] — a chain at the cap is folded
    /// back into a full dump (crash-safe: the fold commits through the
    /// same manifest swap as any suspend). `None` defers to the
    /// `QSR_DELTA` environment knob (`1`/`0`), default off — off is
    /// bit-identical to the pre-delta write path.
    pub delta: Option<bool>,
    /// Keep the last N suspend generations resumable (retention). The
    /// newest generation is always the one the manifest points at; up to
    /// N−1 predecessors ride along in [`SuspendManifest::retained`] and
    /// survive GC, together with every blob their delta chains reference.
    /// `None` defers to `QSR_KEEP_GENERATIONS`, default 1 (today's
    /// behavior: only the committed generation survives). Values are
    /// clamped to ≥ 1.
    pub keep_generations: Option<usize>,
}

impl Default for SuspendOptions {
    fn default() -> Self {
        Self {
            persist_graph: true,
            dump_writers: 4,
            deadline: None,
            solve_budget: None,
            resume_workers: 0,
            delta: None,
            keep_generations: None,
        }
    }
}

/// Parse a non-negative integer environment knob. Unset means `default`;
/// set-but-unparsable is a hard error — a mistyped knob must not silently
/// fall back to a different execution mode.
fn env_usize(name: &str, default: usize) -> Result<usize> {
    match std::env::var(name) {
        Ok(v) => v.trim().parse::<usize>().map_err(|_| {
            StorageError::invalid(format!(
                "{name} must be a non-negative integer, got {v:?}"
            ))
        }),
        Err(_) => Ok(default),
    }
}

/// One rung of the suspend degradation ladder, in descending order of
/// plan quality: the requested policy, the LP-rounded heuristic, the
/// all-DumpState strawman, the all-GoBack minimum. Each rung is
/// individually crash-safe (the manifest commits only at the end of a
/// fully successful rung); a rung failing with a *non-halting* error —
/// [`StorageError::NoSpace`], [`StorageError::DeadlineExceeded`], an
/// exhausted transient — hands over to the next rung, which salvages the
/// failed rung's checksum-valid dump blobs instead of rewriting them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rung {
    /// The caller's policy, solved under the anytime budget.
    Requested,
    /// One LP, zero branch-and-bound nodes, forced rounding.
    HeuristicRounded,
    /// Every operator dumps.
    AllDump,
    /// Every operator goes back; near-zero dump I/O.
    AllGoBack,
}

impl Rung {
    /// Stable label for logs and benchmark output.
    pub fn name(&self) -> &'static str {
        match self {
            Rung::Requested => "requested",
            Rung::HeuristicRounded => "heuristic-rounded",
            Rung::AllDump => "all-dump",
            Rung::AllGoBack => "all-goback",
        }
    }
    /// The ladder for `policy`: start at the requested plan, then only
    /// strictly cheaper rungs (never climb back up), ending at AllGoBack.
    fn ladder(policy: &SuspendPolicy) -> Vec<Rung> {
        match policy {
            SuspendPolicy::Optimized { .. } => vec![
                Rung::Requested,
                Rung::HeuristicRounded,
                Rung::AllDump,
                Rung::AllGoBack,
            ],
            SuspendPolicy::Fixed(_) => vec![Rung::Requested, Rung::AllDump, Rung::AllGoBack],
            SuspendPolicy::AllDump => vec![Rung::Requested, Rung::AllGoBack],
            SuspendPolicy::AllGoBack => vec![Rung::Requested],
        }
    }
}

/// A live query execution.
pub struct QueryExecution {
    db: Arc<Database>,
    ctx: ExecContext,
    root: Box<dyn Operator>,
    spec: PlanSpec,
    topology: PlanTopology,
    tuples_emitted: u64,
    finished: bool,
    /// Rows per batch when [`QueryExecution::run`] drives the plan through
    /// the vectorized `next_batch` interface; `0` (the default) keeps the
    /// classic tuple-at-a-time pull. Seeded from the `QSR_BATCH_SIZE`
    /// environment knob at start and resume.
    batch_size: usize,
    /// Sidecar name this execution's suspends commit under. Defaults to
    /// the global [`SUSPEND_MANIFEST`]; the multi-session server assigns
    /// each session its own name so concurrent suspended sessions never
    /// garbage-collect each other's generations.
    manifest_name: String,
}

impl QueryExecution {
    /// Build and open a fresh execution of `spec` (the execute phase
    /// begins; stateful operators create their initial checkpoints).
    pub fn start(db: Arc<Database>, spec: PlanSpec) -> Result<Self> {
        Self::start_inner(db, spec, true)
    }

    /// Like [`QueryExecution::start`] but with checkpointing disabled —
    /// the ablation baseline for the paper's "negligible overhead during
    /// execution" claim. Only all-DumpState suspends remain possible.
    pub fn start_without_checkpointing(db: Arc<Database>, spec: PlanSpec) -> Result<Self> {
        Self::start_inner(db, spec, false)
    }

    /// Like [`QueryExecution::start`] with explicit
    /// [`crate::plan::BuildOptions`] (ablation toggles such as disabling
    /// contract migration).
    pub fn start_with_build_options(
        db: Arc<Database>,
        spec: PlanSpec,
        options: crate::plan::BuildOptions,
    ) -> Result<Self> {
        db.ledger().set_phase(Phase::Execute);
        let built = crate::plan::build_plan_with(&db, &spec, options)?;
        let mut exec = Self {
            ctx: ExecContext::new(db.clone()),
            db,
            root: built.root,
            spec,
            topology: built.topology,
            tuples_emitted: 0,
            finished: false,
            batch_size: env_usize("QSR_BATCH_SIZE", 0)?,
            manifest_name: SUSPEND_MANIFEST.to_string(),
        };
        exec.root.open(&mut exec.ctx)?;
        Ok(exec)
    }

    fn start_inner(db: Arc<Database>, spec: PlanSpec, checkpoints: bool) -> Result<Self> {
        db.ledger().set_phase(Phase::Execute);
        let built = build_plan(&db, &spec)?;
        let mut exec = Self {
            ctx: ExecContext::new(db.clone()),
            db,
            root: built.root,
            spec,
            topology: built.topology,
            tuples_emitted: 0,
            finished: false,
            batch_size: env_usize("QSR_BATCH_SIZE", 0)?,
            manifest_name: SUSPEND_MANIFEST.to_string(),
        };
        exec.ctx.checkpoints_enabled = checkpoints;
        exec.root.open(&mut exec.ctx)?;
        Ok(exec)
    }

    /// The plan's output schema.
    pub fn schema(&self) -> &Schema {
        self.root.schema()
    }

    /// The plan topology.
    pub fn topology(&self) -> &PlanTopology {
        &self.topology
    }

    /// Shared execution context (contract graph, work table, ...).
    pub fn ctx(&self) -> &ExecContext {
        &self.ctx
    }

    /// Number of result tuples delivered so far (across suspensions).
    pub fn tuples_emitted(&self) -> u64 {
        self.tuples_emitted
    }

    /// Install a deterministic suspend trigger (experiments).
    pub fn set_trigger(&mut self, trigger: Option<SuspendTrigger>) {
        self.ctx.set_trigger(trigger);
    }

    /// Raise a suspend request (the paper's suspend exception).
    pub fn request_suspend(&mut self) {
        self.ctx.request_suspend();
    }

    /// Withdraw a pending suspend request (a scheduler that decided to
    /// preempt a *different* victim retracts the request it raised here).
    pub fn clear_suspend_request(&mut self) {
        self.ctx.clear_suspend_request();
    }

    /// The manifest sidecar name this execution's suspends commit under.
    pub fn manifest_name(&self) -> &str {
        &self.manifest_name
    }

    /// Commit future suspends of this execution under `name` instead of
    /// the global [`SUSPEND_MANIFEST`]. Per-session names let N suspended
    /// sessions coexist in one database directory, each with its own
    /// generation chain.
    pub fn set_manifest_name(&mut self, name: impl Into<String>) {
        self.manifest_name = name.into();
    }

    /// Install a work-unit observer (oracle harness hook): called on every
    /// tick; returning `true` raises a suspend request at that boundary.
    pub fn set_work_unit_observer(&mut self, obs: Option<Box<dyn WorkUnitObserver>>) {
        self.ctx.set_work_unit_observer(obs);
    }

    /// Work units ticked by this execution segment (restarts at 0 after
    /// resume, which builds a fresh context).
    pub fn work_units(&self) -> u64 {
        self.ctx.work_units()
    }

    /// Pull the next output tuple.
    #[allow(clippy::should_implement_trait)] // fallible pull, not an Iterator
    pub fn next(&mut self) -> Result<Poll> {
        if self.finished {
            return Ok(Poll::Done);
        }
        let out = self.root.next(&mut self.ctx)?;
        match &out {
            Poll::Tuple(_) => self.tuples_emitted += 1,
            Poll::Done => self.finished = true,
            Poll::Suspended => {}
        }
        Ok(out)
    }

    /// Pull the next batch of up to `max` output rows through the
    /// vectorized interface. Operators without a native `next_batch`
    /// transparently adapt their tuple loop, so this works on any plan.
    pub fn next_batch(&mut self, max: usize) -> Result<BatchPoll> {
        if self.finished {
            return Ok(BatchPoll::Done);
        }
        let out = self.root.next_batch(&mut self.ctx, max)?;
        match &out {
            BatchPoll::Batch(b) => self.tuples_emitted += b.live_len() as u64,
            BatchPoll::Done => self.finished = true,
            BatchPoll::Suspended => {}
        }
        Ok(out)
    }

    /// The batch size [`QueryExecution::run`] drives the plan with
    /// (`0` = tuple-at-a-time).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Override the vectorized batch size (`0` disables batch mode). The
    /// knob only changes how rows move between operators at execution
    /// time; outputs, suspend records, and charged ledgers are identical
    /// either way.
    pub fn set_batch_size(&mut self, n: usize) {
        self.batch_size = n;
    }

    /// Run until completion or suspension. Returns the tuples produced in
    /// this stretch and whether the query finished. With a non-zero
    /// [`QueryExecution::batch_size`], rows move through the plan in
    /// column batches and are torn back into tuples only here at the top.
    pub fn run(&mut self) -> Result<(Vec<Tuple>, bool)> {
        let mut out = Vec::new();
        if self.batch_size > 0 {
            loop {
                match self.next_batch(self.batch_size)? {
                    BatchPoll::Batch(b) => out.extend(b.to_tuples()),
                    BatchPoll::Done => return Ok((out, true)),
                    BatchPoll::Suspended => return Ok((out, false)),
                }
            }
        }
        loop {
            match self.next()? {
                Poll::Tuple(t) => out.push(t),
                Poll::Done => return Ok((out, true)),
                Poll::Suspended => return Ok((out, false)),
            }
        }
    }

    /// Run to completion, failing if a suspend request interrupts.
    pub fn run_to_completion(&mut self) -> Result<Vec<Tuple>> {
        let (tuples, done) = self.run()?;
        if !done {
            return Err(StorageError::invalid(
                "query suspended during run_to_completion",
            ));
        }
        Ok(tuples)
    }

    /// Snapshot the optimizer inputs (per-operator statistics + topology +
    /// work table). Public so experiments can inspect the problem.
    pub fn suspend_problem(&self) -> SuspendProblem {
        let mut inputs: BTreeMap<_, OpSuspendInputs> = BTreeMap::new();
        self.root.visit(&mut |op: &dyn Operator| {
            inputs.insert(op.op_id(), op.suspend_inputs());
        });
        SuspendProblem {
            topo: self.topology.clone(),
            model: *self.db.ledger().model(),
            inputs,
            work: self.ctx.work.snapshot(),
        }
    }

    /// Carry out the suspend phase under `policy`, consuming the
    /// execution. All in-memory state is released; the returned handle
    /// resumes the query later (or elsewhere).
    pub fn suspend(self, policy: &SuspendPolicy) -> Result<SuspendedHandle> {
        self.suspend_with(policy, &SuspendOptions::default())
    }

    /// [`QueryExecution::suspend`] with explicit [`SuspendOptions`].
    ///
    /// The suspend commits atomically: dump blobs and the serialized
    /// `SuspendedQuery` are written and fsynced first, then a
    /// generation-numbered [`SuspendManifest`] is swapped into place with
    /// an atomic rename. A crash at any point before the rename leaves the
    /// previous suspend (or a clean "no suspend" state) fully intact; a
    /// crash after it leaves the new suspend committed. Only after the
    /// commit are the previous generation's blobs garbage-collected.
    ///
    /// Under resource pressure — a disk quota ([`StorageError::NoSpace`]),
    /// an I/O deadline ([`SuspendOptions::deadline`]), a permanent device
    /// fault — the attempt walks a **degradation ladder** ([`Rung`]):
    /// requested plan → LP-rounded heuristic → all-DumpState → all-GoBack
    /// → typed clean abort. Each rung is individually crash-safe; a failed
    /// rung's checksum-valid dump blobs are salvaged and reused by the
    /// next rung, orphaned ones deleted. Every rung after the first
    /// charges its I/O to [`Phase::Fallback`], keeping the committed
    /// suspend's `Phase::Suspend` spend comparable to the budget. Halting
    /// faults (crash, torn write) return immediately — the process is
    /// dead and recovery owns the directory.
    pub fn suspend_with(
        mut self,
        policy: &SuspendPolicy,
        options: &SuspendOptions,
    ) -> Result<SuspendedHandle> {
        self.db.ledger().set_phase(Phase::Suspend);
        let problem = self.suspend_problem();
        let solve_budget = options
            .solve_budget
            .unwrap_or_else(SuspendOptimizer::default_solve_budget);

        // The previous generation (if any) seeds the new generation number
        // and is garbage-collected after the new manifest commits. An
        // unreadable old manifest only disables GC; it cannot block a new
        // suspend (its blobs leak, its manifest is overwritten).
        let prev = read_manifest_named(&self.db, &self.manifest_name)
            .ok()
            .flatten();
        let delta_on = options
            .delta
            .unwrap_or_else(|| env_flag("QSR_DELTA").unwrap_or(false));
        let keep = options
            .keep_generations
            .unwrap_or_else(|| env_parse::<usize>("QSR_KEEP_GENERATIONS").unwrap_or(1))
            .max(1);

        let rungs = Rung::ladder(policy);
        let last = rungs.len() - 1;
        let mut last_err: Option<StorageError> = None;
        for (i, rung) in rungs.iter().enumerate() {
            // Only the first rung is the budgeted suspend proper; all
            // insurance I/O below it is kept out of `Phase::Suspend`.
            let phase = if i == 0 { Phase::Suspend } else { Phase::Fallback };
            self.db.ledger().set_phase(phase);
            self.db
                .ledger()
                .trace(|| TraceEvent::RungStart { rung: rung.name() });
            let report = match self.rung_report(rung, policy, &problem, options, &solve_budget) {
                Ok(r) => r,
                Err(e) => {
                    self.db.ledger().trace(|| TraceEvent::RungAbort {
                        rung: rung.name(),
                        reason: format!("optimize failed: {e}"),
                    });
                    if self.halted() {
                        return Err(e);
                    }
                    last_err = Some(e);
                    continue;
                }
            };
            self.db.ledger().trace(|| TraceEvent::RungPlan {
                rung: rung.name(),
                est_suspend: report.est_suspend_cost,
                est_resume: report.est_resume_cost,
            });
            // Admission control: when the plan's own estimate already
            // exceeds the deadline there is no point paying for its dumps
            // — skip straight to a cheaper rung. The final rung is always
            // attempted; the estimate is a model, not a measurement.
            if let Some(d) = options.deadline {
                if i < last && report.est_suspend_cost > d {
                    self.db.ledger().trace(|| TraceEvent::RungAbort {
                        rung: rung.name(),
                        reason: format!(
                            "admission: estimated suspend cost {:.3} exceeds deadline {:.3}",
                            report.est_suspend_cost, d
                        ),
                    });
                    last_err = Some(StorageError::DeadlineExceeded {
                        spent: report.est_suspend_cost,
                        budget: d,
                    });
                    continue;
                }
            }
            if let Some(budget) = options.deadline {
                self.ctx.set_watchdog(Some(DumpWatchdog {
                    budget,
                    baseline: self.db.ledger().snapshot(),
                }));
            }
            // The dump pipeline writes straight to the local blob store;
            // a non-local backend takes the serial path so every byte
            // goes through (and is accounted to) the backend.
            let use_pipeline =
                i == 0 && options.dump_writers > 0 && self.db.backend().is_local();
            let attempt =
                self.attempt_rung(&report, options, use_pipeline, phase, prev.as_ref(), delta_on, keep);
            self.ctx.set_watchdog(None);
            match attempt {
                Ok((mut handle, sq, committed)) => {
                    handle.rung = *rung;
                    self.db.ledger().trace(|| TraceEvent::RungCommit {
                        rung: rung.name(),
                        generation: handle.generation,
                    });
                    // Commit point passed. Reclaim in strictly safe order:
                    // salvage orphans first (never referenced by any
                    // manifest), then the superseded generations that fell
                    // off the retention window.
                    self.db.ledger().set_phase(Phase::Fallback);
                    let backend = self.db.backend();
                    for id in self.ctx.take_salvage().into_values() {
                        let _ = backend.delete_blob(id);
                    }
                    if let Some(old) = prev {
                        Self::gc_generations(&self.db, &old, &sq, &committed);
                    }
                    self.root.close(&mut self.ctx)?;
                    self.db.ledger().set_phase(Phase::Execute);
                    return Ok(handle);
                }
                Err(failure) => {
                    let (e, partial) = *failure;
                    self.db.ledger().trace(|| TraceEvent::RungAbort {
                        rung: rung.name(),
                        reason: e.to_string(),
                    });
                    if self.halted() {
                        return Err(e);
                    }
                    // Non-halting failure: salvage what this rung already
                    // paid for, then step down.
                    self.db.ledger().set_phase(Phase::Fallback);
                    self.salvage_rung(&partial);
                    last_err = Some(e);
                }
            }
        }

        // Clean abort: every rung failed. The previous generation's
        // manifest was never touched (commit happens only at the end of a
        // successful rung), so on-disk state is exactly the pre-suspend
        // state; delete the salvaged blobs nothing will ever reference and
        // surface the last rung's typed error.
        self.db.ledger().set_phase(Phase::Fallback);
        let backend = self.db.backend();
        for id in self.ctx.take_salvage().into_values() {
            let _ = backend.delete_blob(id);
        }
        let _ = self.root.close(&mut self.ctx);
        self.db.ledger().set_phase(Phase::Execute);
        let err = last_err
            .unwrap_or_else(|| StorageError::invalid("suspend aborted: no ladder rung available"));
        // Freeze the flight-recorder tail on the typed clean abort so the
        // events leading up to it survive alongside the error.
        if let Some(t) = self.db.tracer() {
            t.record_failure(&format!("suspend aborted cleanly: {err}"));
        }
        Err(err)
    }

    /// True when the fault injector has halted all I/O (a crash or torn
    /// write fired): the simulated process is dead, no cleanup can run,
    /// and recovery owns the directory.
    fn halted(&self) -> bool {
        self.db
            .disk()
            .fault_injector()
            .is_some_and(|fi| fi.halted())
    }

    /// Choose the plan for one ladder rung. The requested rung honors the
    /// caller's policy (with the deadline as suspend-budget constraint
    /// when the policy carries none); lower rungs use progressively
    /// cheaper fixed strategies.
    fn rung_report(
        &self,
        rung: &Rung,
        policy: &SuspendPolicy,
        problem: &SuspendProblem,
        options: &SuspendOptions,
        solve_budget: &SolveBudget,
    ) -> Result<OptimizeReport> {
        let budget_of = |b: &Option<f64>| b.or(options.deadline);
        let tracer = self.db.tracer();
        let tracer = tracer.as_deref();
        match rung {
            Rung::Requested => {
                let effective = match policy {
                    SuspendPolicy::Optimized { budget } => SuspendPolicy::Optimized {
                        budget: budget_of(budget),
                    },
                    other => other.clone(),
                };
                SuspendOptimizer::choose_with_budget_traced(
                    &effective,
                    problem,
                    &self.ctx.graph,
                    solve_budget,
                    tracer,
                )
            }
            Rung::HeuristicRounded => {
                let budget = match policy {
                    SuspendPolicy::Optimized { budget } => budget_of(budget),
                    _ => options.deadline,
                };
                SuspendOptimizer::heuristic_rounded_traced(problem, &self.ctx.graph, budget, tracer)
            }
            Rung::AllDump => SuspendOptimizer::choose_traced(
                &SuspendPolicy::AllDump,
                problem,
                &self.ctx.graph,
                tracer,
            ),
            Rung::AllGoBack => SuspendOptimizer::choose_traced(
                &SuspendPolicy::AllGoBack,
                problem,
                &self.ctx.graph,
                tracer,
            ),
        }
    }

    /// Carry out one ladder rung end to end: walk the tree under the
    /// rung's plan, record fallbacks, persist the `SuspendedQuery`, sync
    /// everything it references, and commit the manifest. On failure the
    /// partial [`SuspendedQuery`] comes back with the error so the caller
    /// can salvage the dump blobs it references.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn attempt_rung(
        &mut self,
        report: &OptimizeReport,
        options: &SuspendOptions,
        use_pipeline: bool,
        phase: Phase,
        prev: Option<&SuspendManifest>,
        delta_on: bool,
        keep: usize,
    ) -> std::result::Result<
        (SuspendedHandle, SuspendedQuery, SuspendManifest),
        Box<(StorageError, SuspendedQuery)>,
    > {
        // Delta frames may only be emitted by the rung's primary dump
        // walk; anything recorded by an earlier (failed) rung is stale.
        self.ctx.set_delta_enabled(delta_on);
        let _ = self.ctx.take_delta_emitted();
        let mut sq = SuspendedQuery {
            plan_bytes: self.spec.encode_to_vec(),
            suspend_plan: report.plan.clone(),
            tuples_emitted: self.tuples_emitted,
            graph_bytes: options
                .persist_graph
                .then(|| self.ctx.graph.encode_to_vec()),
            work_snapshot: self.ctx.work.snapshot().into_iter().collect(),
            ..Default::default()
        };

        // With dump_writers > 0, operator dump blobs are handed to a
        // bounded pool of background writers instead of being written
        // inline, overlapping the dumps of independent operators. The
        // pipeline is joined before the manifest rename below, so the
        // crash-safety protocol is unchanged. Retry rungs always write
        // serially: they interleave with salvage reuse and run on the
        // emergency path where predictability beats overlap.
        let pipeline = use_pipeline.then(|| DumpPipeline::new(&self.db, options.dump_writers));
        self.ctx.set_dump_pipeline(pipeline.clone());
        let suspended = self
            .root
            .suspend(&mut self.ctx, SuspendMode::Current, &report.plan, &mut sq);
        // Detach before the fallback shadow passes: they delete rejected
        // scratch dumps, which must not still be in flight on a worker.
        self.ctx.take_dump_pipeline();
        if let Err(e) = suspended {
            if let Some(p) = &pipeline {
                let _ = p.finish();
            }
            return Err(Box::new((e, sq)));
        }
        if let Some(p) = &pipeline {
            if let Err(e) = p.finish() {
                return Err(Box::new((e, sq)));
            }
        }
        // Harvest the delta chains the dump walk emitted *before* the
        // fallback shadow passes run (their scratch dumps are always full
        // frames and must not disturb the primary records' chains).
        self.ctx.set_delta_enabled(false);
        sq.delta_deps = self.ctx.take_delta_emitted();
        // Fallback insurance is charged to its own phase: the optimizer's
        // suspend-cost estimate budgets the chosen plan, not the
        // best-effort shadow passes that record a dump-free GoBack
        // fallback per dumped operator. Keeping those writes out of
        // `Phase::Suspend` keeps "measured suspend time ≤ budget"
        // meaningful (they still count toward total overhead).
        self.db.ledger().set_phase(Phase::Fallback);
        self.generate_fallbacks(&report.plan, &mut sq);
        self.db.ledger().set_phase(phase);

        let backend = self.db.backend();
        let blob = match backend.put_blob(&sq.encode_to_vec()) {
            Ok(b) => b,
            Err(e) => return Err(Box::new((e, sq))),
        };
        // The serialized SuspendedQuery is the one non-operator page write
        // of a committing rung; journaling it closes the per-phase
        // attribution sum (dump pages + seal pages + this).
        self.db.ledger().trace(|| TraceEvent::MetaWrite {
            label: "suspended-query",
            pages: pages_for_bytes(blob.len as usize) as u64,
        });
        self.db.ledger().trace(|| TraceEvent::BackendPut {
            backend: backend.name(),
            bytes: blob.len,
            pages: pages_for_bytes(blob.len as usize) as u64,
        });

        // Durability barrier: everything the manifest makes reachable must
        // be stable before the rename that commits it. This includes any
        // page still dirty in the shared buffer pool (run files, index
        // pages): resume reopens the database with a fresh pool and reads
        // from disk.
        if let Err(e) = self.sync_rung(&sq, blob) {
            // The just-saved `SuspendedQuery` blob is referenced by
            // nothing yet; reclaim it so a failed rung leaks no files.
            let _ = backend.delete_blob(blob);
            return Err(Box::new((e, sq)));
        }

        let generation = prev.map_or(1, |m| m.generation + 1);
        let mut manifest = SuspendManifest::new(generation, blob);
        manifest.chain_len = sq
            .delta_deps
            .values()
            .map(|chain| chain.len() as u64)
            .max()
            .unwrap_or(0);
        // Retention window: the previous generation (and its own retained
        // tail) slides down one slot; whatever falls past keep−1 entries
        // is collected after commit.
        if let Some(p) = prev {
            manifest.retained.push((p.generation, p.query));
            manifest.retained.extend(p.retained.iter().copied());
            manifest.retained.truncate(keep - 1);
        }
        if let Err(e) = commit_manifest_named(&self.db, &self.manifest_name, &manifest) {
            let _ = backend.delete_blob(blob);
            return Err(Box::new((e, sq)));
        }
        Ok((
            SuspendedHandle {
                blob,
                report: report.clone(),
                generation,
                rung: Rung::Requested, // overwritten by the ladder loop
            },
            sq,
            manifest,
        ))
    }

    /// Flush and fsync everything a rung's manifest would reference.
    fn sync_rung(&self, sq: &SuspendedQuery, blob: BlobId) -> Result<()> {
        let backend = self.db.backend();
        backend.sync_blob(blob)?;
        for rec in sq.records.values().chain(sq.fallbacks.values().flatten()) {
            if let Some(b) = rec.heap_dump {
                backend.sync_blob(b)?;
            }
        }
        for file in self.db.pool().dirty_files() {
            self.db.pool().sync_file(file)?;
        }
        Ok(())
    }

    /// After a rung fails: read back every dump blob its partial
    /// `SuspendedQuery` references. Blobs whose checksum validates go into
    /// the salvage cache — the next rung reuses them byte-for-byte instead
    /// of rewriting; blobs that do not read back cleanly (torn by the
    /// failure) are orphans and deleted immediately. Either way no file
    /// from a failed rung is left unaccounted for.
    fn salvage_rung(&mut self, partial: &SuspendedQuery) {
        let backend = self.db.backend();
        let mut valid = Vec::new();
        for rec in partial
            .records
            .values()
            .chain(partial.fallbacks.values().flatten())
        {
            if let Some(b) = rec.heap_dump {
                match backend.get_blob(b) {
                    Ok(_) => valid.push(b),
                    Err(_) => {
                        let _ = backend.delete_blob(b);
                    }
                }
            }
        }
        self.ctx.add_salvage(valid);
    }

    /// For each operator whose primary record dumps heap state, check
    /// whether its contract chain admits GoBack-to-self and, if so, run a
    /// *shadow* suspend pass over its subtree under a plan that flips only
    /// that operator to GoBack. The resulting record set is stored in
    /// `sq.fallbacks[op]`; resume substitutes it when the dump blob turns
    /// out to be missing or corrupt.
    ///
    /// Fallbacks are best-effort: a failure, an inadmissible chain, or a
    /// fallback that would itself need a dump blob simply skips that
    /// operator (the suspend stays correct — the fallback is optional).
    fn generate_fallbacks(&mut self, plan: &SuspendPlan, sq: &mut SuspendedQuery) {
        let candidates: Vec<OpId> = sq
            .records
            .values()
            .filter(|r| matches!(r.strategy, Strategy::Dump) && r.heap_dump.is_some())
            .map(|r| r.op)
            .collect();
        for op in candidates {
            // Admissible only with a live non-barrier checkpoint whose
            // contracts cover every rebuild child.
            if self.ctx.graph.resolve_chain(&self.topology, op, op).is_none() {
                continue;
            }
            let Some(latest) = self.ctx.graph.latest_ckpt(op) else {
                continue;
            };
            let covered = self
                .topology
                .node(op)
                .rebuild_children
                .iter()
                .all(|&c| self.ctx.graph.contract_from(latest, c).is_some());
            if !covered {
                continue;
            }

            let mut fplan = plan.clone();
            fplan.set(op, Strategy::GoBack { to: op });
            let mut scratch = SuspendedQuery::default();
            let ctx = &mut self.ctx;
            let mut outcome: Result<bool> = Ok(false);
            self.root.visit_mut(&mut |node: &mut dyn Operator| {
                if node.op_id() == op && matches!(outcome, Ok(false)) {
                    outcome = node
                        .suspend(ctx, SuspendMode::Current, &fplan, &mut scratch)
                        .map(|()| true);
                }
            });
            // A usable fallback must be dump-free — its whole point is to
            // survive without blobs.
            let dump_free = scratch.records.values().all(|r| r.heap_dump.is_none());
            match outcome {
                Ok(true) if dump_free && !scratch.records.is_empty() => {
                    sq.fallbacks
                        .insert(op, scratch.records.into_values().collect());
                }
                _ => {
                    for r in scratch.records.values() {
                        if let Some(b) = r.heap_dump {
                            let _ = self.db.backend().delete_blob(b);
                        }
                    }
                }
            }
        }
    }

    /// Load a `SuspendedQuery` blob through the suspend backend.
    fn load_sq(db: &Database, blob: BlobId) -> Result<SuspendedQuery> {
        SuspendedQuery::decode_from_slice(&db.backend().get_blob(blob)?)
    }

    /// Every file a generation's `SuspendedQuery` pins: record and
    /// fallback dump blobs plus the delta-chain ancestors under them.
    fn sq_files(sq: &SuspendedQuery) -> impl Iterator<Item = FileId> + '_ {
        sq.records
            .values()
            .chain(sq.fallbacks.values().flatten())
            .filter_map(|r| r.heap_dump.map(|b| b.file))
            .chain(sq.delta_deps.values().flatten().map(|b| b.file))
    }

    /// Retention GC after a commit: collect every generation that fell off
    /// the just-committed manifest's retention window, keeping anything
    /// the new generation or a still-retained generation references —
    /// including every blob their delta chains reach, so a live chain is
    /// never broken. Run files referenced through operator aux/control
    /// bytes are never touched — the new generation may share them.
    /// Best-effort: errors are ignored; a crash mid-GC leaks blobs but
    /// never loses committed state.
    fn gc_generations(
        db: &Database,
        old: &SuspendManifest,
        new_sq: &SuspendedQuery,
        committed: &SuspendManifest,
    ) {
        let retained: HashSet<u64> = committed.retained.iter().map(|(g, _)| *g).collect();
        let dropped: Vec<(u64, BlobId)> = std::iter::once((old.generation, old.query))
            .chain(old.retained.iter().copied())
            .filter(|(g, _)| !retained.contains(g))
            .collect();
        if dropped.is_empty() {
            return;
        }
        let mut keep: HashSet<FileId> = Self::sq_files(new_sq).collect();
        for (_, qblob) in &committed.retained {
            keep.insert(qblob.file);
            if let Ok(rsq) = Self::load_sq(db, *qblob) {
                keep.extend(Self::sq_files(&rsq));
            }
        }
        for (generation, qblob) in dropped {
            Self::gc_generation(db, generation, qblob, &keep);
        }
    }

    /// Delete one dropped generation's blobs: records and fallbacks first,
    /// then delta-chain ancestors nothing keeps alive, then the
    /// `SuspendedQuery` blob.
    ///
    /// Ordering invariant: dump blobs are deleted *before* the old
    /// `SuspendedQuery` blob. The old query blob is the only index of the
    /// old generation's dumps — deleting it first and crashing would leak
    /// dumps with no record to re-enumerate them, while this order lets a
    /// future GC pass resume from the surviving query blob. At every
    /// intermediate point the newly committed manifest names the one valid
    /// generation chain.
    fn gc_generation(db: &Database, generation: u64, qblob: BlobId, keep: &HashSet<FileId>) {
        let Ok(old_sq) = Self::load_sq(db, qblob) else {
            return;
        };
        let backend = db.backend();
        let mut deleted = 0u64;
        let mut seen: HashSet<FileId> = HashSet::new();
        for rec in old_sq
            .records
            .values()
            .chain(old_sq.fallbacks.values().flatten())
        {
            if let Some(b) = rec.heap_dump {
                if !keep.contains(&b.file) {
                    seen.insert(b.file);
                    if backend.delete_blob(b).is_ok() {
                        deleted += 1;
                    }
                }
            }
        }
        // Delta ancestors this generation pinned; deduped (a chain shared
        // by several operators lists its blobs once) and skipped when a
        // record delete above already covered the file.
        for b in old_sq.delta_deps.values().flatten() {
            if !keep.contains(&b.file) && seen.insert(b.file) && backend.delete_blob(*b).is_ok() {
                deleted += 1;
            }
        }
        if backend.delete_blob(qblob).is_ok() {
            deleted += 1;
        }
        db.ledger().trace(|| TraceEvent::RetentionGc {
            generation,
            blobs_deleted: deleted,
        });
    }

    /// Retire the committed generation after a successful resume (or when
    /// the resumed query ran to completion): remove the manifest, then
    /// delete the generation's blobs. The manifest removal is the
    /// retirement commit point — a crash *before* it leaves the generation
    /// fully resumable, a crash anywhere *after* it leaves the clean "no
    /// suspend" state (the remaining deletes only reclaim blobs no
    /// manifest references). The generation's records are enumerated
    /// before the manifest goes away, mirroring [`Self::gc_generation`]'s
    /// "index blob last" ordering; at every step there is at most one
    /// loadable generation and it is exactly what the manifest names.
    ///
    /// No-op when no manifest exists. An unreadable manifest or query blob
    /// degrades to removing the manifest alone (the blobs leak, committed
    /// state is never at risk).
    pub fn retire_generation(db: &Database) -> Result<()> {
        Self::retire_generation_named(db, SUSPEND_MANIFEST)
    }

    /// [`QueryExecution::retire_generation`] for an explicitly named
    /// manifest (per-session suspend chains).
    pub fn retire_generation_named(db: &Database, name: &str) -> Result<()> {
        let Some(m) = read_manifest_named(db, name).ok().flatten() else {
            return Ok(());
        };
        // Enumerate everything the manifest reaches — the current
        // generation and its retained predecessors — before the manifest
        // goes away.
        let old_sq = Self::load_sq(db, m.query).ok();
        let retained: Vec<(u64, Option<SuspendedQuery>, BlobId)> = m
            .retained
            .iter()
            .map(|(g, q)| (*g, Self::load_sq(db, *q).ok(), *q))
            .collect();
        clear_manifest_named(db, name)?;
        let backend = db.backend();
        let mut deleted = 0u64;
        let mut seen: HashSet<FileId> = HashSet::new();
        if let Some(sq) = &old_sq {
            for rec in sq.records.values().chain(sq.fallbacks.values().flatten()) {
                if let Some(b) = rec.heap_dump {
                    seen.insert(b.file);
                    if backend.delete_blob(b).is_ok() {
                        deleted += 1;
                    }
                }
            }
            for b in sq.delta_deps.values().flatten() {
                if seen.insert(b.file) && backend.delete_blob(*b).is_ok() {
                    deleted += 1;
                }
            }
        }
        if backend.delete_blob(m.query).is_ok() {
            deleted += 1;
        }
        db.ledger().trace(|| TraceEvent::RetentionGc {
            generation: m.generation,
            blobs_deleted: deleted,
        });
        // Retained predecessors are unreachable once the manifest is gone;
        // collect them too (their delta ancestors may be shared with the
        // primary chain, hence the cross-generation dedup).
        for (generation, rsq, qblob) in retained {
            let mut deleted = 0u64;
            if let Some(sq) = &rsq {
                for rec in sq.records.values().chain(sq.fallbacks.values().flatten()) {
                    if let Some(b) = rec.heap_dump {
                        if seen.insert(b.file) && backend.delete_blob(b).is_ok() {
                            deleted += 1;
                        }
                    }
                }
                for b in sq.delta_deps.values().flatten() {
                    if seen.insert(b.file) && backend.delete_blob(*b).is_ok() {
                        deleted += 1;
                    }
                }
            }
            if backend.delete_blob(qblob).is_ok() {
                deleted += 1;
            }
            db.ledger().trace(|| TraceEvent::RetentionGc {
                generation,
                blobs_deleted: deleted,
            });
        }
        Ok(())
    }

    /// Orphan-blob sweep (run on recover and available to GC): delete
    /// every blob the backend can enumerate that no committed manifest's
    /// closure — current and retained `SuspendedQuery` blobs, their record
    /// and fallback dumps, and every delta-chain ancestor — references.
    /// Torn remote puts leave exactly such blobs behind: the fragment
    /// landed under an id no manifest will ever name, and without this
    /// sweep it leaks forever.
    ///
    /// Backends that cannot enumerate blobs as a distinct class (the local
    /// disk, where dumps share a directory with table heaps) return `None`
    /// from [`SuspendBackend::list_blobs`] and the sweep is a no-op.
    /// Returns `(scanned, deleted)`. Deletes are charged to the ledger
    /// under [`Phase::Fallback`] — reclaim I/O caused by a failed suspend,
    /// not by any live query.
    ///
    /// Must only run while no suspend is in flight (recover-time, or a
    /// quiesced GC window): a concurrent suspend writes its dump blobs
    /// *before* committing the manifest that references them, and the
    /// sweep would reap that window's blobs as orphans.
    pub fn sweep_orphan_blobs(db: &Database) -> Result<(u64, u64)> {
        let backend = db.backend();
        let Some(blobs) = backend.list_blobs()? else {
            return Ok((0, 0));
        };
        let mut keep: HashSet<FileId> = HashSet::new();
        for name in backend.list_manifests("")? {
            // The sidecar namespace also holds session metadata and other
            // non-manifest files; anything that does not decode as a
            // manifest is not ours to interpret and keeps nothing alive.
            let Ok(Some(bytes)) = backend.read_manifest(&name) else {
                continue;
            };
            let Ok(m) = SuspendManifest::decode_from_slice(&bytes) else {
                continue;
            };
            for (_, qblob) in std::iter::once((m.generation, m.query))
                .chain(m.retained.iter().copied())
            {
                keep.insert(qblob.file);
                if let Ok(sq) = Self::load_sq(db, qblob) {
                    keep.extend(Self::sq_files(&sq));
                }
            }
        }
        let scanned = blobs.len() as u64;
        let mut deleted = 0u64;
        let ledger = db.ledger();
        let prev = ledger.phase();
        ledger.set_phase(Phase::Fallback);
        for b in blobs {
            if !keep.contains(&b.file) && backend.delete_blob(b).is_ok() {
                ledger.charge_write(1);
                deleted += 1;
            }
        }
        ledger.set_phase(prev);
        ledger.trace(|| TraceEvent::OrphanSweep { scanned, deleted });
        Ok((scanned, deleted))
    }

    /// Recover from a database directory: if a committed suspend manifest
    /// exists, validate and resume it; `Ok(None)` is the clean "no suspend
    /// happened" state. This is the fresh-process entry point — it needs
    /// nothing but the directory.
    pub fn recover(db: Arc<Database>) -> std::result::Result<Option<Self>, ResumeError> {
        Self::recover_named(db, SUSPEND_MANIFEST)
    }

    /// [`QueryExecution::recover`] for an explicitly named manifest. The
    /// recovered execution keeps committing under `name`, so a session
    /// resumed by the server stays on its own generation chain. The
    /// `QSR_RESUME_WORKERS` environment knob sets the prefetch pool size
    /// (see [`SuspendOptions::resume_workers`]); unset means serial.
    pub fn recover_named(
        db: Arc<Database>,
        name: &str,
    ) -> std::result::Result<Option<Self>, ResumeError> {
        let workers = env_usize("QSR_RESUME_WORKERS", 0).map_err(ResumeError::Storage)?;
        Self::recover_named_with(db, name, workers)
    }

    /// [`QueryExecution::recover_named`] with an explicit resume-prefetch
    /// pool size instead of the environment knob.
    pub fn recover_named_with(
        db: Arc<Database>,
        name: &str,
        resume_workers: usize,
    ) -> std::result::Result<Option<Self>, ResumeError> {
        match read_manifest_named(&db, name)? {
            None => {
                db.ledger().trace(|| TraceEvent::RecoveryStep {
                    step: format!("no suspend manifest at {name}; clean start"),
                });
                Ok(None)
            }
            Some(m) => {
                db.ledger().trace(|| TraceEvent::RecoveryStep {
                    step: format!("manifest generation {} found at {name}; resuming", m.generation),
                });
                let mut exec = Self::resume_validated_with(db, m.query, resume_workers)?;
                exec.manifest_name = name.to_string();
                Ok(Some(exec))
            }
        }
    }

    /// Resume a suspended query: read `SuspendedQuery`, rebuild the plan,
    /// and reconstruct all operator state (the resume phase). The returned
    /// execution continues exactly after the last pre-suspend tuple.
    pub fn resume(db: Arc<Database>, handle: &SuspendedHandle) -> Result<Self> {
        Self::resume_from_blob(db, handle.blob)
    }

    /// Resume from a raw blob id with a legacy `StorageError` result.
    /// Delegates to [`QueryExecution::resume_validated`].
    pub fn resume_from_blob(db: Arc<Database>, blob: BlobId) -> Result<Self> {
        Self::resume_validated(db, blob).map_err(Into::into)
    }

    /// Validating resume with the structured [`ResumeError`] taxonomy:
    /// frame/checksum/version checks on the `SuspendedQuery`, plan-spec
    /// decode, catalog compatibility, bounded-backoff retry of transient
    /// I/O, and GoBack-fallback substitution for unreadable dump blobs.
    pub fn resume_validated(
        db: Arc<Database>,
        blob: BlobId,
    ) -> std::result::Result<Self, ResumeError> {
        Self::resume_validated_with(db, blob, 0)
    }

    /// [`QueryExecution::resume_validated`] with a resume-prefetch pool:
    /// with `resume_workers > 0`, the suspended query's dump blobs are
    /// read in the background by a bounded [`ResumePool`] while operator
    /// state is rebuilt, pipelining each operator's decode CPU with the
    /// remaining operators' blob reads.
    /// Charged `Phase::Resume` I/O, recovered outputs, and the error
    /// taxonomy are identical to the serial path.
    pub fn resume_validated_with(
        db: Arc<Database>,
        blob: BlobId,
        resume_workers: usize,
    ) -> std::result::Result<Self, ResumeError> {
        db.ledger().set_phase(Phase::Resume);
        let out = Self::resume_validated_inner(&db, blob, resume_workers);
        if let Err(e) = &out {
            // Attach the flight-recorder tail to the failure out-of-band
            // (the ResumeError shape is frozen; callers fetch the tail via
            // Database::tracer / Tracer::failure_tail).
            if let Some(t) = db.tracer() {
                t.record_failure(&format!("resume failed: {e}"));
            }
        }
        db.ledger().set_phase(Phase::Execute);
        out
    }

    fn resume_validated_inner(
        db: &Arc<Database>,
        blob: BlobId,
        resume_workers: usize,
    ) -> std::result::Result<Self, ResumeError> {
        let mut sq = with_retries(|| Self::load_sq(db, blob)).map_err(|e| {
            if e.is_corruption() || matches!(e, StorageError::NotFound(_)) {
                ResumeError::SuspendedQueryUnreadable(e)
            } else {
                ResumeError::Storage(e)
            }
        })?;
        db.ledger().trace(|| TraceEvent::RecoveryStep {
            step: format!(
                "suspended query loaded: {} records, {} fallbacks",
                sq.records.len(),
                sq.fallbacks.len()
            ),
        });
        let spec = PlanSpec::decode_from_slice(&sq.plan_bytes)
            .map_err(|e| ResumeError::IncompatiblePlan(e.to_string()))?;
        for t in spec.tables() {
            if db.table(t).is_err() {
                return Err(ResumeError::MissingTable(t.to_string()));
            }
        }
        // Optimistic resume loop: try with the primary records; when a
        // dump blob turns out unreadable, substitute that operator's
        // GoBack fallback and rebuild. Bounded by the number of records.
        let mut substitutions = sq.records.len() + 1;
        loop {
            match with_retries(|| Self::try_resume(db, &spec, &sq, resume_workers)) {
                Ok(exec) => return Ok(exec),
                Err(e) if e.is_corruption() || matches!(e, StorageError::NotFound(_)) => {
                    if substitutions == 0 {
                        return Err(ResumeError::Storage(e));
                    }
                    substitutions -= 1;
                    let Some(op) = Self::find_unreadable_dump(db, &sq) else {
                        return Err(ResumeError::Storage(e));
                    };
                    match sq.fallbacks.remove(&op) {
                        Some(recs) => {
                            db.ledger().trace(|| TraceEvent::RecoveryStep {
                                step: format!(
                                    "dump blob for op {} unreadable; substituting GoBack fallback",
                                    op.0
                                ),
                            });
                            for r in recs {
                                sq.put_record(r);
                            }
                            sq.suspend_plan.set(op, Strategy::GoBack { to: op });
                        }
                        None => return Err(ResumeError::DumpUnavailable { op, source: e }),
                    }
                }
                Err(e) => return Err(ResumeError::Storage(e)),
            }
        }
    }

    /// Locate an operator whose dump blob no longer reads back cleanly. A
    /// delta frame is only as good as its whole chain, so the walk
    /// materializes chains end to end (checksum-verified apply) — damage
    /// to *any* ancestor marks the dependent operator unreadable.
    fn find_unreadable_dump(db: &Database, sq: &SuspendedQuery) -> Option<OpId> {
        for rec in sq.records.values() {
            if let Some(b) = rec.heap_dump {
                if let Err(e) = with_retries(|| Self::materialize_blob(db, b)) {
                    if !e.is_transient() {
                        return Some(rec.op);
                    }
                }
            }
        }
        None
    }

    /// Read a dump blob through the backend and fully reconstruct it if it
    /// is a delta frame (recursing through its ancestors).
    fn materialize_blob(db: &Database, id: BlobId) -> Result<Vec<u8>> {
        let raw = db.backend().get_blob(id)?;
        if !is_delta_frame(&raw) {
            return Ok(raw);
        }
        let delta = DeltaDump::decode_from_bytes(&raw)?;
        let base = Self::materialize_blob(db, delta.base)?;
        delta.apply(&base)
    }

    /// One resume attempt over a fixed record set. With `workers > 0` the
    /// record set's dump blobs are read in the background by a
    /// [`ResumePool`] whose slot map is installed in the context before
    /// any operator resumes; each operator blocks only on *its own*
    /// blob's slot (or replays its read error) through
    /// [`ExecContext::get_dump_value`], so blob I/O pipelines with the
    /// decode work of operators that already have their bytes.
    /// Prefetching happens per attempt so fallback substitution always
    /// reads the *current* record set, and the context is drained before
    /// returning so no charged read outlives `Phase::Resume`.
    fn try_resume(
        db: &Arc<Database>,
        spec: &PlanSpec,
        sq: &SuspendedQuery,
        workers: usize,
    ) -> Result<Self> {
        let built = build_plan(db, spec)?;
        let mut ctx = ExecContext::new(db.clone());
        if let Some(gb) = &sq.graph_bytes {
            ctx.graph = ContractGraph::decode_from_slice(gb)?;
        }
        ctx.work.restore(sq.work_snapshot.iter().copied());
        // The resume pool reads straight from the local blob store; a
        // non-local backend serves every read itself (serially).
        if workers > 0 && db.backend().is_local() {
            // `sq.records` is a BTreeMap, so the queue order (and thus the
            // fault-ordinal exposure) is deterministic.
            let blobs: Vec<BlobId> = sq.records.values().filter_map(|r| r.heap_dump).collect();
            if !blobs.is_empty() {
                ctx.install_prefetched(ResumePool::fetch(db, &blobs, workers));
            }
        }
        let mut exec = Self {
            db: db.clone(),
            ctx,
            root: built.root,
            spec: spec.clone(),
            topology: built.topology,
            tuples_emitted: sq.tuples_emitted,
            finished: false,
            batch_size: env_usize("QSR_BATCH_SIZE", 0)?,
            manifest_name: SUSPEND_MANIFEST.to_string(),
        };
        let resumed = exec.root.resume(&mut exec.ctx, sq);
        exec.ctx.drain_prefetched();
        resumed?;
        Ok(exec)
    }
}
