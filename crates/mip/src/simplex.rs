//! Dense two-phase simplex.
//!
//! Solves the continuous relaxation of a [`LinearProgram`]: binary markers
//! are ignored, bounds and constraints are honored. The implementation is
//! a classic dense tableau with Dantzig pricing and a Bland's-rule
//! fallback for anti-cycling — simple and entirely adequate for the small
//! programs the suspend-plan optimizer produces.

use crate::problem::{ConstraintOp, LinearProgram};

/// Feasibility / optimality tolerance.
const EPS: f64 = 1e-9;
/// After this many Dantzig pivots, switch to Bland's rule.
const BLAND_AFTER: usize = 10_000;
/// Absolute pivot cap (defensive; never hit in practice).
const MAX_PIVOTS: usize = 200_000;

/// Result of an LP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal variable assignment (original variable space).
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

impl LpOutcome {
    /// Unwrap the optimal solution, panicking otherwise (test helper).
    pub fn expect_optimal(self) -> LpSolution {
        match self {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}

struct Tableau {
    /// rows x cols matrix; last column is the RHS.
    a: Vec<Vec<f64>>,
    /// Objective row (length cols); last entry is negated objective value.
    z: Vec<f64>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    rows: usize,
    cols: usize, // number of variable columns (excludes RHS)
    /// Columns barred from entering the basis (artificials in phase 2).
    banned: Vec<bool>,
    pivots: usize,
}

impl Tableau {
    fn rhs(&self, r: usize) -> f64 {
        self.a[r][self.cols]
    }

    /// Subtract multiples of basic rows from the objective row so that all
    /// basic columns have zero reduced cost.
    fn price_out(&mut self) {
        for r in 0..self.rows {
            let b = self.basis[r];
            let coeff = self.z[b];
            if coeff.abs() > 0.0 {
                let row = self.a[r].clone();
                for (zc, &rc) in self.z.iter_mut().zip(&row) {
                    *zc -= coeff * rc;
                }
            }
        }
    }

    fn pivot(&mut self, r: usize, c: usize) {
        let p = self.a[r][c];
        debug_assert!(p.abs() > EPS);
        let inv = 1.0 / p;
        for v in self.a[r].iter_mut() {
            *v *= inv;
        }
        let prow = self.a[r].clone();
        for rr in 0..self.rows {
            if rr == r {
                continue;
            }
            let f = self.a[rr][c];
            if f.abs() > 0.0 {
                for (ac, &pc) in self.a[rr].iter_mut().zip(&prow) {
                    *ac -= f * pc;
                }
            }
        }
        let f = self.z[c];
        if f.abs() > 0.0 {
            for (zc, &pc) in self.z.iter_mut().zip(&prow) {
                *zc -= f * pc;
            }
        }
        self.basis[r] = c;
        self.pivots += 1;
    }

    /// Run the simplex loop to optimality. Returns `false` on unbounded.
    fn optimize(&mut self) -> bool {
        loop {
            if self.pivots > MAX_PIVOTS {
                // Defensive: treat as optimal-at-tolerance rather than
                // looping forever; callers verify feasibility anyway.
                return true;
            }
            let bland = self.pivots > BLAND_AFTER;
            // Entering column: most negative reduced cost (Dantzig) or the
            // first negative (Bland).
            let mut enter: Option<usize> = None;
            let mut best = -EPS;
            for c in 0..self.cols {
                if self.banned[c] {
                    continue;
                }
                let rc = self.z[c];
                if rc < -EPS {
                    if bland {
                        enter = Some(c);
                        break;
                    }
                    if rc < best {
                        best = rc;
                        enter = Some(c);
                    }
                }
            }
            let Some(c) = enter else {
                return true; // optimal
            };
            // Leaving row: min ratio; ties by smallest basis index (Bland).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let a = self.a[r][c];
                if a > EPS {
                    let ratio = self.rhs(r) / a;
                    if ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_none_or(|lr| self.basis[r] < self.basis[lr]))
                    {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(r) = leave else {
                return false; // unbounded
            };
            self.pivot(r, c);
        }
    }
}

/// Solve the continuous relaxation of `lp`.
pub fn solve_lp(lp: &LinearProgram) -> LpOutcome {
    solve_lp_counted(lp).0
}

/// Like [`solve_lp`], but also report how many simplex pivots the solve
/// performed (both phases combined). The pivot count is the work unit the
/// anytime MIP budget meters, so callers that enforce a [`SolveBudget`]
/// need it surfaced.
///
/// [`SolveBudget`]: crate::branch_bound::SolveBudget
pub fn solve_lp_counted(lp: &LinearProgram) -> (LpOutcome, usize) {
    let n = lp.num_vars();
    let lower = lp.lower_bounds();
    let upper = lp.upper_bounds();

    // Shift variables by their lower bounds: y = x - lo, y >= 0.
    // Collect rows in (dense coeffs over y, op, rhs) form.
    let mut rows: Vec<(Vec<f64>, ConstraintOp, f64)> = Vec::new();

    for c in lp.constraints() {
        let mut coeffs = vec![0.0; n];
        let mut shift = 0.0;
        for &(v, k) in &c.terms {
            coeffs[v.0] += k;
            shift += k * lower[v.0];
        }
        rows.push((coeffs, c.op, c.rhs - shift));
    }
    // Upper bounds become y_i <= hi - lo (skip infinite and fixed-equal).
    for i in 0..n {
        if upper[i].is_finite() {
            let range = upper[i] - lower[i];
            if range <= EPS {
                // Variable fixed at its lower bound: y_i == 0.
                let mut coeffs = vec![0.0; n];
                coeffs[i] = 1.0;
                rows.push((coeffs, ConstraintOp::Eq, 0.0));
            } else {
                let mut coeffs = vec![0.0; n];
                coeffs[i] = 1.0;
                rows.push((coeffs, ConstraintOp::Le, range));
            }
        }
    }

    // Normalize RHS to be nonnegative.
    for (coeffs, op, rhs) in rows.iter_mut() {
        if *rhs < 0.0 {
            for v in coeffs.iter_mut() {
                *v = -*v;
            }
            *rhs = -*rhs;
            *op = match *op {
                ConstraintOp::Le => ConstraintOp::Ge,
                ConstraintOp::Ge => ConstraintOp::Le,
                ConstraintOp::Eq => ConstraintOp::Eq,
            };
        }
    }

    let m = rows.len();
    // Column layout: [structural n][slack/surplus][artificials].
    let n_slack = rows
        .iter()
        .filter(|(_, op, _)| !matches!(op, ConstraintOp::Eq))
        .count();
    let n_art = rows
        .iter()
        .filter(|(_, op, _)| matches!(op, ConstraintOp::Ge | ConstraintOp::Eq))
        .count();
    let cols = n + n_slack + n_art;

    let mut a = vec![vec![0.0; cols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut is_artificial = vec![false; cols];
    let mut next_slack = n;
    let mut next_art = n + n_slack;

    for (r, (coeffs, op, rhs)) in rows.iter().enumerate() {
        a[r][..n].copy_from_slice(coeffs);
        a[r][cols] = *rhs;
        match op {
            ConstraintOp::Le => {
                a[r][next_slack] = 1.0;
                basis[r] = next_slack;
                next_slack += 1;
            }
            ConstraintOp::Ge => {
                a[r][next_slack] = -1.0;
                next_slack += 1;
                a[r][next_art] = 1.0;
                is_artificial[next_art] = true;
                basis[r] = next_art;
                next_art += 1;
            }
            ConstraintOp::Eq => {
                a[r][next_art] = 1.0;
                is_artificial[next_art] = true;
                basis[r] = next_art;
                next_art += 1;
            }
        }
    }

    let mut t = Tableau {
        a,
        z: vec![0.0; cols + 1],
        basis,
        rows: m,
        cols,
        banned: vec![false; cols],
        pivots: 0,
    };

    // Phase 1: minimize sum of artificials.
    if n_art > 0 {
        for (zc, &art) in t.z.iter_mut().zip(&is_artificial) {
            *zc = if art { 1.0 } else { 0.0 };
        }
        t.z[cols] = 0.0;
        t.price_out();
        if !t.optimize() {
            // Phase-1 objective is bounded below by 0; unbounded cannot
            // happen, but be defensive.
            return (LpOutcome::Infeasible, t.pivots);
        }
        let phase1_obj = -t.z[cols];
        if phase1_obj > 1e-7 {
            return (LpOutcome::Infeasible, t.pivots);
        }
        // Drive any remaining basic artificials out of the basis.
        for r in 0..t.rows {
            if is_artificial[t.basis[r]] {
                let mut pivoted = false;
                for (c, &art) in is_artificial.iter().enumerate() {
                    if !art && t.a[r][c].abs() > 1e-7 {
                        t.pivot(r, c);
                        pivoted = true;
                        break;
                    }
                }
                // If no pivot is possible the row is redundant (all zeros);
                // the artificial stays basic at value 0 and is banned below.
                let _ = pivoted;
            }
        }
        for (bc, &art) in t.banned.iter_mut().zip(&is_artificial) {
            if art {
                *bc = true;
            }
        }
    }

    // Phase 2: the real objective over shifted variables.
    for c in 0..=cols {
        t.z[c] = 0.0;
    }
    for (i, &cost) in lp.objective().iter().enumerate() {
        t.z[i] = cost;
    }
    t.price_out();
    if !t.optimize() {
        return (LpOutcome::Unbounded, t.pivots);
    }

    // Extract solution: shifted basics from RHS, then un-shift.
    let mut y = vec![0.0; cols];
    for r in 0..t.rows {
        y[t.basis[r]] = t.rhs(r).max(0.0);
    }
    let x: Vec<f64> = (0..n).map(|i| y[i] + lower[i]).collect();
    let objective = lp.objective_value(&x);
    (LpOutcome::Optimal(LpSolution { x, objective }), t.pivots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp::*, LinearProgram};

    fn near(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn textbook_two_var_max() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  (min of negation)
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-3.0, 0.0, f64::INFINITY);
        let y = lp.add_var(-5.0, 0.0, f64::INFINITY);
        lp.add_constraint(vec![(x, 1.0)], Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Le, 18.0);
        let s = solve_lp(&lp).expect_optimal();
        assert!(near(s.objective, -36.0), "got {}", s.objective);
        assert!(near(s.x[0], 2.0) && near(s.x[1], 6.0));
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y == 10, x - y == 4  => x=7, y=3.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 0.0, f64::INFINITY);
        let y = lp.add_var(1.0, 0.0, f64::INFINITY);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Eq, 10.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Eq, 4.0);
        let s = solve_lp(&lp).expect_optimal();
        assert!(near(s.x[0], 7.0) && near(s.x[1], 3.0));
        assert!(near(s.objective, 10.0));
    }

    #[test]
    fn ge_constraints_and_phase_one() {
        // min 2x + 3y s.t. x + y >= 4, x >= 1  => x=4 (cheaper), y=0? cost 8
        // vs x=1,y=3 cost 11. Optimal x=4,y=0.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(2.0, 0.0, f64::INFINITY);
        let y = lp.add_var(3.0, 0.0, f64::INFINITY);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Ge, 4.0);
        lp.add_constraint(vec![(x, 1.0)], Ge, 1.0);
        let s = solve_lp(&lp).expect_optimal();
        assert!(near(s.objective, 8.0), "got {}", s.objective);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 0.0, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Ge, 5.0);
        assert_eq!(solve_lp(&lp), LpOutcome::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-1.0, 0.0, f64::INFINITY);
        lp.add_constraint(vec![(x, -1.0)], Le, 0.0);
        assert_eq!(solve_lp(&lp), LpOutcome::Unbounded);
    }

    #[test]
    fn upper_bounds_respected() {
        // min -x with x <= 3 (via bound) => x = 3.
        let mut lp = LinearProgram::new();
        let _x = lp.add_var(-1.0, 0.0, 3.0);
        let s = solve_lp(&lp).expect_optimal();
        assert!(near(s.x[0], 3.0));
    }

    #[test]
    fn nonzero_lower_bounds_shift_correctly() {
        // min x + y, x in [2, 10], y in [1, 10], x + y >= 5  => (2,3) or (4,1):
        // cost 5 either way; check objective.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 2.0, 10.0);
        let y = lp.add_var(1.0, 1.0, 10.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Ge, 5.0);
        let s = solve_lp(&lp).expect_optimal();
        assert!(near(s.objective, 5.0), "got {}", s.objective);
        assert!(s.x[0] >= 2.0 - 1e-9 && s.x[1] >= 1.0 - 1e-9);
    }

    #[test]
    fn fixed_variable_via_equal_bounds() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 0.0, f64::INFINITY);
        let y = lp.add_var(0.0, 2.5, 2.5); // fixed at 2.5
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Ge, 4.0);
        let s = solve_lp(&lp).expect_optimal();
        assert!(near(s.x[1], 2.5));
        assert!(near(s.x[0], 1.5));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Highly degenerate: many redundant constraints through the origin.
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-1.0, 0.0, 1.0);
        let y = lp.add_var(-1.0, 0.0, 1.0);
        for k in 1..20 {
            lp.add_constraint(vec![(x, k as f64), (y, 1.0)], Le, k as f64 + 1.0);
        }
        let s = solve_lp(&lp).expect_optimal();
        assert!(near(s.objective, -2.0), "got {}", s.objective);
    }

    #[test]
    fn pivot_counts_are_reported() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(-3.0, 0.0, f64::INFINITY);
        let y = lp.add_var(-5.0, 0.0, f64::INFINITY);
        lp.add_constraint(vec![(x, 1.0)], Le, 4.0);
        lp.add_constraint(vec![(y, 2.0)], Le, 12.0);
        lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Le, 18.0);
        let (outcome, pivots) = solve_lp_counted(&lp);
        outcome.expect_optimal();
        assert!(pivots > 0, "a non-trivial solve must pivot at least once");
    }

    #[test]
    fn solution_is_always_feasible() {
        // Randomized smoke: random small feasible LPs; the returned point
        // must satisfy the model's own feasibility check.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..50 {
            let mut lp = LinearProgram::new();
            let nv = rng.gen_range(1..5);
            let vars: Vec<_> = (0..nv)
                .map(|_| lp.add_var(rng.gen_range(-3.0..3.0), 0.0, rng.gen_range(1.0..5.0)))
                .collect();
            for _ in 0..rng.gen_range(0..4) {
                let terms: Vec<_> = vars
                    .iter()
                    .map(|&v| (v, rng.gen_range(0.0..2.0)))
                    .collect();
                // rhs >= 0 with nonneg coeffs keeps x=0 feasible.
                lp.add_constraint(terms, Le, rng.gen_range(0.5..6.0));
            }
            let s = solve_lp(&lp).expect_optimal();
            let mut relaxed = lp.clone();
            // Ignore binary flags for the relaxation check (none here).
            assert!(relaxed.is_feasible(&s.x, 1e-6), "infeasible point {:?}", s.x);
            let _ = &mut relaxed;
        }
    }
}
