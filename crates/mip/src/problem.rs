//! Model builder for linear and 0/1 mixed-integer programs.

use std::fmt;

/// Index of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `lhs <= rhs`
    Le,
    /// `lhs >= rhs`
    Ge,
    /// `lhs == rhs`
    Eq,
}

/// A linear constraint: `sum(coeff * var) op rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Sparse left-hand side terms.
    pub terms: Vec<(VarId, f64)>,
    /// Relation.
    pub op: ConstraintOp,
    /// Right-hand side constant.
    pub rhs: f64,
}

/// A minimization program: `min c·x` subject to constraints and
/// `lo <= x <= hi` bounds, with an optional set of binary variables.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    objective: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    binary: Vec<bool>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a continuous variable with objective coefficient `cost` and
    /// bounds `[lo, hi]`. `lo` must be finite and ≥ 0 (the simplex works
    /// in the nonnegative orthant); `hi` may be `f64::INFINITY`.
    pub fn add_var(&mut self, cost: f64, lo: f64, hi: f64) -> VarId {
        assert!(lo >= 0.0 && lo.is_finite(), "lower bound must be finite and >= 0");
        assert!(hi >= lo, "upper bound below lower bound");
        let id = VarId(self.objective.len());
        self.objective.push(cost);
        self.lower.push(lo);
        self.upper.push(hi);
        self.binary.push(false);
        id
    }

    /// Add a binary (0/1) variable with objective coefficient `cost`.
    pub fn add_binary_var(&mut self, cost: f64) -> VarId {
        let id = self.add_var(cost, 0.0, 1.0);
        self.binary[id.0] = true;
        id
    }

    /// Add a constraint. Terms with the same variable are allowed and are
    /// summed by the solver.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, op: ConstraintOp, rhs: f64) {
        for (v, _) in &terms {
            assert!(v.0 < self.num_vars(), "constraint references unknown var");
        }
        self.constraints.push(Constraint { terms, op, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Lower bounds.
    pub fn lower_bounds(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds.
    pub fn upper_bounds(&self) -> &[f64] {
        &self.upper
    }

    /// Which variables are binary.
    pub fn binaries(&self) -> &[bool] {
        &self.binary
    }

    /// The constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluate the objective at `x`.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Check whether `x` satisfies all constraints and bounds within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (i, &xi) in x.iter().enumerate() {
            if xi < self.lower[i] - tol || xi > self.upper[i] + tol {
                return false;
            }
            if self.binary[i] && (xi - xi.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|(v, k)| k * x[v.0]).sum();
            let ok = match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// A copy of this program with variable `v`'s bounds fixed to `value`
    /// (used by branch-and-bound).
    pub fn with_fixed(&self, v: VarId, value: f64) -> LinearProgram {
        let mut p = self.clone();
        p.lower[v.0] = value;
        p.upper[v.0] = value;
        p
    }
}

impl fmt::Display for LinearProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "min over {} vars ({} binary), {} constraints",
            self.num_vars(),
            self.binary.iter().filter(|&&b| b).count(),
            self.num_constraints()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(1.0, 0.0, 10.0);
        let y = lp.add_binary_var(-2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 3.0)], ConstraintOp::Le, 5.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 1);
        assert!(lp.binaries()[y.0]);
        assert!(!lp.binaries()[x.0]);
        assert_eq!(lp.objective_value(&[2.0, 1.0]), 0.0);
    }

    #[test]
    fn feasibility_checks_bounds_ops_and_integrality() {
        let mut lp = LinearProgram::new();
        let x = lp.add_var(0.0, 0.0, 1.0);
        let y = lp.add_binary_var(0.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 1.0);
        lp.add_constraint(vec![(x, 1.0)], ConstraintOp::Eq, 0.5);
        assert!(lp.is_feasible(&[0.5, 1.0], 1e-9));
        assert!(!lp.is_feasible(&[0.5, 0.5], 1e-9), "binary must be integral");
        assert!(!lp.is_feasible(&[0.4, 1.0], 1e-9), "eq violated");
        assert!(!lp.is_feasible(&[1.5, 0.0], 1e-9), "bound violated");
        assert!(!lp.is_feasible(&[0.5], 1e-9), "wrong arity");
    }

    #[test]
    fn with_fixed_pins_bounds() {
        let mut lp = LinearProgram::new();
        let y = lp.add_binary_var(1.0);
        let fixed = lp.with_fixed(y, 1.0);
        assert_eq!(fixed.lower_bounds()[0], 1.0);
        assert_eq!(fixed.upper_bounds()[0], 1.0);
        // Original untouched.
        assert_eq!(lp.lower_bounds()[0], 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_lower_bound_rejected() {
        let mut lp = LinearProgram::new();
        lp.add_var(0.0, -1.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn unknown_var_in_constraint_rejected() {
        let mut lp = LinearProgram::new();
        lp.add_constraint(vec![(VarId(3), 1.0)], ConstraintOp::Le, 1.0);
    }
}
