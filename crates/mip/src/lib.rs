//! # qsr-mip
//!
//! A from-scratch linear-programming and 0/1 mixed-integer-programming
//! solver, built for the online suspend-plan optimizer of the paper
//! *Query Suspend and Resume* (SIGMOD 2007, §5). The paper incorporated a
//! mixed-integer-program solver into PREDATOR; this crate is that
//! substrate.
//!
//! * [`LinearProgram`] — model builder: minimize `c·x` subject to linear
//!   constraints and variable bounds, with any subset of variables marked
//!   binary (0/1).
//! * [`simplex`] — dense two-phase simplex with Bland's anti-cycling rule.
//! * [`branch_bound`] — best-first branch-and-bound over the binary
//!   variables, using the simplex relaxation for bounds.
//!
//! The suspend-plan programs are small (tens to a few hundred variables),
//! so a dense tableau is the right tool: simple, predictable, and fast at
//! this scale. `qsr-core` additionally provides a structured solver for
//! adversarially large plans and property-tests it against this crate.

pub mod admission;
pub mod branch_bound;
pub mod problem;
pub mod simplex;

pub use admission::admission_price;
pub use branch_bound::{
    solve_mip, solve_mip_observed, solve_mip_with_stats, MipOptions, MipSolution, SolveBudget,
    SolveObserver, SolveStats,
};
pub use problem::{Constraint, ConstraintOp, LinearProgram, VarId};
pub use simplex::{solve_lp, solve_lp_counted, LpOutcome, LpSolution};
