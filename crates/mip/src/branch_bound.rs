//! Best-first branch-and-bound over binary variables, with anytime
//! (budget-bounded) semantics.
//!
//! The LP relaxation (via [`solve_lp_counted`]) provides lower bounds; branching
//! fixes the most fractional binary variable to 0 and 1. For the
//! suspend-plan programs of the paper the relaxation is usually integral
//! or nearly so, so the tree stays tiny — but a hostile program can blow
//! the tree up, and a suspend deadline cannot wait for it. A
//! [`SolveBudget`] caps the search by explored nodes and by total simplex
//! pivots; when the budget expires the solver returns its best incumbent
//! (or an LP-relaxation-rounded heuristic point if no incumbent exists
//! yet) as [`MipSolution::Heuristic`] instead of running unbounded, and
//! [`SolveStats`] reports how hard it tried and how far off the answer
//! may be.

use crate::problem::LinearProgram;
use crate::simplex::{solve_lp_counted, LpOutcome};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Integrality tolerance.
const INT_TOL: f64 = 1e-6;

/// Options controlling the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct MipOptions {
    /// Maximum number of explored nodes (defensive cap).
    pub max_nodes: usize,
}

impl Default for MipOptions {
    fn default() -> Self {
        Self { max_nodes: 100_000 }
    }
}

/// An anytime-search budget: the solve stops as soon as either limit is
/// reached and reports the best answer it has.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveBudget {
    /// Maximum branch-and-bound nodes to explore.
    pub max_nodes: usize,
    /// Maximum total simplex pivots across all LP relaxations (the actual
    /// unit of solver work; a single hard relaxation can dwarf many easy
    /// nodes).
    pub max_pivots: usize,
}

impl SolveBudget {
    /// A node-count budget with unmetered pivots.
    pub fn nodes(max_nodes: usize) -> Self {
        Self {
            max_nodes,
            max_pivots: usize::MAX,
        }
    }

    /// Effectively unlimited search (still bounded by the defensive
    /// default node cap's numeric range, i.e. never stops early).
    pub fn unlimited() -> Self {
        Self {
            max_nodes: usize::MAX,
            max_pivots: usize::MAX,
        }
    }
}

impl Default for SolveBudget {
    fn default() -> Self {
        Self::nodes(MipOptions::default().max_nodes)
    }
}

/// Statistics describing how a [`solve_mip_with_stats`] run ended.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolveStats {
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// Total simplex pivots spent across all relaxations.
    pub pivots: usize,
    /// True when the budget expired with provably unexplored work left —
    /// the returned solution (if any) is an incumbent, not a proved
    /// optimum.
    pub budget_exhausted: bool,
    /// Relative optimality gap of the returned solution: `(objective -
    /// best_remaining_bound) / max(1, |objective|)`. Zero when the search
    /// completed (the answer is proved optimal).
    pub incumbent_gap: f64,
    /// True when the returned solution came from rounding the root LP
    /// relaxation rather than from the branch-and-bound tree.
    pub rounded: bool,
}

/// Observer of branch-and-bound progress. `qsr-mip` has no dependencies
/// by design, so it cannot emit into the storage layer's tracer directly;
/// callers (the suspend-plan optimizer) pass an adapter implementing this
/// trait and forward the callbacks. All methods default to no-ops.
pub trait SolveObserver {
    /// The root LP relaxation finished after `pivots` simplex pivots.
    fn on_root(&self, pivots: usize) {
        let _ = pivots;
    }
    /// One branch-and-bound node was expanded. `nodes`/`pivots` are
    /// cumulative; `bound` is the node's LP objective.
    fn on_node(&self, nodes: usize, pivots: usize, bound: f64) {
        let _ = (nodes, pivots, bound);
    }
    /// The incumbent improved to `objective` after `nodes` nodes.
    fn on_incumbent(&self, objective: f64, nodes: usize) {
        let _ = (objective, nodes);
    }
}

/// Result of a MIP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum MipSolution {
    /// Optimal integral solution found.
    Optimal {
        /// The assignment.
        x: Vec<f64>,
        /// Objective value.
        objective: f64,
        /// Number of branch-and-bound nodes explored.
        nodes: usize,
    },
    /// A feasible integral solution that is *not* proved optimal: the
    /// budget expired and this is the best incumbent (or a rounded
    /// LP-relaxation point — see [`SolveStats::rounded`]).
    Heuristic {
        /// The assignment.
        x: Vec<f64>,
        /// Objective value.
        objective: f64,
    },
    /// No feasible integral assignment exists.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
}

impl MipSolution {
    /// Unwrap the optimal assignment (test helper).
    pub fn expect_optimal(self) -> (Vec<f64>, f64) {
        match self {
            MipSolution::Optimal { x, objective, .. } => (x, objective),
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}

struct Node {
    bound: f64,
    program: LinearProgram,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    // BinaryHeap is a max-heap; invert so the *lowest* bound pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.bound.total_cmp(&self.bound)
    }
}

fn most_fractional_binary(lp: &LinearProgram, x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &is_bin) in lp.binaries().iter().enumerate() {
        if !is_bin {
            continue;
        }
        let frac = (x[i] - x[i].round()).abs();
        if frac > INT_TOL {
            let dist = (x[i].fract() - 0.5).abs();
            if best.is_none_or(|(_, d)| dist < d) {
                best = Some((i, dist));
            }
        }
    }
    best.map(|(i, _)| i)
}

/// Round the binary coordinates of an LP-relaxation point and keep the
/// best rounding that the model itself accepts as feasible. Continuous
/// variables keep their relaxation values, so a rounding can break a
/// coupled constraint — `is_feasible` is the arbiter.
fn round_relaxation(lp: &LinearProgram, relax: &[f64]) -> Option<(Vec<f64>, f64)> {
    let roundings: [fn(f64) -> f64; 3] = [f64::round, f64::floor, f64::ceil];
    let mut best: Option<(Vec<f64>, f64)> = None;
    for round in roundings {
        let mut x = relax.to_vec();
        for (i, &b) in lp.binaries().iter().enumerate() {
            if b {
                x[i] = round(x[i]).clamp(0.0, 1.0);
            }
        }
        if lp.is_feasible(&x, INT_TOL) {
            let obj = lp.objective_value(&x);
            if best.as_ref().is_none_or(|(_, o)| obj < *o - 1e-12) {
                best = Some((x, obj));
            }
        }
    }
    best
}

/// Solve `lp` to integral optimality over its binary variables.
///
/// Compatibility wrapper over [`solve_mip_with_stats`] with a node-only
/// budget; a budget-expired incumbent is reported as `Optimal` exactly as
/// the pre-anytime solver did.
pub fn solve_mip(lp: &LinearProgram, opts: &MipOptions) -> MipSolution {
    let (sol, stats) = solve_mip_with_stats(lp, &SolveBudget::nodes(opts.max_nodes));
    match sol {
        MipSolution::Heuristic { x, objective } if !stats.rounded => MipSolution::Optimal {
            x,
            objective,
            nodes: stats.nodes,
        },
        // A rounded point is not something the pre-anytime solver could
        // produce; its callers treated budget exhaustion without an
        // incumbent as infeasibility.
        MipSolution::Heuristic { .. } => MipSolution::Infeasible,
        other => other,
    }
}

/// Anytime solve: explore until proved optimal or `budget` expires,
/// whichever comes first, and report what happened in [`SolveStats`].
///
/// On budget expiry the result is [`MipSolution::Heuristic`] — the best
/// incumbent, or a feasible rounding of the root relaxation when the tree
/// produced no incumbent yet. Only when neither exists does an exhausted
/// solve report `Infeasible` (with `budget_exhausted` set, so the caller
/// knows infeasibility was *not* proved).
pub fn solve_mip_with_stats(lp: &LinearProgram, budget: &SolveBudget) -> (MipSolution, SolveStats) {
    solve_mip_observed(lp, budget, None)
}

/// [`solve_mip_with_stats`] with an optional progress observer; see
/// [`SolveObserver`].
pub fn solve_mip_observed(
    lp: &LinearProgram,
    budget: &SolveBudget,
    obs: Option<&dyn SolveObserver>,
) -> (MipSolution, SolveStats) {
    let mut stats = SolveStats::default();

    // Root relaxation.
    let (root_outcome, root_pivots) = solve_lp_counted(lp);
    stats.pivots += root_pivots;
    if let Some(o) = obs {
        o.on_root(root_pivots);
    }
    let root = match root_outcome {
        LpOutcome::Optimal(s) => s,
        LpOutcome::Infeasible => return (MipSolution::Infeasible, stats),
        LpOutcome::Unbounded => return (MipSolution::Unbounded, stats),
    };
    let root_bound = root.objective;

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: root_bound,
        program: lp.clone(),
    });

    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    let mut budget_hit = false;

    loop {
        if stats.nodes >= budget.max_nodes || stats.pivots >= budget.max_pivots {
            budget_hit = true;
            break;
        }
        let Some(node) = heap.pop() else { break };
        // Prune by bound against the incumbent.
        if let Some((_, inc_obj)) = &incumbent {
            if node.bound >= *inc_obj - 1e-9 {
                continue;
            }
        }
        stats.nodes += 1;
        let (outcome, pivots) = solve_lp_counted(&node.program);
        stats.pivots += pivots;
        let sol = match outcome {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => return (MipSolution::Unbounded, stats),
        };
        if let Some(o) = obs {
            o.on_node(stats.nodes, stats.pivots, sol.objective);
        }
        if let Some((_, inc_obj)) = &incumbent {
            if sol.objective >= *inc_obj - 1e-9 {
                continue;
            }
        }
        match most_fractional_binary(lp, &sol.x) {
            None => {
                // Integral: round binaries exactly and record incumbent.
                let mut x = sol.x.clone();
                for (i, &b) in lp.binaries().iter().enumerate() {
                    if b {
                        x[i] = x[i].round();
                    }
                }
                let obj = lp.objective_value(&x);
                let better = incumbent.as_ref().is_none_or(|(_, o)| obj < *o - 1e-12);
                if better {
                    if let Some(o) = obs {
                        o.on_incumbent(obj, stats.nodes);
                    }
                    incumbent = Some((x, obj));
                }
            }
            Some(v) => {
                for val in [0.0, 1.0] {
                    let child = node.program.with_fixed(crate::problem::VarId(v), val);
                    heap.push(Node {
                        bound: sol.objective,
                        program: child,
                    });
                }
            }
        }
    }

    // The budget only "exhausted" the search if work provably remains: a
    // node whose bound could still beat the incumbent.
    let best_remaining = heap.peek().map(|n| n.bound);
    stats.budget_exhausted = budget_hit
        && match (&incumbent, best_remaining) {
            (_, None) => false,
            (Some((_, obj)), Some(b)) => b < *obj - 1e-9,
            (None, Some(_)) => true,
        };

    if !stats.budget_exhausted {
        return match incumbent {
            Some((x, objective)) => (
                MipSolution::Optimal {
                    x,
                    objective,
                    nodes: stats.nodes,
                },
                stats,
            ),
            None => (MipSolution::Infeasible, stats),
        };
    }

    // Anytime exit: best incumbent first, rounded root relaxation second.
    let gap = |obj: f64, bound: f64| ((obj - bound) / obj.abs().max(1.0)).max(0.0);
    if let Some((x, objective)) = incumbent {
        stats.incumbent_gap = gap(objective, best_remaining.unwrap_or(objective));
        return (MipSolution::Heuristic { x, objective }, stats);
    }
    if let Some((x, objective)) = round_relaxation(lp, &root.x) {
        stats.rounded = true;
        stats.incumbent_gap = gap(objective, root_bound);
        return (MipSolution::Heuristic { x, objective }, stats);
    }
    (MipSolution::Infeasible, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp::*, LinearProgram, VarId};

    fn near(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c with 3a + 4b + 2c <= 6  (min of negation)
        // Optimal integral: a=0, b=1, c=1 => 20.
        let mut lp = LinearProgram::new();
        let a = lp.add_binary_var(-10.0);
        let b = lp.add_binary_var(-13.0);
        let c = lp.add_binary_var(-7.0);
        lp.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Le, 6.0);
        let (x, obj) = solve_mip(&lp, &MipOptions::default()).expect_optimal();
        assert!(near(obj, -20.0), "got {obj}");
        assert_eq!(
            x.iter().map(|v| v.round() as i64).collect::<Vec<_>>(),
            vec![0, 1, 1]
        );
    }

    #[test]
    fn binary_infeasible() {
        let mut lp = LinearProgram::new();
        let a = lp.add_binary_var(1.0);
        lp.add_constraint(vec![(a, 1.0)], Ge, 2.0);
        assert_eq!(solve_mip(&lp, &MipOptions::default()), MipSolution::Infeasible);
    }

    #[test]
    fn mixed_continuous_and_binary() {
        // min 5y + x  s.t. x >= 3 - 10y, x >= 0, y binary.
        // y=0 => x=3, cost 3; y=1 => x=0, cost 5. Optimal 3.
        let mut lp = LinearProgram::new();
        let y = lp.add_binary_var(5.0);
        let x = lp.add_var(1.0, 0.0, f64::INFINITY);
        lp.add_constraint(vec![(x, 1.0), (y, 10.0)], Ge, 3.0);
        let (sol, obj) = solve_mip(&lp, &MipOptions::default()).expect_optimal();
        assert!(near(obj, 3.0), "got {obj}");
        assert!(near(sol[0], 0.0));
        assert!(near(sol[1], 3.0));
    }

    #[test]
    fn at_most_one_structure() {
        // The suspend-plan skeleton: per operator, sum of goback vars <= 1;
        // costs drive selection.
        let mut lp = LinearProgram::new();
        let x1 = lp.add_binary_var(2.0);
        let x2 = lp.add_binary_var(1.0);
        // Choosing neither costs 10 (modeled as constant via objective trick):
        // min 10(1 - x1 - x2) + 2x1 + 1x2 = 10 - 8x1 - 9x2.
        let mut lp2 = LinearProgram::new();
        let y1 = lp2.add_binary_var(-8.0);
        let y2 = lp2.add_binary_var(-9.0);
        lp2.add_constraint(vec![(y1, 1.0), (y2, 1.0)], Le, 1.0);
        let (x, obj) = solve_mip(&lp2, &MipOptions::default()).expect_optimal();
        assert!(near(obj, -9.0));
        assert!(near(x[0], 0.0) && near(x[1], 1.0));
        let _ = (x1, x2, &lp);
    }

    #[test]
    fn exhaustive_agreement_on_random_small_mips() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..60 {
            let nv = rng.gen_range(1..=6);
            let mut lp = LinearProgram::new();
            let vars: Vec<VarId> = (0..nv)
                .map(|_| lp.add_binary_var(rng.gen_range(-5.0..5.0)))
                .collect();
            for _ in 0..rng.gen_range(0..=4) {
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for &v in &vars {
                    if rng.gen_bool(0.7) {
                        terms.push((v, rng.gen_range(-3.0..3.0)));
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                let op = if rng.gen_bool(0.5) { Le } else { Ge };
                lp.add_constraint(terms, op, rng.gen_range(-2.0..4.0));
            }

            // Brute force over all 2^nv assignments.
            let mut best: Option<f64> = None;
            for mask in 0..(1u32 << nv) {
                let x: Vec<f64> = (0..nv)
                    .map(|i| ((mask >> i) & 1) as f64)
                    .collect();
                if lp.is_feasible(&x, 1e-9) {
                    let obj = lp.objective_value(&x);
                    best = Some(best.map_or(obj, |b: f64| b.min(obj)));
                }
            }

            match (solve_mip(&lp, &MipOptions::default()), best) {
                (MipSolution::Optimal { objective, .. }, Some(b)) => {
                    assert!(
                        near(objective, b),
                        "trial {trial}: solver {objective} vs brute {b}\n{lp}"
                    );
                }
                (MipSolution::Infeasible, None) => {}
                (got, want) => panic!("trial {trial}: solver {got:?} vs brute {want:?}"),
            }
        }
    }

    #[test]
    fn node_count_reported() {
        let mut lp = LinearProgram::new();
        let a = lp.add_binary_var(-1.0);
        let b = lp.add_binary_var(-1.0);
        lp.add_constraint(vec![(a, 1.0), (b, 1.0)], Le, 1.5);
        match solve_mip(&lp, &MipOptions::default()) {
            MipSolution::Optimal { nodes, .. } => assert!(nodes >= 1),
            other => panic!("{other:?}"),
        }
    }

    /// A knapsack whose relaxation is fractional, so the tree has real work.
    fn fractional_knapsack() -> LinearProgram {
        let mut lp = LinearProgram::new();
        let a = lp.add_binary_var(-10.0);
        let b = lp.add_binary_var(-13.0);
        let c = lp.add_binary_var(-7.0);
        lp.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Le, 6.0);
        lp
    }

    #[test]
    fn completed_search_reports_zero_gap_and_no_exhaustion() {
        let (sol, stats) =
            solve_mip_with_stats(&fractional_knapsack(), &SolveBudget::unlimited());
        match sol {
            MipSolution::Optimal { objective, .. } => assert!(near(objective, -20.0)),
            other => panic!("{other:?}"),
        }
        assert!(!stats.budget_exhausted);
        assert!(!stats.rounded);
        assert!(near(stats.incumbent_gap, 0.0));
        assert!(stats.nodes >= 1 && stats.pivots >= 1);
    }

    #[test]
    fn zero_node_budget_returns_rounded_relaxation() {
        // No tree nodes at all: the solver must fall back to rounding the
        // root relaxation, and the rounding must be model-feasible.
        let lp = fractional_knapsack();
        let (sol, stats) = solve_mip_with_stats(&lp, &SolveBudget::nodes(0));
        assert!(stats.budget_exhausted);
        assert!(stats.rounded);
        match sol {
            MipSolution::Heuristic { x, objective } => {
                assert!(lp.is_feasible(&x, 1e-6), "rounded point infeasible: {x:?}");
                assert!(near(lp.objective_value(&x), objective));
                // Gap is measured against the root bound, which is a true
                // lower bound, so the heuristic can never beat it.
                assert!(stats.incumbent_gap >= -1e-9);
            }
            other => panic!("expected heuristic, got {other:?}"),
        }
    }

    #[test]
    fn pivot_budget_also_stops_the_search() {
        let lp = fractional_knapsack();
        let (sol, stats) = solve_mip_with_stats(
            &lp,
            &SolveBudget {
                max_nodes: usize::MAX,
                max_pivots: 1,
            },
        );
        assert!(stats.budget_exhausted, "one pivot cannot finish this tree");
        match sol {
            MipSolution::Heuristic { x, .. } => assert!(lp.is_feasible(&x, 1e-6)),
            MipSolution::Infeasible => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn heuristic_objective_never_beats_true_optimum() {
        // For every budget size the anytime answer is feasible and its
        // objective is >= the proved optimum (minimization).
        let lp = fractional_knapsack();
        let (opt, _) = solve_mip_with_stats(&lp, &SolveBudget::unlimited());
        let MipSolution::Optimal { objective: best, .. } = opt else {
            panic!("knapsack must be solvable");
        };
        for nodes in 0..6 {
            let (sol, stats) = solve_mip_with_stats(&lp, &SolveBudget::nodes(nodes));
            match sol {
                MipSolution::Optimal { objective, .. } => assert!(near(objective, best)),
                MipSolution::Heuristic { x, objective } => {
                    assert!(lp.is_feasible(&x, 1e-6));
                    assert!(objective >= best - 1e-9, "{objective} beats optimum {best}");
                    assert!(stats.budget_exhausted);
                }
                other => panic!("budget {nodes}: {other:?}"),
            }
        }
    }

    #[test]
    fn legacy_wrapper_maps_budget_incumbent_to_optimal() {
        // The pre-anytime API reported a budget-expired incumbent as
        // Optimal; the wrapper must preserve that for its callers.
        let lp = fractional_knapsack();
        for max_nodes in 1..6 {
            match solve_mip(&lp, &MipOptions { max_nodes }) {
                MipSolution::Optimal { x, .. } => assert!(lp.is_feasible(&x, 1e-6)),
                MipSolution::Infeasible => {} // no incumbent yet at this budget
                other => panic!("max_nodes {max_nodes}: {other:?}"),
            }
        }
    }
}
