//! Best-first branch-and-bound over binary variables.
//!
//! The LP relaxation (via [`solve_lp`]) provides lower bounds; branching
//! fixes the most fractional binary variable to 0 and 1. For the
//! suspend-plan programs of the paper the relaxation is usually integral
//! or nearly so, so the tree stays tiny.

use crate::problem::LinearProgram;
use crate::simplex::{solve_lp, LpOutcome};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Integrality tolerance.
const INT_TOL: f64 = 1e-6;

/// Options controlling the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct MipOptions {
    /// Maximum number of explored nodes (defensive cap).
    pub max_nodes: usize,
}

impl Default for MipOptions {
    fn default() -> Self {
        Self { max_nodes: 100_000 }
    }
}

/// Result of a MIP solve.
#[derive(Debug, Clone, PartialEq)]
pub enum MipSolution {
    /// Optimal integral solution found.
    Optimal {
        /// The assignment.
        x: Vec<f64>,
        /// Objective value.
        objective: f64,
        /// Number of branch-and-bound nodes explored.
        nodes: usize,
    },
    /// No feasible integral assignment exists.
    Infeasible,
    /// Objective unbounded below.
    Unbounded,
}

impl MipSolution {
    /// Unwrap the optimal assignment (test helper).
    pub fn expect_optimal(self) -> (Vec<f64>, f64) {
        match self {
            MipSolution::Optimal { x, objective, .. } => (x, objective),
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}

struct Node {
    bound: f64,
    program: LinearProgram,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    // BinaryHeap is a max-heap; invert so the *lowest* bound pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.bound.total_cmp(&self.bound)
    }
}

fn most_fractional_binary(lp: &LinearProgram, x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &is_bin) in lp.binaries().iter().enumerate() {
        if !is_bin {
            continue;
        }
        let frac = (x[i] - x[i].round()).abs();
        if frac > INT_TOL {
            let dist = (x[i].fract() - 0.5).abs();
            if best.is_none_or(|(_, d)| dist < d) {
                best = Some((i, dist));
            }
        }
    }
    best.map(|(i, _)| i)
}

/// Solve `lp` to integral optimality over its binary variables.
pub fn solve_mip(lp: &LinearProgram, opts: &MipOptions) -> MipSolution {
    // Root relaxation.
    let root = match solve_lp(lp) {
        LpOutcome::Optimal(s) => s,
        LpOutcome::Infeasible => return MipSolution::Infeasible,
        LpOutcome::Unbounded => return MipSolution::Unbounded,
    };

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        bound: root.objective,
        program: lp.clone(),
    });

    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    let mut nodes = 0usize;

    while let Some(node) = heap.pop() {
        if nodes >= opts.max_nodes {
            break;
        }
        // Prune by bound against the incumbent.
        if let Some((_, inc_obj)) = &incumbent {
            if node.bound >= *inc_obj - 1e-9 {
                continue;
            }
        }
        nodes += 1;
        let sol = match solve_lp(&node.program) {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => return MipSolution::Unbounded,
        };
        if let Some((_, inc_obj)) = &incumbent {
            if sol.objective >= *inc_obj - 1e-9 {
                continue;
            }
        }
        match most_fractional_binary(lp, &sol.x) {
            None => {
                // Integral: round binaries exactly and record incumbent.
                let mut x = sol.x.clone();
                for (i, &b) in lp.binaries().iter().enumerate() {
                    if b {
                        x[i] = x[i].round();
                    }
                }
                let obj = lp.objective_value(&x);
                let better = incumbent.as_ref().is_none_or(|(_, o)| obj < *o - 1e-12);
                if better {
                    incumbent = Some((x, obj));
                }
            }
            Some(v) => {
                for val in [0.0, 1.0] {
                    let child = node.program.with_fixed(crate::problem::VarId(v), val);
                    heap.push(Node {
                        bound: sol.objective,
                        program: child,
                    });
                }
            }
        }
    }

    match incumbent {
        Some((x, objective)) => MipSolution::Optimal {
            x,
            objective,
            nodes,
        },
        None => MipSolution::Infeasible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{ConstraintOp::*, LinearProgram, VarId};

    fn near(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn knapsack_small() {
        // max 10a + 13b + 7c with 3a + 4b + 2c <= 6  (min of negation)
        // Optimal integral: a=0, b=1, c=1 => 20.
        let mut lp = LinearProgram::new();
        let a = lp.add_binary_var(-10.0);
        let b = lp.add_binary_var(-13.0);
        let c = lp.add_binary_var(-7.0);
        lp.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Le, 6.0);
        let (x, obj) = solve_mip(&lp, &MipOptions::default()).expect_optimal();
        assert!(near(obj, -20.0), "got {obj}");
        assert_eq!(
            x.iter().map(|v| v.round() as i64).collect::<Vec<_>>(),
            vec![0, 1, 1]
        );
    }

    #[test]
    fn binary_infeasible() {
        let mut lp = LinearProgram::new();
        let a = lp.add_binary_var(1.0);
        lp.add_constraint(vec![(a, 1.0)], Ge, 2.0);
        assert_eq!(solve_mip(&lp, &MipOptions::default()), MipSolution::Infeasible);
    }

    #[test]
    fn mixed_continuous_and_binary() {
        // min 5y + x  s.t. x >= 3 - 10y, x >= 0, y binary.
        // y=0 => x=3, cost 3; y=1 => x=0, cost 5. Optimal 3.
        let mut lp = LinearProgram::new();
        let y = lp.add_binary_var(5.0);
        let x = lp.add_var(1.0, 0.0, f64::INFINITY);
        lp.add_constraint(vec![(x, 1.0), (y, 10.0)], Ge, 3.0);
        let (sol, obj) = solve_mip(&lp, &MipOptions::default()).expect_optimal();
        assert!(near(obj, 3.0), "got {obj}");
        assert!(near(sol[0], 0.0));
        assert!(near(sol[1], 3.0));
    }

    #[test]
    fn at_most_one_structure() {
        // The suspend-plan skeleton: per operator, sum of goback vars <= 1;
        // costs drive selection.
        let mut lp = LinearProgram::new();
        let x1 = lp.add_binary_var(2.0);
        let x2 = lp.add_binary_var(1.0);
        // Choosing neither costs 10 (modeled as constant via objective trick):
        // min 10(1 - x1 - x2) + 2x1 + 1x2 = 10 - 8x1 - 9x2.
        let mut lp2 = LinearProgram::new();
        let y1 = lp2.add_binary_var(-8.0);
        let y2 = lp2.add_binary_var(-9.0);
        lp2.add_constraint(vec![(y1, 1.0), (y2, 1.0)], Le, 1.0);
        let (x, obj) = solve_mip(&lp2, &MipOptions::default()).expect_optimal();
        assert!(near(obj, -9.0));
        assert!(near(x[0], 0.0) && near(x[1], 1.0));
        let _ = (x1, x2, &lp);
    }

    #[test]
    fn exhaustive_agreement_on_random_small_mips() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..60 {
            let nv = rng.gen_range(1..=6);
            let mut lp = LinearProgram::new();
            let vars: Vec<VarId> = (0..nv)
                .map(|_| lp.add_binary_var(rng.gen_range(-5.0..5.0)))
                .collect();
            for _ in 0..rng.gen_range(0..=4) {
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for &v in &vars {
                    if rng.gen_bool(0.7) {
                        terms.push((v, rng.gen_range(-3.0..3.0)));
                    }
                }
                if terms.is_empty() {
                    continue;
                }
                let op = if rng.gen_bool(0.5) { Le } else { Ge };
                lp.add_constraint(terms, op, rng.gen_range(-2.0..4.0));
            }

            // Brute force over all 2^nv assignments.
            let mut best: Option<f64> = None;
            for mask in 0..(1u32 << nv) {
                let x: Vec<f64> = (0..nv)
                    .map(|i| ((mask >> i) & 1) as f64)
                    .collect();
                if lp.is_feasible(&x, 1e-9) {
                    let obj = lp.objective_value(&x);
                    best = Some(best.map_or(obj, |b: f64| b.min(obj)));
                }
            }

            match (solve_mip(&lp, &MipOptions::default()), best) {
                (MipSolution::Optimal { objective, .. }, Some(b)) => {
                    assert!(
                        near(objective, b),
                        "trial {trial}: solver {objective} vs brute {b}\n{lp}"
                    );
                }
                (MipSolution::Infeasible, None) => {}
                (got, want) => panic!("trial {trial}: solver {got:?} vs brute {want:?}"),
            }
        }
    }

    #[test]
    fn node_count_reported() {
        let mut lp = LinearProgram::new();
        let a = lp.add_binary_var(-1.0);
        let b = lp.add_binary_var(-1.0);
        lp.add_constraint(vec![(a, 1.0), (b, 1.0)], Le, 1.5);
        match solve_mip(&lp, &MipOptions::default()) {
            MipSolution::Optimal { nodes, .. } => assert!(nodes >= 1),
            other => panic!("{other:?}"),
        }
    }
}
