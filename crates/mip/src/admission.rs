//! Admission pricing for the multi-session server.
//!
//! When a new session asks to start, the server must decide whether the
//! memory it would pin can be freed cheaply enough. Each live session is a
//! potential preemption victim with a *signal* — its estimated suspend
//! cost from one root LP plus rounding (`victim_signal`) — and a memory
//! footprint it would release when parked. The admission price of a demand
//! is the total signal of the victims the scheduler would actually
//! preempt.
//!
//! The scheduler preempts victims in ascending-signal order (cheapest
//! suspend first), so the price here walks the same order: this is the
//! cost of the preemption sequence the server will really run, not an
//! abstract optimum over victim subsets. The full set-cover optimum is a
//! knapsack the 100-microsecond admission path has no business solving;
//! ascending-signal greedy is within one victim of it and — more
//! importantly — truthful about what the scheduler does next.

/// Price of admitting a session that needs `demand` memory units when
/// `free` units are unclaimed and `victims` lists each live session as
/// `(victim_signal, memory_freed_if_preempted)`.
///
/// Returns `Some(0.0)` when the demand fits in free memory, `Some(total
/// signal)` of the cheapest ascending-signal victim prefix that frees
/// enough, and `None` when preempting *every* victim still would not fit
/// the demand (the session cannot be admitted at any price).
///
/// Non-finite or negative signals are treated as infinitely expensive
/// victims: they sort last and poison the price if reached (`None` is
/// returned rather than a meaningless sum).
pub fn admission_price(demand: u64, free: u64, victims: &[(f64, u64)]) -> Option<f64> {
    if demand <= free {
        return Some(0.0);
    }
    let mut order: Vec<&(f64, u64)> = victims.iter().collect();
    // Ascending signal; ties break toward the bigger release, then stable.
    order.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(b.1.cmp(&a.1))
    });
    let mut freed = free;
    let mut price = 0.0;
    for (signal, mem) in order {
        if !signal.is_finite() || *signal < 0.0 {
            return None;
        }
        price += signal;
        freed = freed.saturating_add(*mem);
        if freed >= demand {
            return Some(price);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_in_free_memory_is_free() {
        assert_eq!(admission_price(100, 100, &[]), Some(0.0));
        assert_eq!(admission_price(0, 0, &[]), Some(0.0));
        assert_eq!(admission_price(50, 100, &[(1.0, 10)]), Some(0.0));
    }

    #[test]
    fn walks_victims_in_ascending_signal_order() {
        // Needs 100 more; cheapest-first picks 2.0 (60) then 3.0 (50).
        let victims = [(5.0, 200), (2.0, 60), (3.0, 50)];
        assert_eq!(admission_price(100, 0, &victims), Some(5.0));
        // A bigger demand reaches the expensive victim too.
        assert_eq!(admission_price(250, 0, &victims), Some(10.0));
    }

    #[test]
    fn impossible_demand_has_no_price() {
        assert_eq!(admission_price(1_000, 0, &[(1.0, 10), (2.0, 20)]), None);
        assert_eq!(admission_price(1, 0, &[]), None);
    }

    #[test]
    fn infinite_signals_poison_only_when_reached() {
        // The infinite victim sorts last and is never needed.
        let victims = [(f64::INFINITY, 500), (1.0, 100)];
        assert_eq!(admission_price(100, 0, &victims), Some(1.0));
        // Needed → unpriceable.
        assert_eq!(admission_price(400, 0, &victims), None);
    }

    #[test]
    fn signal_ties_prefer_the_bigger_release() {
        let victims = [(1.0, 10), (1.0, 100)];
        assert_eq!(admission_price(50, 0, &victims), Some(1.0));
    }
}
