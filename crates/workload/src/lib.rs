//! # qsr-workload
//!
//! Synthetic table generators for the paper's experiments:
//!
//! * uniform tables with random unique integer keys and fixed-width
//!   payloads (the paper's R, S, T: 200-byte tuples),
//! * the two-regime *skewed* table of Figure 12 (a filter predicate
//!   selects 1-in-10 tuples over the first ~2/3 of the table and 9-in-10
//!   over the rest, for an effective selectivity of 0.385),
//! * presorted tables (Example 10 assumes S is already sorted on the join
//!   column).
//!
//! Every generator registers the table in the database catalog and can
//! optionally build a sorted index on a column (for index NLJ).
//!
//! The *filter trick*: experiments sweep "filter selectivity". To make a
//! predicate with exact selectivity `s`, each row carries a `sel` column
//! holding a deterministic pseudo-random value in `0..1000`; the predicate
//! `sel < 1000*s` then selects the desired fraction, uniformly spread.

pub mod corpus;
pub mod gen;

pub use corpus::{case_by_name, cases, populate, populate_with, OracleCase, SkewProfile};
pub use gen::{
    build_index, generate_skewed_table, generate_table, KeyDist, TableSpec, SKEW_SEL_HIGH,
    SKEW_SEL_LOW, SKEW_SWITCH_FRACTION,
};
