//! Deterministic query corpus for the differential suspend-point oracle.
//!
//! Each case is a small plan over tiny fixed-seed tables, sized so that an
//! exhaustive stride-1 suspend-point sweep (one suspend/resume per work
//! unit) stays affordable in CI while still driving every operator through
//! its interesting states: the block-NLJ outer buffer refills three times,
//! the sort spills multiple runs, the hash join spills partitions, the
//! hybrid partition stays resident, and the aggregates cross group
//! boundaries. The corpus spans all six stateful operators — block NLJ,
//! index NLJ, sort, merge join, hash join, hash aggregate — plus the
//! pass-through ones (filter, project, streaming aggregate, distinct) as
//! composites.

use crate::gen::{build_index, generate_table, KeyDist, TableSpec};
use qsr_exec::{AggFn, PlanSpec, Predicate};
use qsr_storage::{Database, Result};
use std::sync::Arc;

/// One oracle workload: a named deterministic plan over the corpus tables.
pub struct OracleCase {
    /// Stable case name, used in repro tokens (`QSR_ORACLE_CASE=<name>`).
    pub name: &'static str,
    /// The plan to execute.
    pub plan: PlanSpec,
}

/// Key-distribution profile for the grace/multipass tables (`ga`, `gb`,
/// `gc`). Only those tables vary: the legacy `o*` tables are identical
/// under every profile, so pre-existing cases keep their goldens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SkewProfile {
    /// Duplicate-heavy build side (the depth-forcing default: the hot key
    /// never splits, so recursion bottoms out in the NLJ fallback).
    #[default]
    Default,
    /// Zipf-skewed join keys on both sides.
    Zipf,
    /// Duplicate-heavy keys on both sides.
    Dup,
    /// Reverse-sorted keys (adversarial run formation for sort; unique
    /// keys for the join).
    Rev,
}

/// Generate the corpus tables (fixed seeds; fully deterministic) and the
/// index the index-NLJ case probes. Safe to call on any fresh database.
pub fn populate(db: &Arc<Database>) -> Result<()> {
    populate_with(db, SkewProfile::Default)
}

/// [`populate`] with an explicit skew profile for the grace tables.
pub fn populate_with(db: &Arc<Database>, profile: SkewProfile) -> Result<()> {
    // `oa` is the driving table; `ob` joins it on overlapping keys (both
    // key sets are permutations of a 0-based range, so ob's 20 keys all
    // match); `oc` is presorted for the merge-join's right side.
    generate_table(db, &TableSpec::new("oa", 48).payload(24).seed(11))?;
    generate_table(db, &TableSpec::new("ob", 20).payload(24).seed(12))?;
    generate_table(db, &TableSpec::new("oc", 16).payload(24).seed(13).sorted())?;
    build_index(db, "ob", 0)?;
    // Grace tables: `gb` builds against `ga` in the recursive-spill join;
    // `gc` feeds the multi-pass sort (60 rows / buffer 6 → 10 sublists).
    let (ga_dist, gb_dist, gc_dist) = match profile {
        SkewProfile::Default => (KeyDist::Unique, KeyDist::DupHeavy, KeyDist::Unique),
        SkewProfile::Zipf => (KeyDist::Zipf, KeyDist::Zipf, KeyDist::Zipf),
        SkewProfile::Dup => (KeyDist::DupHeavy, KeyDist::DupHeavy, KeyDist::Unique),
        SkewProfile::Rev => (KeyDist::Reversed, KeyDist::Unique, KeyDist::Reversed),
    };
    generate_table(db, &TableSpec::new("ga", 54).payload(24).seed(14).dist(ga_dist))?;
    generate_table(db, &TableSpec::new("gb", 27).payload(24).seed(15).dist(gb_dist))?;
    generate_table(db, &TableSpec::new("gc", 60).payload(24).seed(16).dist(gc_dist))?;
    Ok(())
}

fn scan(table: &str) -> Box<PlanSpec> {
    Box::new(PlanSpec::TableScan {
        table: table.into(),
    })
}

fn sel_filter(table: &str, value: i64) -> Box<PlanSpec> {
    Box::new(PlanSpec::Filter {
        input: scan(table),
        predicate: Predicate::IntLt { col: 1, value },
    })
}

/// The oracle cases. Names are stable across versions: repro tokens embed
/// them, so renaming a case invalidates recorded repros.
pub fn cases() -> Vec<OracleCase> {
    vec![
        OracleCase {
            name: "block-nlj",
            plan: PlanSpec::BlockNlj {
                outer: sel_filter("oa", 700),
                inner: scan("ob"),
                outer_key: 0,
                inner_key: 0,
                buffer_tuples: 12,
            },
        },
        OracleCase {
            name: "index-nlj",
            plan: PlanSpec::IndexNlj {
                outer: sel_filter("oa", 700),
                inner_table: "ob".into(),
                outer_key: 0,
                inner_key: 0,
            },
        },
        OracleCase {
            name: "sort",
            plan: PlanSpec::Sort {
                input: Box::new(PlanSpec::Project {
                    input: scan("oa"),
                    columns: vec![1, 0],
                }),
                key: 0,
                buffer_tuples: 12,
            },
        },
        OracleCase {
            name: "merge-join",
            plan: PlanSpec::MergeJoin {
                left: Box::new(PlanSpec::Sort {
                    input: scan("oa"),
                    key: 0,
                    buffer_tuples: 16,
                }),
                // `oc` is presorted on its key: exercises the sorted-scan
                // path on one side while the other resumes mid-sort.
                right: scan("oc"),
                left_key: 0,
                right_key: 0,
            },
        },
        OracleCase {
            name: "hash-join",
            plan: PlanSpec::HashJoin {
                build: scan("ob"),
                probe: scan("oa"),
                build_key: 0,
                probe_key: 0,
                partitions: 3,
                hybrid: true,
            },
        },
        OracleCase {
            name: "hash-agg",
            plan: PlanSpec::HashAgg {
                input: scan("oa"),
                group_col: 1,
                agg_col: 0,
                func: AggFn::Sum,
                partitions: 3,
            },
        },
        OracleCase {
            name: "stream-agg",
            plan: PlanSpec::StreamAgg {
                input: Box::new(PlanSpec::Sort {
                    input: scan("oa"),
                    key: 1,
                    buffer_tuples: 12,
                }),
                group_col: Some(1),
                agg_col: 0,
                func: AggFn::Max,
            },
        },
        OracleCase {
            // Recursive grace hash join: budget 3 over a duplicate-heavy
            // 27-row build forces spills at levels 0 and 1 and the
            // block-NLJ fallback at depth 2.
            name: "grace-join-deep",
            plan: PlanSpec::MemoryBudget {
                input: Box::new(PlanSpec::HashJoin {
                    build: scan("gb"),
                    probe: scan("ga"),
                    build_key: 0,
                    probe_key: 0,
                    partitions: 3,
                    hybrid: false,
                }),
                mem_budget: 3,
                merge_fanin: 0,
            },
        },
        OracleCase {
            // Multi-pass external sort: 60 rows at buffer 6 flush 10
            // sublists; fan-in 2 needs ≥ 3 intermediate merge passes
            // before the final merge.
            name: "multipass-sort",
            plan: PlanSpec::MemoryBudget {
                input: Box::new(PlanSpec::Sort {
                    input: scan("gc"),
                    key: 0,
                    buffer_tuples: 6,
                }),
                mem_budget: 0,
                merge_fanin: 2,
            },
        },
        OracleCase {
            name: "distinct",
            plan: PlanSpec::Distinct {
                input: Box::new(PlanSpec::Sort {
                    input: Box::new(PlanSpec::Project {
                        input: scan("ob"),
                        columns: vec![1],
                    }),
                    key: 0,
                    buffer_tuples: 8,
                }),
            },
        },
    ]
}

/// Look up a case by name (repro-token replay).
pub fn case_by_name(name: &str) -> Option<OracleCase> {
    cases().into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsr_exec::QueryExecution;
    use qsr_storage::Tuple;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new() -> Self {
            static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let p = std::env::temp_dir().join(format!(
                "qsr-corpus-test-{}-{}",
                std::process::id(),
                N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn run_all(dir: &std::path::Path) -> Vec<(String, Vec<Tuple>)> {
        let db = Database::open_default(dir).unwrap();
        populate(&db).unwrap();
        cases()
            .into_iter()
            .map(|c| {
                let mut exec = QueryExecution::start(db.clone(), c.plan).unwrap();
                let (rows, done) = exec.run().unwrap();
                assert!(done, "case {} must finish uninterrupted", c.name);
                assert!(!rows.is_empty(), "case {} produced no output", c.name);
                (c.name.to_string(), rows)
            })
            .collect()
    }

    #[test]
    fn corpus_runs_and_is_deterministic_across_databases() {
        let d1 = TempDir::new();
        let d2 = TempDir::new();
        assert_eq!(run_all(&d1.0), run_all(&d2.0));
    }

    #[test]
    fn case_names_are_unique_and_resolvable() {
        let names: Vec<_> = cases().iter().map(|c| c.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(case_by_name(n).is_some());
        }
        assert!(case_by_name("no-such-case").is_none());
    }
}
