//! Deterministic query corpus for the differential suspend-point oracle.
//!
//! Each case is a small plan over tiny fixed-seed tables, sized so that an
//! exhaustive stride-1 suspend-point sweep (one suspend/resume per work
//! unit) stays affordable in CI while still driving every operator through
//! its interesting states: the block-NLJ outer buffer refills three times,
//! the sort spills multiple runs, the hash join spills partitions, the
//! hybrid partition stays resident, and the aggregates cross group
//! boundaries. The corpus spans all six stateful operators — block NLJ,
//! index NLJ, sort, merge join, hash join, hash aggregate — plus the
//! pass-through ones (filter, project, streaming aggregate, distinct) as
//! composites.

use crate::gen::{build_index, generate_table, TableSpec};
use qsr_exec::{AggFn, PlanSpec, Predicate};
use qsr_storage::{Database, Result};
use std::sync::Arc;

/// One oracle workload: a named deterministic plan over the corpus tables.
pub struct OracleCase {
    /// Stable case name, used in repro tokens (`QSR_ORACLE_CASE=<name>`).
    pub name: &'static str,
    /// The plan to execute.
    pub plan: PlanSpec,
}

/// Generate the corpus tables (fixed seeds; fully deterministic) and the
/// index the index-NLJ case probes. Safe to call on any fresh database.
pub fn populate(db: &Arc<Database>) -> Result<()> {
    // `oa` is the driving table; `ob` joins it on overlapping keys (both
    // key sets are permutations of a 0-based range, so ob's 20 keys all
    // match); `oc` is presorted for the merge-join's right side.
    generate_table(db, &TableSpec::new("oa", 48).payload(24).seed(11))?;
    generate_table(db, &TableSpec::new("ob", 20).payload(24).seed(12))?;
    generate_table(db, &TableSpec::new("oc", 16).payload(24).seed(13).sorted())?;
    build_index(db, "ob", 0)?;
    Ok(())
}

fn scan(table: &str) -> Box<PlanSpec> {
    Box::new(PlanSpec::TableScan {
        table: table.into(),
    })
}

fn sel_filter(table: &str, value: i64) -> Box<PlanSpec> {
    Box::new(PlanSpec::Filter {
        input: scan(table),
        predicate: Predicate::IntLt { col: 1, value },
    })
}

/// The oracle cases. Names are stable across versions: repro tokens embed
/// them, so renaming a case invalidates recorded repros.
pub fn cases() -> Vec<OracleCase> {
    vec![
        OracleCase {
            name: "block-nlj",
            plan: PlanSpec::BlockNlj {
                outer: sel_filter("oa", 700),
                inner: scan("ob"),
                outer_key: 0,
                inner_key: 0,
                buffer_tuples: 12,
            },
        },
        OracleCase {
            name: "index-nlj",
            plan: PlanSpec::IndexNlj {
                outer: sel_filter("oa", 700),
                inner_table: "ob".into(),
                outer_key: 0,
                inner_key: 0,
            },
        },
        OracleCase {
            name: "sort",
            plan: PlanSpec::Sort {
                input: Box::new(PlanSpec::Project {
                    input: scan("oa"),
                    columns: vec![1, 0],
                }),
                key: 0,
                buffer_tuples: 12,
            },
        },
        OracleCase {
            name: "merge-join",
            plan: PlanSpec::MergeJoin {
                left: Box::new(PlanSpec::Sort {
                    input: scan("oa"),
                    key: 0,
                    buffer_tuples: 16,
                }),
                // `oc` is presorted on its key: exercises the sorted-scan
                // path on one side while the other resumes mid-sort.
                right: scan("oc"),
                left_key: 0,
                right_key: 0,
            },
        },
        OracleCase {
            name: "hash-join",
            plan: PlanSpec::HashJoin {
                build: scan("ob"),
                probe: scan("oa"),
                build_key: 0,
                probe_key: 0,
                partitions: 3,
                hybrid: true,
            },
        },
        OracleCase {
            name: "hash-agg",
            plan: PlanSpec::HashAgg {
                input: scan("oa"),
                group_col: 1,
                agg_col: 0,
                func: AggFn::Sum,
                partitions: 3,
            },
        },
        OracleCase {
            name: "stream-agg",
            plan: PlanSpec::StreamAgg {
                input: Box::new(PlanSpec::Sort {
                    input: scan("oa"),
                    key: 1,
                    buffer_tuples: 12,
                }),
                group_col: Some(1),
                agg_col: 0,
                func: AggFn::Max,
            },
        },
        OracleCase {
            name: "distinct",
            plan: PlanSpec::Distinct {
                input: Box::new(PlanSpec::Sort {
                    input: Box::new(PlanSpec::Project {
                        input: scan("ob"),
                        columns: vec![1],
                    }),
                    key: 0,
                    buffer_tuples: 8,
                }),
            },
        },
    ]
}

/// Look up a case by name (repro-token replay).
pub fn case_by_name(name: &str) -> Option<OracleCase> {
    cases().into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsr_exec::QueryExecution;
    use qsr_storage::Tuple;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new() -> Self {
            static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let p = std::env::temp_dir().join(format!(
                "qsr-corpus-test-{}-{}",
                std::process::id(),
                N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn run_all(dir: &std::path::Path) -> Vec<(String, Vec<Tuple>)> {
        let db = Database::open_default(dir).unwrap();
        populate(&db).unwrap();
        cases()
            .into_iter()
            .map(|c| {
                let mut exec = QueryExecution::start(db.clone(), c.plan).unwrap();
                let (rows, done) = exec.run().unwrap();
                assert!(done, "case {} must finish uninterrupted", c.name);
                assert!(!rows.is_empty(), "case {} produced no output", c.name);
                (c.name.to_string(), rows)
            })
            .collect()
    }

    #[test]
    fn corpus_runs_and_is_deterministic_across_databases() {
        let d1 = TempDir::new();
        let d2 = TempDir::new();
        assert_eq!(run_all(&d1.0), run_all(&d2.0));
    }

    #[test]
    fn case_names_are_unique_and_resolvable() {
        let names: Vec<_> = cases().iter().map(|c| c.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        for n in names {
            assert!(case_by_name(n).is_some());
        }
        assert!(case_by_name("no-such-case").is_none());
    }
}
