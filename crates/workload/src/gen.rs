//! Table generators.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use qsr_storage::{
    Column, DataType, Database, HeapFile, IndexBuilder, Result, Schema, TableInfo, Tuple, Value,
};
use std::sync::Arc;

/// Fraction of the skewed table (Figure 12) generated in the low-pass
/// regime; `0.6437 * 0.1 + 0.3563 * 0.9 = 0.385`, the paper's effective
/// selectivity.
pub const SKEW_SWITCH_FRACTION: f64 = 0.6437;
/// Selectivity of the fixed filter over the first regime.
pub const SKEW_SEL_LOW: f64 = 0.1;
/// Selectivity of the fixed filter over the second regime.
pub const SKEW_SEL_HIGH: f64 = 0.9;

/// Key distribution of a generated table. The non-uniform variants are
/// adversarial inputs for the memory-budgeted operators: skew defeats
/// one-level hash partitioning, duplicates never split no matter how deep
/// the recursion, and reversed order is the worst case for run formation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KeyDist {
    /// A (possibly sorted) permutation of `0..rows` — the paper's "random
    /// unique integer key values".
    #[default]
    Unique,
    /// Zipf-like skew: keys drawn log-uniformly from `0..rows`, so a few
    /// small keys carry most of the mass.
    Zipf,
    /// Duplicate-heavy: ~80% of rows share key 0; the rest are drawn
    /// uniformly. Recursive re-partitioning cannot split the hot key.
    DupHeavy,
    /// Keys `rows-1..0` strictly descending (presorted-reversed input).
    Reversed,
}

/// Specification of a synthetic table.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name registered in the catalog.
    pub name: String,
    /// Number of rows.
    pub rows: u64,
    /// Payload string width in bytes (the paper uses 200-byte tuples; with
    /// the key and selectivity columns, a payload of ~180 lands there).
    pub payload_bytes: usize,
    /// If true, keys are `0..rows` in order (a presorted table, Example 10);
    /// otherwise keys are a random permutation of `0..rows` (the paper's
    /// "random unique integer key values"). Only meaningful for
    /// [`KeyDist::Unique`].
    pub sorted_key: bool,
    /// Key distribution (default [`KeyDist::Unique`]).
    pub key_dist: KeyDist,
    /// RNG seed (generators are fully deterministic).
    pub seed: u64,
}

impl TableSpec {
    /// A conventional spec: random unique keys, 180-byte payload.
    pub fn new(name: impl Into<String>, rows: u64) -> Self {
        Self {
            name: name.into(),
            rows,
            payload_bytes: 180,
            sorted_key: false,
            key_dist: KeyDist::Unique,
            seed: 0x5eed,
        }
    }

    /// Builder-style: presorted keys.
    pub fn sorted(mut self) -> Self {
        self.sorted_key = true;
        self
    }

    /// Builder-style: payload width.
    pub fn payload(mut self, bytes: usize) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Builder-style: key distribution.
    pub fn dist(mut self, dist: KeyDist) -> Self {
        self.key_dist = dist;
        self
    }

    /// Builder-style: RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The standard experiment schema: `(key INT, sel INT, payload STR)`.
pub fn experiment_schema(table: &str) -> Schema {
    Schema::new(vec![
        Column::new(format!("{table}.key"), DataType::Int),
        Column::new(format!("{table}.sel"), DataType::Int),
        Column::new(format!("{table}.payload"), DataType::Str),
    ])
}

fn payload_for(key: i64, width: usize) -> String {
    // Deterministic, compressible-but-nonconstant filler.
    let mut s = format!("row-{key}-");
    while s.len() < width {
        s.push((b'a' + ((key as u64).wrapping_mul(31).wrapping_add(s.len() as u64) % 26) as u8) as char);
    }
    s.truncate(width);
    s
}

/// Draw the key column according to the spec's [`KeyDist`] (deterministic
/// for a given seed).
fn generate_keys(rng: &mut rand::rngs::StdRng, spec: &TableSpec) -> Vec<i64> {
    let n = spec.rows as i64;
    match spec.key_dist {
        KeyDist::Unique => {
            let mut keys: Vec<i64> = (0..n).collect();
            if !spec.sorted_key {
                keys.shuffle(rng);
            }
            keys
        }
        KeyDist::Zipf => (0..n)
            .map(|_| {
                // Log-uniform over [1, rows] → heavy mass on small keys.
                let u: f64 = rng.gen_range(0.0..1.0);
                (((n as f64).powf(u)) as i64 - 1).clamp(0, n - 1)
            })
            .collect(),
        KeyDist::DupHeavy => (0..n)
            .map(|_| {
                if rng.gen_bool(0.8) {
                    0
                } else {
                    rng.gen_range(0..n.max(1))
                }
            })
            .collect(),
        KeyDist::Reversed => (0..n).rev().collect(),
    }
}

/// Generate a table: keys follow the spec's distribution (by default a
/// possibly-sorted permutation of `0..rows`); `sel` is uniform in
/// `0..1000`.
pub fn generate_table(db: &Arc<Database>, spec: &TableSpec) -> Result<TableInfo> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let keys = generate_keys(&mut rng, spec);
    let schema = experiment_schema(&spec.name);
    let mut heap = HeapFile::create(db.pool().clone())?;
    for &key in &keys {
        let sel = rng.gen_range(0..1000i64);
        heap.append(&Tuple::new(vec![
            Value::Int(key),
            Value::Int(sel),
            Value::Str(payload_for(key, spec.payload_bytes)),
        ]))?;
    }
    heap.finish()?;
    let info = TableInfo {
        name: spec.name.clone(),
        file: heap.file_id(),
        schema,
        tuple_count: heap.tuple_count(),
        indexes: vec![],
        sorted_on: if spec.sorted_key && spec.key_dist == KeyDist::Unique {
            Some(0)
        } else {
            None
        },
    };
    db.with_catalog_mut(|c| c.create_table(info.clone()))?;
    Ok(info)
}

/// Generate the Figure 12 skewed table: over the first
/// [`SKEW_SWITCH_FRACTION`] of rows the `sel` column passes a `sel < 500`
/// filter with probability [`SKEW_SEL_LOW`]; over the remainder with
/// probability [`SKEW_SEL_HIGH`].
pub fn generate_skewed_table(db: &Arc<Database>, spec: &TableSpec) -> Result<TableInfo> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed);
    let mut keys: Vec<i64> = (0..spec.rows as i64).collect();
    if !spec.sorted_key {
        keys.shuffle(&mut rng);
    }
    let schema = experiment_schema(&spec.name);
    let switch = (spec.rows as f64 * SKEW_SWITCH_FRACTION) as u64;
    let mut heap = HeapFile::create(db.pool().clone())?;
    for (i, &key) in keys.iter().enumerate() {
        let p_pass = if (i as u64) < switch {
            SKEW_SEL_LOW
        } else {
            SKEW_SEL_HIGH
        };
        // `sel < 500` passes with probability p_pass.
        let sel = if rng.gen_bool(p_pass) {
            rng.gen_range(0..500i64)
        } else {
            rng.gen_range(500..1000i64)
        };
        heap.append(&Tuple::new(vec![
            Value::Int(key),
            Value::Int(sel),
            Value::Str(payload_for(key, spec.payload_bytes)),
        ]))?;
    }
    heap.finish()?;
    let info = TableInfo {
        name: spec.name.clone(),
        file: heap.file_id(),
        schema,
        tuple_count: heap.tuple_count(),
        indexes: vec![],
        sorted_on: None,
    };
    db.with_catalog_mut(|c| c.create_table(info.clone()))?;
    Ok(info)
}

/// Build a sorted index on integer column `column` of `table` and register
/// it in the catalog.
pub fn build_index(db: &Arc<Database>, table: &str, column: usize) -> Result<()> {
    let info = db.table(table)?;
    let heap = db.open_table_heap(table)?;
    let mut builder = IndexBuilder::new(db.pool().clone());
    let mut cursor = heap.cursor();
    while let Some((addr, t)) = cursor.next_with_addr()? {
        builder.add(t.get(column).as_int()?, addr);
    }
    let meta = builder.finish()?;
    let mut updated = info;
    updated.indexes.push((column, meta));
    db.with_catalog_mut(|c| c.update_table(updated))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TempDir(std::path::PathBuf);
    impl TempDir {
        fn new() -> Self {
            static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let p = std::env::temp_dir().join(format!(
                "qsr-workload-test-{}-{}",
                std::process::id(),
                N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
            ));
            std::fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    fn scan_all(db: &Arc<Database>, name: &str) -> Vec<Tuple> {
        let heap = db.open_table_heap(name).unwrap();
        let mut c = heap.cursor();
        let mut out = Vec::new();
        while let Some(t) = c.next().unwrap() {
            out.push(t);
        }
        out
    }

    #[test]
    fn uniform_table_has_unique_keys_and_uniform_sel() {
        let d = TempDir::new();
        let db = Database::open_default(&d.0).unwrap();
        let info = generate_table(&db, &TableSpec::new("r", 5000).payload(40)).unwrap();
        assert_eq!(info.tuple_count, 5000);
        let rows = scan_all(&db, "r");
        let mut keys: Vec<i64> = rows.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 5000, "keys must be unique");
        // sel < 500 should pass roughly half.
        let pass = rows
            .iter()
            .filter(|t| t.get(1).as_int().unwrap() < 500)
            .count();
        assert!((2000..3000).contains(&pass), "sel not uniform: {pass}/5000");
    }

    #[test]
    fn generation_is_deterministic() {
        let d1 = TempDir::new();
        let d2 = TempDir::new();
        let db1 = Database::open_default(&d1.0).unwrap();
        let db2 = Database::open_default(&d2.0).unwrap();
        generate_table(&db1, &TableSpec::new("r", 500).payload(32).seed(7)).unwrap();
        generate_table(&db2, &TableSpec::new("r", 500).payload(32).seed(7)).unwrap();
        assert_eq!(scan_all(&db1, "r"), scan_all(&db2, "r"));
    }

    #[test]
    fn sorted_spec_produces_ordered_keys() {
        let d = TempDir::new();
        let db = Database::open_default(&d.0).unwrap();
        let info = generate_table(&db, &TableSpec::new("s", 300).sorted().payload(16)).unwrap();
        assert_eq!(info.sorted_on, Some(0));
        let rows = scan_all(&db, "s");
        let keys: Vec<i64> = rows.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn skewed_table_matches_two_regime_selectivities() {
        let d = TempDir::new();
        let db = Database::open_default(&d.0).unwrap();
        generate_skewed_table(&db, &TableSpec::new("rk", 20_000).payload(8).seed(3)).unwrap();
        let rows = scan_all(&db, "rk");
        let switch = (20_000.0 * SKEW_SWITCH_FRACTION) as usize;
        let pass_low = rows[..switch]
            .iter()
            .filter(|t| t.get(1).as_int().unwrap() < 500)
            .count() as f64
            / switch as f64;
        let pass_high = rows[switch..]
            .iter()
            .filter(|t| t.get(1).as_int().unwrap() < 500)
            .count() as f64
            / (rows.len() - switch) as f64;
        assert!((pass_low - SKEW_SEL_LOW).abs() < 0.02, "low regime {pass_low}");
        assert!((pass_high - SKEW_SEL_HIGH).abs() < 0.02, "high regime {pass_high}");
        // Effective selectivity ≈ 0.385 (the paper's number).
        let eff = rows
            .iter()
            .filter(|t| t.get(1).as_int().unwrap() < 500)
            .count() as f64
            / rows.len() as f64;
        assert!((eff - 0.385).abs() < 0.02, "effective {eff}");
    }

    #[test]
    fn index_probe_finds_rows() {
        let d = TempDir::new();
        let db = Database::open_default(&d.0).unwrap();
        generate_table(&db, &TableSpec::new("t", 2000).payload(16)).unwrap();
        build_index(&db, "t", 0).unwrap();
        let idx = db.open_table_index("t", 0).unwrap();
        let heap = db.open_table_heap("t").unwrap();
        for key in [0i64, 777, 1999] {
            let hits = idx.lookup(key).unwrap();
            assert_eq!(hits.len(), 1, "key {key}");
            let t = heap.fetch(hits[0]).unwrap();
            assert_eq!(t.get(0).as_int().unwrap(), key);
        }
        assert!(idx.lookup(2000).unwrap().is_empty());
    }

    #[test]
    fn zipf_keys_are_skewed_and_deterministic() {
        let d1 = TempDir::new();
        let d2 = TempDir::new();
        let db1 = Database::open_default(&d1.0).unwrap();
        let db2 = Database::open_default(&d2.0).unwrap();
        let spec = TableSpec::new("z", 2000).payload(8).dist(KeyDist::Zipf).seed(9);
        generate_table(&db1, &spec).unwrap();
        generate_table(&db2, &spec).unwrap();
        let rows = scan_all(&db1, "z");
        assert_eq!(rows, scan_all(&db2, "z"));
        // Log-uniform mass: well over half the keys land in the bottom
        // tenth of the range.
        let small = rows
            .iter()
            .filter(|t| t.get(0).as_int().unwrap() < 200)
            .count();
        assert!(small > 1000, "zipf not skewed: {small}/2000 below 200");
    }

    #[test]
    fn dup_heavy_concentrates_on_the_hot_key() {
        let d = TempDir::new();
        let db = Database::open_default(&d.0).unwrap();
        generate_table(
            &db,
            &TableSpec::new("dh", 1000).payload(8).dist(KeyDist::DupHeavy).seed(4),
        )
        .unwrap();
        let rows = scan_all(&db, "dh");
        let hot = rows
            .iter()
            .filter(|t| t.get(0).as_int().unwrap() == 0)
            .count();
        assert!((700..900).contains(&hot), "hot key share off: {hot}/1000");
    }

    #[test]
    fn reversed_keys_descend_and_are_not_marked_sorted() {
        let d = TempDir::new();
        let db = Database::open_default(&d.0).unwrap();
        let info = generate_table(
            &db,
            &TableSpec::new("rv", 100).payload(8).dist(KeyDist::Reversed),
        )
        .unwrap();
        assert_eq!(info.sorted_on, None);
        let keys: Vec<i64> = scan_all(&db, "rv")
            .iter()
            .map(|t| t.get(0).as_int().unwrap())
            .collect();
        assert!(keys.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(keys[0], 99);
    }

    #[test]
    fn payload_width_is_respected() {
        let d = TempDir::new();
        let db = Database::open_default(&d.0).unwrap();
        generate_table(&db, &TableSpec::new("w", 10).payload(180)).unwrap();
        for t in scan_all(&db, "w") {
            assert_eq!(t.get(2).as_str().unwrap().len(), 180);
        }
    }
}
