//! A miniature workload manager — the paper's §1 "queries with different
//! priorities" setting run end to end: several low-priority analytical
//! queries share the machine; whenever a high-priority query arrives, the
//! *running* low-priority query is suspended under a tight budget, parked,
//! and later resumed round-robin. No low-priority work is ever lost or
//! duplicated (verified against uninterrupted baselines).
//!
//! ```sh
//! cargo run --example workload_manager
//! ```

use qsr::core::{OpId, SuspendPolicy};
use qsr::exec::{AggFn, PlanSpec, Predicate, QueryExecution, SuspendTrigger, SuspendedHandle};
use qsr::storage::{Database, Tuple};
use qsr::workload::{generate_table, TableSpec};
use std::collections::VecDeque;

enum Parked {
    Fresh(PlanSpec),
    Suspended(SuspendedHandle),
}

struct LowPriorityQuery {
    name: &'static str,
    state: Parked,
    collected: Vec<Tuple>,
    expected: usize,
}

fn main() -> qsr::storage::Result<()> {
    let dir = std::env::temp_dir().join(format!("qsr-wlm-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let db = Database::open_default(&dir)?;
    generate_table(&db, &TableSpec::new("facts", 30_000).payload(48))?;
    generate_table(&db, &TableSpec::new("dim", 1_200).payload(48))?;

    // Three low-priority analytical queries.
    let plans: Vec<(&'static str, PlanSpec)> = vec![
        (
            "Q1 join",
            PlanSpec::BlockNlj {
                outer: Box::new(PlanSpec::Filter {
                    input: Box::new(PlanSpec::TableScan { table: "facts".into() }),
                    predicate: Predicate::IntLt { col: 1, value: 400 },
                }),
                inner: Box::new(PlanSpec::TableScan { table: "dim".into() }),
                outer_key: 0,
                inner_key: 0,
                buffer_tuples: 4_000,
            },
        ),
        (
            "Q2 sort",
            PlanSpec::Sort {
                input: Box::new(PlanSpec::TableScan { table: "facts".into() }),
                key: 0,
                buffer_tuples: 5_000,
            },
        ),
        (
            "Q3 agg",
            PlanSpec::HashAgg {
                input: Box::new(PlanSpec::TableScan { table: "facts".into() }),
                group_col: 1,
                agg_col: 0,
                func: AggFn::Count,
                partitions: 4,
            },
        ),
    ];

    // Uninterrupted baselines for verification.
    let mut queue: VecDeque<LowPriorityQuery> = VecDeque::new();
    for (name, plan) in plans {
        let mut base = QueryExecution::start(db.clone(), plan.clone())?;
        let expected = base.run_to_completion()?.len();
        queue.push_back(LowPriorityQuery {
            name,
            state: Parked::Fresh(plan),
            collected: Vec::new(),
            expected,
        });
    }

    // The scheduler loop: run the head-of-queue low-priority query until a
    // simulated high-priority arrival preempts it (every ~7,000 operator
    // ticks), service the high-priority query, rotate, repeat.
    let mut hi_count = 0;
    let mut rounds = 0;
    while !queue.is_empty() {
        rounds += 1;
        let mut q = queue.pop_front().expect("non-empty");
        let mut exec = match q.state {
            Parked::Fresh(plan) => QueryExecution::start(db.clone(), plan)?,
            Parked::Suspended(handle) => QueryExecution::resume(db.clone(), &handle)?,
        };
        // Preemption point for this time slice.
        exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
            op: OpId(0),
            n: exec.ctx().ticks_of(OpId(0)) + 7_000,
        }));
        let (tuples, done) = exec.run()?;
        q.collected.extend(tuples);

        if done {
            assert_eq!(
                q.collected.len(),
                q.expected,
                "{} lost or duplicated work",
                q.name
            );
            println!(
                "{} finished after {rounds} scheduler rounds: {} tuples ✓",
                q.name,
                q.collected.len()
            );
        } else {
            // High-priority arrival: suspend fast (tight budget) ...
            let handle =
                exec.suspend(&SuspendPolicy::Optimized { budget: Some(30.0) })?;
            // ... and service the high-priority query immediately.
            hi_count += 1;
            let mut hi = QueryExecution::start(
                db.clone(),
                PlanSpec::Filter {
                    input: Box::new(PlanSpec::TableScan { table: "dim".into() }),
                    predicate: Predicate::IntEq {
                        col: 0,
                        value: hi_count % 1_200,
                    },
                },
            )?;
            let hit = hi.run_to_completion()?;
            println!(
                "round {rounds}: preempted {} (resumes later), served hi-priority \
                 lookup #{hi_count} ({} rows)",
                q.name,
                hit.len()
            );
            q.state = Parked::Suspended(handle);
            queue.push_back(q);
        }
    }
    println!("all low-priority queries completed exactly once; {hi_count} high-priority queries served");

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
