//! Reproduce Figure 2 of the paper interactively: trace the heap state of
//! the two NLJs in the R ⋈ S ⋈ T running example over time, and watch the
//! contract graph stay small (Theorem 1) as checkpoints are pruned.
//!
//! ```sh
//! cargo run --example heap_trace
//! ```

use qsr::core::OpId;
use qsr::exec::{PlanSpec, Poll, QueryExecution};
use qsr::storage::Database;
use qsr::workload::{generate_table, TableSpec};

fn main() -> qsr::storage::Result<()> {
    let dir = std::env::temp_dir().join(format!("qsr-heaptrace-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let db = Database::open_default(&dir)?;
    generate_table(&db, &TableSpec::new("r", 6_000).payload(48))?;
    generate_table(&db, &TableSpec::new("s", 4_000).payload(48))?;
    generate_table(&db, &TableSpec::new("t", 1_000).payload(48))?;

    // NLJ0(NLJ1(Scan R, Scan S), Scan T) — Figure 1.
    let plan = PlanSpec::BlockNlj {
        outer: Box::new(PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::TableScan { table: "r".into() }),
            inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 2_000,
        }),
        inner: Box::new(PlanSpec::TableScan { table: "t".into() }),
        outer_key: 0,
        inner_key: 0,
        buffer_tuples: 800,
    };

    let mut exec = QueryExecution::start(db, plan)?;
    println!("{:>10} {:>14} {:>14} {:>8} {:>10}", "output#", "NLJ0 heap(B)", "NLJ1 heap(B)", "ckpts", "contracts");
    let mut produced = 0u64;
    loop {
        match exec.next()? {
            Poll::Tuple(_) => {
                produced += 1;
                if produced.is_multiple_of(250) {
                    let problem = exec.suspend_problem();
                    println!(
                        "{:>10} {:>14} {:>14} {:>8} {:>10}",
                        produced,
                        problem.inputs[&OpId(0)].heap_bytes,
                        problem.inputs[&OpId(1)].heap_bytes,
                        exec.ctx().graph.num_checkpoints(),
                        exec.ctx().graph.num_contracts(),
                    );
                }
            }
            Poll::Done => break,
            Poll::Suspended => unreachable!(),
        }
    }
    println!("query finished with {produced} tuples");
    Ok(())
}
