//! Pluggable suspend backends, delta checkpoints, and the robustness
//! layer, end to end: suspend the same blocking query repeatedly with
//! full dumps vs. delta checkpoints — cold-restarting the database
//! between every cycle so each resume replays the committed chain from
//! disk — then push a suspend through the latency-charging remote mock,
//! once healing a transient fault under the retry schedule and once
//! failing over to the local fallback when the endpoint dies. Every
//! path must resume to output byte-identical to the uninterrupted run.
//!
//! ```sh
//! cargo run --example suspend_backends
//! ```

use qsr::core::{OpId, SuspendPolicy};
use qsr::exec::{
    read_manifest, PlanSpec, Predicate, QueryExecution, SuspendOptions, SuspendTrigger,
};
use qsr::storage::{
    CostModel, Database, LocalDiskBackend, Phase, RemoteMockBackend, RobustBackend, Tuple,
    WriteFault, RESUME_BACKOFF,
};
use qsr::workload::{generate_table, TableSpec};
use std::path::Path;
use std::sync::Arc;

const CYCLES: usize = 4;

/// Blocking sort over a block NLJ: multi-page operator state on both
/// levels, nothing delivered before the final drain, so every resumed
/// segment mutates dump state — the shape delta checkpoints pay off on.
fn plan() -> PlanSpec {
    PlanSpec::Sort {
        input: Box::new(PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan { table: "r".into() }),
                predicate: Predicate::IntLt { col: 1, value: 500 },
            }),
            inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 150,
        }),
        key: 0,
        buffer_tuples: 4096,
    }
}

fn fresh_db(dir: &Path) -> Arc<Database> {
    std::fs::create_dir_all(dir).unwrap();
    let db = Database::open_with_pool(dir, CostModel::default(), 0).unwrap();
    generate_table(&db, &TableSpec::new("r", 2000).seed(21)).unwrap();
    generate_table(&db, &TableSpec::new("s", 2000).seed(22)).unwrap();
    db.pool().flush_all().unwrap();
    db.ledger().reset();
    db
}

fn reopen(dir: &Path) -> Arc<Database> {
    Database::open_with_pool(dir, CostModel::default(), 0).unwrap()
}

/// Suspend/resume [`CYCLES`] times through a full process restart each
/// cycle; return total suspend-phase pages charged and per-cycle chain
/// lengths from the committed manifest.
fn restart_sweep(dir: &Path, delta: bool, reference: &[Tuple]) -> (u64, Vec<u64>) {
    let mut db = fresh_db(dir);
    let opts = SuspendOptions {
        dump_writers: 0,
        delta: Some(delta),
        keep_generations: Some(1),
        ..SuspendOptions::default()
    };
    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    let mut pages = 0u64;
    let mut chains = Vec::new();
    for cycle in 0..CYCLES {
        let n = if cycle == 0 { 250 } else { 40 };
        exec.set_trigger(Some(SuspendTrigger::AfterOpTuples { op: OpId(1), n }));
        let (prefix, done) = exec.run().unwrap();
        assert!(prefix.is_empty() && !done, "the blocking sort must not finish early");
        let before = db.ledger().snapshot();
        exec.suspend_with(&SuspendPolicy::AllDump, &opts).unwrap();
        let after = db.ledger().snapshot();
        pages += after.since(&before).phase(Phase::Suspend).pages_written;
        chains.push(read_manifest(&db).unwrap().expect("committed suspend").chain_len);
        drop(db); // process dies with the suspend on disk
        db = reopen(dir);
        exec = QueryExecution::recover(db.clone())
            .unwrap()
            .expect("committed suspend must recover cold");
    }
    let out = exec.run_to_completion().unwrap();
    assert_eq!(out, reference, "restart cycling changed the query output");
    (pages, chains)
}

/// One suspend through the remote mock under `fault`, then a plain local
/// reopen that must recover to `reference` whichever side committed.
fn remote_suspend(
    dir: &Path,
    mode: &str,
    fault: Option<(u64, WriteFault)>,
    reference: &[Tuple],
) -> (bool, u64) {
    let db = fresh_db(dir);
    let local = || Arc::new(LocalDiskBackend::new(db.blobs().clone(), db.disk().clone()));
    let remote = Arc::new(RemoteMockBackend::new(local(), 0x55).with_latency(2, None));
    if let Some((nth, f)) = fault {
        remote.faults().fail_write(nth, f);
    }
    let robust = Arc::new(RobustBackend::new(
        remote.clone(),
        Some(local()),
        RESUME_BACKOFF,
        Some(db.ledger().clone()),
    ));
    db.set_backend(robust.clone());
    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples { op: OpId(1), n: 250 }));
    let (prefix, done) = exec.run().unwrap();
    assert!(prefix.is_empty() && !done);
    exec.suspend_with(
        &SuspendPolicy::AllDump,
        &SuspendOptions { dump_writers: 0, ..SuspendOptions::default() },
    )
    .unwrap();
    let outcome = (robust.failed_over(), remote.latency_units());
    drop(db); // process dies; next boot knows nothing about the remote

    let db = Database::open_default(dir).unwrap();
    let out = QueryExecution::recover(db)
        .unwrap()
        .expect("committed suspend must recover")
        .run_to_completion()
        .unwrap();
    assert_eq!(out, reference, "{mode}: remote-stack resume diverges");
    outcome
}

fn main() {
    let base = std::env::temp_dir().join(format!("qsr-backends-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let reference = QueryExecution::start(fresh_db(&base.join("ref")), plan())
        .unwrap()
        .run_to_completion()
        .unwrap();
    println!("reference run: {} tuples", reference.len());

    // Full vs. delta dumps across cold restarts.
    let (full_pages, full_chains) = restart_sweep(&base.join("full"), false, &reference);
    let (delta_pages, delta_chains) = restart_sweep(&base.join("delta"), true, &reference);
    println!(
        "\n[1] {CYCLES} suspend/restart/resume cycles: full {full_pages} pages (chains {full_chains:?}), \
         delta {delta_pages} pages (chains {delta_chains:?})"
    );
    assert!(full_chains.iter().all(|&c| c == 0), "full dumps must never chain");
    assert!(delta_chains.iter().any(|&c| c > 0), "the delta sweep must actually chain");
    assert!(
        delta_pages < full_pages,
        "delta checkpoints must charge less dump I/O than full dumps"
    );
    println!("[1] delta chains replay across process restarts, charging less dump I/O");

    // Remote endpoint heals after two transient put failures: the retry
    // schedule rides them out, no failover, remote latency charged.
    let (failed_over, latency) = remote_suspend(
        &base.join("transient"),
        "transient",
        Some((3, WriteFault::Transient(2))),
        &reference,
    );
    assert!(!failed_over, "a healing transient must be retried through, not failed over");
    println!("\n[2] transient remote fault: retried to commit, {latency} latency units, no failover");

    // Remote endpoint dies on the query-blob put: graceful failover to
    // the local fallback, and the cold reopen still sees the commit.
    let (failed_over, latency) = remote_suspend(
        &base.join("dead"),
        "dead",
        Some((3, WriteFault::Crash)),
        &reference,
    );
    assert!(failed_over, "a dead endpoint must fail over to the local fallback");
    println!("[3] dead remote endpoint: failed over locally at {latency} latency units, resume intact");

    let _ = std::fs::remove_dir_all(&base);
    println!("\nall scenarios byte-identical ({} tuples each)", reference.len());
}
