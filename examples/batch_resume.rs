//! Verify drive for vectorized batch execution + parallel resume: run a
//! join/agg query tuple-at-a-time and in 64-row batches (same output,
//! bit-identical pool-0 ledger), then suspend a batch-mode run mid-query,
//! reopen the directory cold, and recover with 4 prefetch workers — the
//! stitched output must match the uninterrupted reference byte for byte
//! and the Phase::Resume charge must equal a serial recovery's.
//!
//! ```sh
//! cargo run --offline --example batch_resume
//! ```

use qsr::core::{OpId, SuspendPolicy};
use qsr::exec::{PlanSpec, Predicate, QueryExecution, SuspendTrigger, SUSPEND_MANIFEST};
use qsr::storage::{Database, Phase, Tuple};
use qsr::workload::{generate_table, TableSpec};
use std::sync::Arc;

fn plan() -> PlanSpec {
    PlanSpec::Sort {
        input: Box::new(PlanSpec::HashJoin {
            build: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan { table: "r".into() }),
                predicate: Predicate::IntLt { col: 1, value: 900 },
            }),
            probe: Box::new(PlanSpec::TableScan { table: "s".into() }),
            build_key: 0,
            probe_key: 0,
            partitions: 4,
            hybrid: false,
        }),
        key: 1,
        buffer_tuples: 16384,
    }
}

fn fresh_db(dir: &std::path::Path) -> Arc<Database> {
    std::fs::create_dir_all(dir).unwrap();
    let db = Database::open_default(dir).unwrap();
    generate_table(&db, &TableSpec::new("r", 9000).payload(24).seed(21)).unwrap();
    generate_table(&db, &TableSpec::new("s", 6000).payload(24).seed(22)).unwrap();
    db
}

fn run_full(dir: &std::path::Path, batch: usize) -> (Vec<Tuple>, u64, u64) {
    let db = fresh_db(dir);
    let before = db.ledger().snapshot();
    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    exec.set_batch_size(batch);
    let out = exec.run_to_completion().unwrap();
    let used = db.ledger().snapshot().since(&before);
    (out, used.total_pages_read(), used.total_pages_written())
}

fn resume_after_suspend(dir: &std::path::Path, workers: usize) -> (Vec<Tuple>, u64) {
    let db = fresh_db(dir);
    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    exec.set_batch_size(64);
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(0),
        n: 400,
    }));
    let (prefix, done) = exec.run().unwrap();
    assert!(!done, "trigger must fire mid-query");
    let handle = exec.suspend(&SuspendPolicy::AllDump).unwrap();
    let sq = qsr::core::SuspendedQuery::load(db.blobs(), handle.blob).unwrap();
    let dumps: Vec<_> = sq.records.values().filter_map(|r| r.heap_dump).collect();
    let bytes: usize = dumps
        .iter()
        .map(|b| db.blobs().get(*b).unwrap().len())
        .sum();
    assert!(dumps.len() >= 2, "suspend must carry multiple dump blobs");
    println!("  suspend carried {} dump blobs, {} bytes", dumps.len(), bytes);
    drop(db); // process "dies"

    let db = Database::open_default(dir).unwrap(); // fresh process
    let before = db.ledger().snapshot();
    let mut resumed = QueryExecution::recover_named_with(db.clone(), SUSPEND_MANIFEST, workers)
        .unwrap()
        .expect("committed suspend must recover");
    let resume_pages = db
        .ledger()
        .snapshot()
        .since(&before)
        .phase(Phase::Resume)
        .pages_read;
    resumed.set_batch_size(64);
    let suffix = resumed.run_to_completion().unwrap();
    let mut all = prefix;
    all.extend(suffix);
    (all, resume_pages)
}

fn main() {
    let base = std::env::temp_dir().join(format!("qsr-batch-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    let (reference, tr, tw) = run_full(&base.join("tuple"), 0);
    println!("tuple mode:  {} rows, {tr} pages read / {tw} written", reference.len());

    let (batched, br, bw) = run_full(&base.join("batch"), 64);
    assert_eq!(batched, reference, "batch output must be byte-identical");
    assert_eq!((br, bw), (tr, tw), "batch ledger must be bit-identical at pool 0");
    println!("batch mode:  {} rows, {br} pages read / {bw} written — identical", batched.len());

    let (serial, serial_pages) = resume_after_suspend(&base.join("serial"), 0);
    assert_eq!(serial, reference, "serial resume must reproduce the reference");
    let (parallel, parallel_pages) = resume_after_suspend(&base.join("parallel"), 4);
    assert_eq!(parallel, reference, "parallel resume must reproduce the reference");
    assert_eq!(
        parallel_pages, serial_pages,
        "4-worker prefetch must charge exactly the serial Phase::Resume reads"
    );
    println!(
        "suspend/recover: serial and 4-worker resumes both read {serial_pages} \
         Phase::Resume pages and reproduce all {} rows",
        reference.len()
    );

    let _ = std::fs::remove_dir_all(&base);
    println!("batch + parallel-resume verify: OK");
}
