//! Quickstart: build a database, run a join, suspend it mid-flight with
//! the online optimizer, release all memory, resume, and finish.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use qsr::core::SuspendPolicy;
use qsr::exec::{PlanSpec, Predicate, QueryExecution, SuspendTrigger};
use qsr::storage::{Database, Phase};
use qsr::workload::{generate_table, TableSpec};
use qsr::core::OpId;

fn main() -> qsr::storage::Result<()> {
    let dir = std::env::temp_dir().join(format!("qsr-quickstart-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // 1. A database with two tables.
    let db = Database::open_default(&dir)?;
    generate_table(&db, &TableSpec::new("orders", 50_000).payload(64))?;
    generate_table(&db, &TableSpec::new("customers", 2_000).payload(64))?;

    // 2. A physical plan: block NLJ over a filtered scan.
    //    SELECT * FROM orders o, customers c
    //    WHERE o.sel < 400 AND o.key = c.key
    let plan = PlanSpec::BlockNlj {
        outer: Box::new(PlanSpec::Filter {
            input: Box::new(PlanSpec::TableScan {
                table: "orders".into(),
            }),
            predicate: Predicate::IntLt { col: 1, value: 400 },
        }),
        inner: Box::new(PlanSpec::TableScan {
            table: "customers".into(),
        }),
        outer_key: 0,
        inner_key: 0,
        buffer_tuples: 5_000,
    };

    // 3. Execute; a suspend request arrives mid-buffer-fill (here modeled
    //    with a deterministic trigger — in production you would call
    //    `exec.request_suspend()` from the scheduler).
    let mut exec = QueryExecution::start(db.clone(), plan)?;
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(0),
        n: 3_000,
    }));
    let (prefix, done) = exec.run()?;
    assert!(!done);
    println!("executed until suspend request: {} tuples delivered", prefix.len());

    // 4. Suspend with the online optimizer (unconstrained budget). The
    //    optimizer solves the paper's mixed-integer program over the live
    //    contract graph and picks DumpState/GoBack per operator.
    let handle = exec.suspend(&SuspendPolicy::Optimized { budget: None })?;
    println!(
        "suspended: plan {:?}, est. suspend cost {:.1}, est. resume cost {:.1}, optimize {:.2?}",
        handle
            .report
            .plan
            .decisions()
            .map(|(op, s)| format!("{op}:{s:?}"))
            .collect::<Vec<_>>(),
        handle.report.est_suspend_cost,
        handle.report.est_resume_cost,
        handle.report.elapsed,
    );
    // All query memory is now released; the SuspendedQuery structure lives
    // in the blob store.

    // 5. Resume and finish. Output continues exactly after the last
    //    pre-suspend tuple.
    let mut resumed = QueryExecution::resume(db.clone(), &handle)?;
    let rest = resumed.run_to_completion()?;
    println!("resumed and finished: {} more tuples", rest.len());

    let snap = db.ledger().snapshot();
    println!(
        "cost units — execute: {:.1}, suspend: {:.1}, resume: {:.1}",
        snap.phase_cost(Phase::Execute),
        snap.phase_cost(Phase::Suspend),
        snap.phase_cost(Phase::Resume),
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
