//! Crash-safe suspend/resume, end to end: run a query, crash the process
//! partway through the suspend, reopen the database directory cold, and
//! recover — then corrupt a dump blob on disk and watch recovery degrade
//! to GoBack recompute. Output must be byte-identical in every scenario.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use qsr::core::{OpId, SuspendPolicy};
use qsr::exec::{PlanSpec, Predicate, QueryExecution, SuspendTrigger};
use qsr::storage::{Database, FaultInjector, Tuple, WriteFault};
use qsr::workload::{generate_table, TableSpec};
use std::sync::Arc;

fn plan() -> PlanSpec {
    PlanSpec::Sort {
        input: Box::new(PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan { table: "r".into() }),
                predicate: Predicate::IntLt { col: 1, value: 500 },
            }),
            inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 150,
        }),
        key: 0,
        buffer_tuples: 4096,
    }
}

fn fresh_db(dir: &std::path::Path) -> Arc<Database> {
    let db = Database::open_default(dir).unwrap();
    generate_table(&db, &TableSpec::new("r", 800).payload(16).seed(11)).unwrap();
    generate_table(&db, &TableSpec::new("s", 200).payload(16).seed(12)).unwrap();
    db
}

fn run_to_suspend_point(db: &Arc<Database>) -> (Vec<Tuple>, QueryExecution) {
    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(1),
        n: 250,
    }));
    let (prefix, done) = exec.run().unwrap();
    assert!(!done);
    (prefix, exec)
}

fn main() {
    let base = std::env::temp_dir().join(format!("qsr-crash-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Reference: the query uninterrupted.
    let refdir = base.join("ref");
    std::fs::create_dir_all(&refdir).unwrap();
    let reference = QueryExecution::start(fresh_db(&refdir), plan())
        .unwrap()
        .run_to_completion()
        .unwrap();
    println!("reference run: {} tuples", reference.len());

    // Scenario 1: crash at suspend write #3, before the manifest commits.
    let dir = base.join("crash");
    std::fs::create_dir_all(&dir).unwrap();
    let db = fresh_db(&dir);
    let (_, exec) = run_to_suspend_point(&db);
    let fi = Arc::new(FaultInjector::seeded(7));
    fi.fail_write(3, WriteFault::Crash);
    db.disk().set_fault_injector(Some(fi));
    let err = exec.suspend(&SuspendPolicy::AllDump);
    println!("\n[1] crash at suspend write #3 -> suspend: {:?}", err.err().map(|e| e.to_string()));
    drop(db); // process dies

    let db = Database::open_default(&dir).unwrap(); // fresh process
    match QueryExecution::recover(db).unwrap() {
        Some(_) => unreachable!("manifest never committed"),
        None => {
            println!("[1] recover() -> None: clean \"no suspend happened\" state");
        }
    }

    // Scenario 2: suspend commits, process dies, fresh process recovers.
    let dir = base.join("commit");
    std::fs::create_dir_all(&dir).unwrap();
    let db = fresh_db(&dir);
    let (prefix, exec) = run_to_suspend_point(&db);
    let handle = exec.suspend(&SuspendPolicy::AllDump).unwrap();
    println!(
        "\n[2] suspend committed: generation {}, {} tuples already delivered",
        handle.generation,
        prefix.len()
    );
    drop(db);

    let db = Database::open_default(&dir).unwrap();
    let mut resumed = QueryExecution::recover(db.clone()).unwrap().unwrap();
    let suffix = resumed.run_to_completion().unwrap();
    let mut all = prefix.clone();
    all.extend(suffix);
    assert_eq!(all, reference);
    println!("[2] recovered + completed: output identical to reference");
    qsr::exec::clear_manifest(&db).unwrap();

    // Scenario 3: a dump blob rots on disk; recovery degrades to GoBack.
    let dir = base.join("rot");
    std::fs::create_dir_all(&dir).unwrap();
    let db = fresh_db(&dir);
    let (prefix, exec) = run_to_suspend_point(&db);
    let handle = exec.suspend(&SuspendPolicy::AllDump).unwrap();
    let sq = qsr::core::SuspendedQuery::load(db.blobs(), handle.blob).unwrap();
    let dump = sq
        .records
        .values()
        .filter(|r| sq.fallbacks.contains_key(&r.op))
        .find_map(|r| r.heap_dump)
        .unwrap();
    drop(db);

    let path = dir.join(format!("f{}.qsr", dump.file.0));
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[(dump.len / 2) as usize] ^= 0x10;
    std::fs::write(&path, bytes).unwrap();
    println!("\n[3] flipped one bit in dump blob {:?}", dump.file);

    let db = Database::open_default(&dir).unwrap();
    let mut resumed = QueryExecution::recover(db).unwrap().unwrap();
    let suffix = resumed.run_to_completion().unwrap();
    let mut all = prefix.clone();
    all.extend(suffix);
    assert_eq!(all, reference);
    println!("[3] recovery fell back to GoBack recompute: output identical to reference");

    let _ = std::fs::remove_dir_all(&base);
    println!("\nall scenarios byte-identical ({} tuples each)", reference.len());
}
