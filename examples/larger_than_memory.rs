//! Larger-than-memory execution, end to end: a recursive grace hash join
//! feeding a multi-pass external sort, squeezed under a `MemoryBudget`
//! envelope small enough to force depth-2 partition recursion and
//! intermediate merge passes. Suspend mid-probe, drop the process, reopen
//! the directory cold, recover, and finish — output must be byte-identical
//! to the uninterrupted run. Finally, flip one bit on a disk read and watch
//! the page-checksum trailer turn silent media corruption into a typed,
//! non-transient error.
//!
//! ```sh
//! cargo run --example larger_than_memory
//! ```

use qsr::core::{OpId, SuspendPolicy};
use qsr::exec::{PlanSpec, QueryExecution, SuspendTrigger};
use qsr::storage::{Database, FaultInjector, TraceEvent, Tracer};
use qsr::workload::{generate_table, TableSpec};
use std::sync::Arc;

/// Join 240 build rows against 480 probe rows with only 6 tuples of build
/// memory (forces grace partitioning to recurse to the depth cap), then
/// sort the result with 24-tuple runs merged 2 at a time (forces
/// intermediate merge passes).
fn plan() -> PlanSpec {
    PlanSpec::MemoryBudget {
        input: Box::new(PlanSpec::Sort {
            input: Box::new(PlanSpec::HashJoin {
                build: Box::new(PlanSpec::TableScan { table: "gb".into() }),
                probe: Box::new(PlanSpec::TableScan { table: "gp".into() }),
                build_key: 0,
                probe_key: 0,
                partitions: 4,
                hybrid: false,
            }),
            key: 0,
            buffer_tuples: 24,
        }),
        mem_budget: 6,
        merge_fanin: 2,
    }
}

fn fresh_db(dir: &std::path::Path) -> Arc<Database> {
    let db = Database::open_default(dir).unwrap();
    generate_table(&db, &TableSpec::new("gb", 240).payload(16).seed(21)).unwrap();
    generate_table(&db, &TableSpec::new("gp", 480).payload(16).seed(22)).unwrap();
    db
}

fn main() {
    let base = std::env::temp_dir().join(format!("qsr-ltm-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Reference: uninterrupted, with the flight recorder counting how much
    // of the work actually went through the larger-than-memory paths.
    let refdir = base.join("ref");
    std::fs::create_dir_all(&refdir).unwrap();
    let db = fresh_db(&refdir);
    let tracer = Arc::new(Tracer::new(db.ledger().clone()));
    tracer.enable_full_capture();
    db.ledger().set_tracer(&tracer);
    let reference = QueryExecution::start(db, plan())
        .unwrap()
        .run_to_completion()
        .unwrap();
    let (mut max_level, mut spills, mut passes) = (0u64, 0u64, 0u64);
    for r in tracer.take_full() {
        match r.event {
            TraceEvent::PartitionSpill { level, .. } => {
                spills += 1;
                max_level = max_level.max(level);
            }
            TraceEvent::MergePass { .. } => passes += 1,
            _ => {}
        }
    }
    println!(
        "reference: {} tuples, {} recursive spills (max level {}), {} merge passes",
        reference.len(),
        spills,
        max_level,
        passes
    );
    assert!(max_level >= 2, "budget 6 must force depth-2 recursion");
    assert!(passes >= 1, "fan-in 2 must force intermediate merge passes");

    // Suspend mid-probe — after the join (op 1 under the sort) has emitted
    // 60 tuples, so the partition tree is live on disk — then "crash" the
    // process and resume cold in a fresh one.
    let dir = base.join("resume");
    std::fs::create_dir_all(&dir).unwrap();
    let db = fresh_db(&dir);
    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(1),
        n: 60,
    }));
    let (prefix, done) = exec.run().unwrap();
    assert!(!done);
    exec.suspend(&SuspendPolicy::Optimized { budget: None })
        .unwrap();
    drop(db); // process dies

    let db = Database::open_default(&dir).unwrap(); // fresh process
    let mut resumed = QueryExecution::recover(db)
        .unwrap()
        .expect("committed suspend must be recoverable");
    let rest = resumed.run_to_completion().unwrap();
    let (before, after) = (prefix.len(), rest.len());
    let mut replay = prefix;
    replay.extend(rest);
    assert_eq!(replay, reference, "suspend/resume must be byte-identical");
    println!("cold resume: {before} tuples before suspend + {after} after = identical output");

    // Media corruption: flip one bit on the next disk read. The per-page
    // FNV-1a trailer rejects the page with a typed, non-transient error
    // instead of silently joining garbage; clearing the fault recovers.
    let dir = base.join("flip");
    std::fs::create_dir_all(&dir).unwrap();
    let db = fresh_db(&dir);
    let fi = Arc::new(FaultInjector::seeded(23));
    fi.flip_read_bit(1);
    db.disk().set_fault_injector(Some(fi.clone()));
    let err = QueryExecution::start(db.clone(), plan())
        .unwrap()
        .run_to_completion()
        .unwrap_err();
    println!("bit flip on read #1 -> {err}");
    assert!(!err.is_transient(), "checksum mismatch must not be retried");
    fi.clear();
    let clean = QueryExecution::start(db, plan())
        .unwrap()
        .run_to_completion()
        .unwrap();
    assert_eq!(clean, reference);
    println!("fault cleared -> clean re-run matches reference");

    let _ = std::fs::remove_dir_all(&base);
    println!("\nall larger-than-memory scenarios byte-identical; ok");
}
