//! The paper's motivating scenario (§1): a long-running, memory-intensive
//! analytical query `Q_lo` is preempted by a high-priority query `Q_hi`.
//!
//! `Q_lo` is suspended under a tight suspend budget (the high-priority
//! work must start *now*), all its memory is released, `Q_hi` runs with
//! the machine to itself, and `Q_lo` resumes afterwards without losing
//! the work it had done.
//!
//! ```sh
//! cargo run --example priority_preemption
//! ```

use qsr::core::{OpId, SuspendPolicy};
use qsr::exec::{PlanSpec, Predicate, QueryExecution, SuspendTrigger};
use qsr::storage::{Database, Phase};
use qsr::workload::{generate_table, TableSpec};

fn main() -> qsr::storage::Result<()> {
    let dir = std::env::temp_dir().join(format!("qsr-preempt-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let db = Database::open_default(&dir)?;

    generate_table(&db, &TableSpec::new("facts", 60_000).payload(64))?;
    generate_table(&db, &TableSpec::new("dim_a", 3_000).payload(64))?;
    generate_table(&db, &TableSpec::new("dim_b", 1_000).payload(64))?;

    // Q_lo: a two-join analytical query with large buffers.
    let q_lo = PlanSpec::BlockNlj {
        outer: Box::new(PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan {
                    table: "facts".into(),
                }),
                predicate: Predicate::IntLt { col: 1, value: 500 },
            }),
            inner: Box::new(PlanSpec::TableScan {
                table: "dim_a".into(),
            }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 8_000,
        }),
        inner: Box::new(PlanSpec::TableScan {
            table: "dim_b".into(),
        }),
        outer_key: 0,
        inner_key: 0,
        buffer_tuples: 4_000,
    };

    // Q_hi: a short selective aggregate.
    let q_hi = PlanSpec::StreamAgg {
        input: Box::new(PlanSpec::Sort {
            input: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan {
                    table: "dim_a".into(),
                }),
                predicate: Predicate::IntLt { col: 1, value: 250 },
            }),
            key: 1,
            buffer_tuples: 2_000,
        }),
        group_col: Some(1),
        agg_col: 0,
        func: qsr::exec::AggFn::Count,
    };

    // --- Q_lo runs... ---
    let mut lo = QueryExecution::start(db.clone(), q_lo)?;
    lo.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(1),
        n: 6_500,
    }));
    let (lo_prefix, done) = lo.run()?;
    assert!(!done);
    println!("Q_lo progressed: {} result tuples", lo_prefix.len());

    // --- Q_hi arrives: suspend Q_lo under a tight budget. ---
    let budget = 40.0; // cost units the scheduler allows for suspension
    let before = db.ledger().snapshot();
    let handle = lo.suspend(&SuspendPolicy::Optimized {
        budget: Some(budget),
    })?;
    let suspend_cost = db.ledger().snapshot().since(&before).phase_cost(Phase::Suspend);
    println!(
        "Q_lo suspended in {suspend_cost:.1} cost units (budget {budget}); \
         strategies: {:?}",
        handle
            .report
            .plan
            .decisions()
            .map(|(op, s)| format!("{op}:{s:?}"))
            .collect::<Vec<_>>()
    );
    assert!(suspend_cost <= budget * 1.05 + 5.0);

    // --- Q_hi runs with all resources. ---
    let mut hi = QueryExecution::start(db.clone(), q_hi)?;
    let hi_out = hi.run_to_completion()?;
    println!("Q_hi finished: {} groups", hi_out.len());

    // --- Q_lo resumes, losing no delivered work. ---
    let mut lo = QueryExecution::resume(db.clone(), &handle)?;
    let lo_rest = lo.run_to_completion()?;
    println!(
        "Q_lo resumed and finished: {} + {} = {} tuples total",
        lo_prefix.len(),
        lo_rest.len(),
        lo_prefix.len() + lo_rest.len()
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
