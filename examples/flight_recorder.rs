//! The suspend-lifecycle flight recorder, end to end: run the same
//! suspend/resume cycle with and without a tracer installed and show the
//! cost ledger is bit-identical; capture the full event stream plus a
//! JSONL sink; fold it into the per-operator I/O attribution table; then
//! force a clean ladder abort and read back the frozen failure tail.
//!
//! ```sh
//! cargo run --example flight_recorder
//! ```

use qsr::core::{OpId, SuspendPolicy};
use qsr::exec::{PlanSpec, Predicate, QueryExecution, SuspendTrigger};
use qsr::storage::{Database, Tracer, Tuple};
use qsr::workload::{generate_table, TableSpec};
use qsr_bench::attribution;
use std::sync::Arc;

fn plan() -> PlanSpec {
    PlanSpec::Sort {
        input: Box::new(PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan { table: "r".into() }),
                predicate: Predicate::IntLt { col: 1, value: 500 },
            }),
            inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 150,
        }),
        key: 0,
        buffer_tuples: 4096,
    }
}

fn fresh_db(dir: &std::path::Path) -> Arc<Database> {
    std::fs::create_dir_all(dir).unwrap();
    let db = Database::open_default(dir).unwrap();
    generate_table(&db, &TableSpec::new("r", 800).payload(16).seed(11)).unwrap();
    generate_table(&db, &TableSpec::new("s", 200).payload(16).seed(12)).unwrap();
    db
}

/// One full cycle on `db`: run to the trigger, suspend, recover, finish.
fn suspend_resume_cycle(db: &Arc<Database>) -> Vec<Tuple> {
    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(1),
        n: 250,
    }));
    let (mut out, done) = exec.run().unwrap();
    assert!(!done);
    exec.suspend(&SuspendPolicy::AllDump).unwrap();
    let mut resumed = QueryExecution::recover(db.clone()).unwrap().unwrap();
    out.extend(resumed.run_to_completion().unwrap());
    out
}

fn main() {
    let base = std::env::temp_dir().join(format!("qsr-flight-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Baseline: the cycle with no tracer installed.
    let plain_db = fresh_db(&base.join("plain"));
    let plain_out = suspend_resume_cycle(&plain_db);
    let plain_snap = plain_db.ledger().snapshot();
    println!("untraced cycle: {} tuples", plain_out.len());

    // The same cycle with full capture and a JSONL sink armed. Tracing
    // must not perturb the query or the ledger by a single unit.
    let sink = base.join("trace.jsonl");
    let traced_db = fresh_db(&base.join("traced"));
    let tracer = Arc::new(Tracer::new(traced_db.ledger().clone()));
    tracer.enable_full_capture();
    tracer.set_json_sink(&sink).unwrap();
    traced_db.install_tracer(Some(tracer.clone()));
    let traced_out = suspend_resume_cycle(&traced_db);
    assert_eq!(plain_out, traced_out, "tracing changed the query output");
    assert_eq!(
        plain_snap,
        traced_db.ledger().snapshot(),
        "tracing changed the cost ledger"
    );
    println!("traced cycle:   identical output, bit-identical ledger");

    let records = tracer.take_full();
    println!("\ncaptured {} events; first three:", records.len());
    for r in records.iter().take(3) {
        println!("  #{} [{:?}] {:?}", r.seq, r.phase, r.event);
    }
    let jsonl = std::fs::read_to_string(&sink).unwrap();
    println!(
        "JSONL sink: {} lines, e.g.\n  {}",
        jsonl.lines().count(),
        jsonl.lines().next().unwrap()
    );

    // Per-operator I/O attribution, folded two ways: from the in-memory
    // capture and from the sink file. Both spell the same table.
    let table = attribution::attribute(&records);
    let from_disk = attribution::from_jsonl(&jsonl).unwrap();
    assert_eq!(attribution::render(&table), attribution::render(&from_disk));
    println!("\nper-operator attribution:\n{}", attribution::render(&table));

    // Failure tail: a zero-headroom disk quota fails every ladder rung;
    // the suspend aborts cleanly and the ring freezes the lead-up.
    let abort_db = fresh_db(&base.join("abort"));
    let abort_tracer = Arc::new(Tracer::new(abort_db.ledger().clone()));
    abort_db.install_tracer(Some(abort_tracer.clone()));
    let mut exec = QueryExecution::start(abort_db.clone(), plan()).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(1),
        n: 250,
    }));
    let (_, done) = exec.run().unwrap();
    assert!(!done);
    let dm = abort_db.disk();
    dm.set_quota(Some(dm.used_bytes()));
    let err = exec.suspend(&SuspendPolicy::AllDump).unwrap_err();
    let (label, tail) = abort_tracer.failure_tail().expect("abort must freeze a tail");
    println!("suspend error: {err}");
    println!("failure tail:  {:?} ({} events); last two:", label, tail.len());
    for r in tail.iter().rev().take(2).rev() {
        println!("  #{} [{:?}] {:?}", r.seq, r.phase, r.event);
    }

    let _ = std::fs::remove_dir_all(&base);
    println!("\nflight recorder demo: all checks passed");
}
