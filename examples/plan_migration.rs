//! Grid-style plan migration (paper §1, "Utility and Grid settings"): a
//! query is suspended on one node and resumed by a *different* database
//! session — here, a fresh `Database` handle over shared storage, standing
//! in for a replica node. Everything needed to continue travels inside the
//! `SuspendedQuery` blob; nothing from the first session's memory
//! survives.
//!
//! ```sh
//! cargo run --example plan_migration
//! ```

use qsr::core::{OpId, SuspendPolicy};
use qsr::exec::{PlanSpec, Predicate, QueryExecution, SuspendTrigger};
use qsr::storage::Database;
use qsr::workload::{generate_table, TableSpec};

fn main() -> qsr::storage::Result<()> {
    let dir = std::env::temp_dir().join(format!("qsr-migrate-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    let blob;
    let prefix_len;
    let expected_total;
    {
        // ----- Node A: start the query, then suspend for migration. -----
        let node_a = Database::open_default(&dir)?;
        generate_table(&node_a, &TableSpec::new("events", 40_000).payload(48))?;
        generate_table(&node_a, &TableSpec::new("devices", 1_500).payload(48))?;

        let plan = PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan {
                    table: "events".into(),
                }),
                predicate: Predicate::IntLt { col: 1, value: 300 },
            }),
            inner: Box::new(PlanSpec::TableScan {
                table: "devices".into(),
            }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 6_000,
        };

        // Baseline for verification.
        let mut base = QueryExecution::start(node_a.clone(), plan.clone())?;
        expected_total = base.run_to_completion()?.len();

        let mut exec = QueryExecution::start(node_a.clone(), plan)?;
        exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
            op: OpId(0),
            n: 4_000,
        }));
        let (prefix, done) = exec.run()?;
        assert!(!done);
        prefix_len = prefix.len();

        // Migration favors a small SuspendedQuery: suspend under a tight
        // budget so heavy state is rebuilt at the destination instead of
        // shipped over the network.
        let handle = exec.suspend(&SuspendPolicy::Optimized { budget: Some(10.0) })?;
        blob = handle.blob;
        println!(
            "node A: suspended after {prefix_len} tuples; SuspendedQuery blob is \
             {} bytes",
            blob.len
        );
        // Node A's session ends here; all its memory is gone.
    }

    // ----- Node B: a brand-new session resumes from the blob alone. -----
    let node_b = Database::open_default(&dir)?;
    let mut resumed = QueryExecution::resume_from_blob(node_b, blob)?;
    let rest = resumed.run_to_completion()?;
    println!(
        "node B: resumed and produced {} more tuples ({} total, expected {})",
        rest.len(),
        prefix_len + rest.len(),
        expected_total
    );
    assert_eq!(prefix_len + rest.len(), expected_total);

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
