//! The PR 2 surface, end to end: the shared buffer pool (LRU caching,
//! cost-ledger cache counters, capacity-0 passthrough fidelity) and the
//! overlapped suspend-dump write pipeline (parallel writers joined before
//! the manifest commit, crash-safe at any write ordinal).
//!
//! ```sh
//! cargo run --example buffer_pool
//! ```

use qsr::core::{OpId, SuspendPolicy};
use qsr::exec::{
    PlanSpec, Predicate, QueryExecution, SuspendOptions, SuspendTrigger,
};
use qsr::storage::{CostModel, Database, FaultInjector, Tuple, WriteFault};
use qsr::workload::{generate_table, TableSpec};
use std::sync::Arc;

fn join_plan() -> PlanSpec {
    PlanSpec::Sort {
        input: Box::new(PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan { table: "r".into() }),
                predicate: Predicate::IntLt { col: 1, value: 500 },
            }),
            inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 150,
        }),
        key: 0,
        buffer_tuples: 4096,
    }
}

fn fresh_db(dir: &std::path::Path, pool_pages: usize) -> Arc<Database> {
    std::fs::create_dir_all(dir).unwrap();
    let db = Database::open_with_pool(dir, CostModel::default(), pool_pages).unwrap();
    generate_table(&db, &TableSpec::new("r", 800).payload(16).seed(11)).unwrap();
    generate_table(&db, &TableSpec::new("s", 200).payload(16).seed(12)).unwrap();
    db
}

/// Run the join twice; return (tuples, charged page reads, cache hits).
fn run_twice(db: &Arc<Database>) -> (Vec<Tuple>, u64, u64) {
    db.ledger().reset();
    let mut out = Vec::new();
    for _ in 0..2 {
        out = QueryExecution::start(db.clone(), join_plan())
            .unwrap()
            .run_to_completion()
            .unwrap();
    }
    let snap = db.ledger().snapshot();
    (out, snap.total_pages_read(), snap.cache.hits)
}

fn suspend_point(db: &Arc<Database>) -> (Vec<Tuple>, QueryExecution) {
    let mut exec = QueryExecution::start(db.clone(), join_plan()).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(1),
        n: 250,
    }));
    let (prefix, done) = exec.run().unwrap();
    assert!(!done);
    (prefix, exec)
}

fn with_writers(n: usize) -> SuspendOptions {
    SuspendOptions {
        dump_writers: n,
        ..SuspendOptions::default()
    }
}

fn main() {
    let base = std::env::temp_dir().join(format!("qsr-bufpool-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // 1. Caching: the same repeated scan-join, uncached vs a 256-frame
    // pool. Identical output; the warm pool serves rescans from memory.
    let (cold_out, cold_reads, _) = run_twice(&fresh_db(&base.join("cold"), 0));
    let (warm_out, warm_reads, hits) = run_twice(&fresh_db(&base.join("warm"), 256));
    assert_eq!(cold_out, warm_out, "caching must not change results");
    assert!(
        warm_reads * 5 <= cold_reads,
        "cached rescan should charge >=5x fewer reads ({warm_reads} vs {cold_reads})"
    );
    println!(
        "repeated scan-join: {cold_reads} charged reads uncached, \
         {warm_reads} with a 256-frame pool ({hits} cache hits)"
    );

    // 2. The dump pipeline issues exactly the serial write set — count
    // write events under a fault injector in both modes.
    let mut counts = Vec::new();
    for writers in [0usize, 4] {
        let dir = base.join(format!("count{writers}"));
        let db = fresh_db(&dir, 0);
        let (_, exec) = suspend_point(&db);
        let fi = Arc::new(FaultInjector::seeded(1));
        db.disk().set_fault_injector(Some(fi.clone()));
        exec.suspend_with(&SuspendPolicy::AllDump, &with_writers(writers))
            .unwrap();
        db.disk().set_fault_injector(None);
        counts.push(fi.writes_observed());
    }
    assert_eq!(counts[0], counts[1], "pipeline changed the write-event set");
    println!(
        "suspend write events: {} serial == {} with 4 background writers",
        counts[0], counts[1]
    );

    // 3. Crash mid-pipeline: kill the process at a write ordinal in the
    // middle of the parallel dump flush, reopen cold, recover. The
    // manifest never committed, so recovery reports "no suspend" and a
    // fresh run still yields the reference output — or, if the ordinal
    // landed after the rename, resume completes it. Both must match.
    let reference = QueryExecution::start(fresh_db(&base.join("ref"), 0), join_plan())
        .unwrap()
        .run_to_completion()
        .unwrap();
    let dir = base.join("crash");
    let db = fresh_db(&dir, 0);
    let (prefix, exec) = suspend_point(&db);
    let fi = Arc::new(FaultInjector::seeded(7));
    fi.fail_write(counts[0] / 2, WriteFault::Crash);
    db.disk().set_fault_injector(Some(fi));
    let _ = exec.suspend_with(&SuspendPolicy::AllDump, &with_writers(4));
    drop(db);

    let db = Database::open_default(&dir).unwrap();
    let recovered = match QueryExecution::recover(db.clone()).unwrap() {
        Some(mut resumed) => {
            let mut all = prefix;
            all.extend(resumed.run_to_completion().unwrap());
            println!("crash mid-pipeline: suspend had committed, resumed to completion");
            all
        }
        None => {
            println!("crash mid-pipeline: suspend never committed, clean restart");
            QueryExecution::start(db, join_plan())
                .unwrap()
                .run_to_completion()
                .unwrap()
        }
    };
    assert_eq!(recovered, reference, "post-crash output diverged");

    // 4. Pipelined suspend over a *cached* database: dirty pool frames are
    // flushed before the commit point, so a cold process resumes fine.
    let dir = base.join("cached");
    let db = fresh_db(&dir, 256);
    let (prefix, exec) = suspend_point(&db);
    exec.suspend_with(&SuspendPolicy::AllDump, &with_writers(4))
        .unwrap();
    drop(db); // dirty frames die with the pool; disk must be complete
    let db = Database::open_default(&dir).unwrap();
    let mut resumed = QueryExecution::recover(db)
        .unwrap()
        .expect("committed suspend must recover");
    let mut all = prefix;
    all.extend(resumed.run_to_completion().unwrap());
    assert_eq!(all, reference, "cached suspend/recover diverged");
    println!("cached suspend: dirty frames flushed at commit, cold recovery OK");

    let _ = std::fs::remove_dir_all(&base);
    println!("buffer_pool example: all checks passed");
}
