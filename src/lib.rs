//! # qsr — Query Suspend and Resume
//!
//! Facade crate re-exporting the full stack: a from-scratch Rust
//! implementation of *Query Suspend and Resume* (SIGMOD 2007) —
//! operator-level asynchronous checkpointing, contracts, and online
//! suspend-plan optimization. See `README.md` for the guided tour and
//! `DESIGN.md` for the architecture.
//!
//! ```no_run
//! use qsr::core::SuspendPolicy;
//! use qsr::exec::{PlanSpec, Predicate, QueryExecution};
//! use qsr::storage::Database;
//! use qsr::workload::{generate_table, TableSpec};
//!
//! # fn main() -> qsr::storage::Result<()> {
//! let db = Database::open_default("./mydb")?;
//! generate_table(&db, &TableSpec::new("orders", 100_000))?;
//! generate_table(&db, &TableSpec::new("customers", 5_000))?;
//!
//! let plan = PlanSpec::BlockNlj {
//!     outer: Box::new(PlanSpec::Filter {
//!         input: Box::new(PlanSpec::TableScan { table: "orders".into() }),
//!         predicate: Predicate::IntLt { col: 1, value: 400 },
//!     }),
//!     inner: Box::new(PlanSpec::TableScan { table: "customers".into() }),
//!     outer_key: 0,
//!     inner_key: 0,
//!     buffer_tuples: 20_000,
//! };
//!
//! let mut exec = QueryExecution::start(db.clone(), plan)?;
//! exec.request_suspend(); // e.g. a high-priority query arrived
//! let (delivered, _) = exec.run()?;
//! let handle = exec.suspend(&SuspendPolicy::Optimized { budget: Some(500.0) })?;
//! // ... all memory released; later (even in another process):
//! let mut resumed = QueryExecution::resume(db, &handle)?;
//! let rest = resumed.run_to_completion()?;
//! # let _ = (delivered, rest);
//! # Ok(())
//! # }
//! ```

pub use qsr_core as core;
pub use qsr_exec as exec;
pub use qsr_mip as mip;
pub use qsr_oracle as oracle;
pub use qsr_planner as planner;
pub use qsr_server as server;
pub use qsr_storage as storage;
pub use qsr_workload as workload;
