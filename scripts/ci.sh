#!/usr/bin/env sh
# Full local CI: lint gate plus the tier-1 verify from ROADMAP.md.
# Runs entirely offline — all dependencies are vendored in shims/.
set -eu
cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
