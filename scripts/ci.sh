#!/usr/bin/env sh
# Full local CI: lint gate plus the tier-1 verify from ROADMAP.md.
# Runs entirely offline — all dependencies are vendored in shims/.
set -eu
cd "$(dirname "$0")/.."

cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# Release-mode suite: the buffer pool and the parallel dump pipeline are
# concurrency-sensitive; optimized codegen shakes out timing-dependent
# bugs the dev profile can mask.
cargo test --workspace --release -q

# Bench smoke: cached-vs-uncached scan-join ledger counters and serial
# vs pipelined suspend wall-clock. Asserts the >=5x cached-read reduction
# and writes BENCH_pr2.json.
cargo run --release -p qsr-bench --bin bench_pr2

# Degradation smoke: crash/torn/NoSpace at every write ordinal of a
# pressured suspend, of generation GC, and of generation retirement
# (tests/degradation_matrix.rs), then the deadline + quota ladder sweep
# bench. Asserts no rung overruns its budget beyond the commit
# bookkeeping and writes BENCH_pr4.json.
cargo test --release -q --test degradation_matrix
cargo run --release -p qsr-bench --bin bench_pr4

# Differential suspend-point oracle, bounded CI shape: stride-1 sweep
# over the corpus plus 32 seeded fault schedules (the workspace test run
# above already covers the default seed; this pins an explicit one so
# printed repro tokens stay valid across environments). Set
# QSR_ORACLE_FULL=1 for the widened nightly-style run.
QSR_ORACLE_SEED=219803630 QSR_ORACLE_FAULTS=32 \
    cargo test --release -q --test oracle_sweep

# Observability smoke: the oracle smoke runs with a JSONL flight-recorder
# sink attached (QSR_TRACE), every emitted line is validated against the
# checked-in event schema, and the zero-overhead-off pin — tracer
# installed vs absent leaves the CostLedger bit-identical — runs in
# release mode.
QSR_TRACE_DIR="$(mktemp -d)"
QSR_TRACE="$QSR_TRACE_DIR/trace.jsonl" \
    cargo run --release -p qsr-bench --bin oracle_smoke
cargo run --release -p qsr-bench --bin trace_check -- \
    "$QSR_TRACE_DIR/trace.jsonl" scripts/trace.schema.json
cargo run --release -p qsr-bench --bin trace_summary -- \
    "$QSR_TRACE_DIR/trace.jsonl"
rm -rf "$QSR_TRACE_DIR"
cargo test --release -q --test trace_invariants \
    tracer_installed_is_ledger_bit_identical

# Scheduler smoke: the multi-session preemptive server. Three concurrent
# sessions over one live slot (every activation forces a pressure
# preemption of the MIP-cheapest victim), the fault matrix injecting
# crash/torn/NoSpace at every write ordinal of a preemption with full
# registry recovery after each halting fault (tests/server_matrix.rs),
# the server binary end-to-end, and the session-count sweep bench
# writing BENCH_pr6.json (throughput + p95 resume latency in ledger
# units).
cargo test --release -q --test server_matrix
cargo run --release -q -p qsr-server --bin qsr-server -- \
    --sessions 3 --quantum 1500 --max-live 1
cargo run --release -p qsr-bench --bin bench_pr6

# Vectorization stage: the batch execution path. A deliberately awkward
# batch size (48, straddling page boundaries) re-runs the end-to-end and
# stride-7 oracle sweeps in batch mode so every suspend point is hit with
# partially filled batches, then the vectorized-scan bench asserts pool-0
# ledger bit-identity between tuple and batch modes and writes
# BENCH_pr7.json. (The nightly QSR_ORACLE_FULL=1 oracle run widens this
# lane too: the oracle's batch axis replays every corpus scenario at
# several batch sizes against the tuple-mode reference.)
QSR_BATCH_SIZE=48 cargo test --release -q --test end_to_end
QSR_ORACLE_STRIDE=7 QSR_BATCH_SIZE=48 \
    cargo test --release -q --test oracle_sweep
cargo run --release -p qsr-bench --bin bench_pr7

# Larger-than-memory stage: the recursive grace hash join and the
# multi-pass external sort. The partition-depth and merge-pass sweeps
# assert the budget/fan-in knobs actually grade recursion depth and
# intermediate pass counts, and a NoSpace fault parked mid-recursive
# spill must land on a degraded ladder rung that still resumes.
cargo run --release -p qsr-bench --bin bench_pr8

# Backend stage: pluggable suspend backends, delta checkpoints, and
# retention. The delta-chain commit / compaction-fold / retention-GC /
# remote retry-failover fault matrices already ran in the release
# degradation_matrix pass above; here the backend-aware oracle lane
# replays suspend chains across local/memory/remote x delta x keep, the
# env-knob audit covers QSR_SUSPEND_BACKEND / QSR_DELTA /
# QSR_KEEP_GENERATIONS, and the bench asserts five delta suspends charge
# measurably less dump I/O than full dumps (and that the remote stack
# retries transients but fails over dead endpoints) and writes
# BENCH_pr9.json.
cargo test --release -q --test oracle_sweep backend_delta_retention_chains
cargo test --release -q -p qsr-storage --test env_knobs
cargo run --release -p qsr-bench --bin bench_pr9

# Concurrency stage: true threaded quantum slices. The seeded stress
# lane (sessions x workers {2,4} x backend x delta, goldens delivered
# exactly once with concurrent parking forced), the crash injected
# mid-concurrent-suspend with registry recovery, SLA-budget rung
# forcing with per-tenant miss accounting, admission-control
# reject/queue/drain, and the orphan-blob sweep for torn remote puts.
# The server binary then runs end-to-end with two slice threads, and
# the worker-sweep bench pins workers=0 ledger bit-identity across
# runs and writes BENCH_pr10.json (wall-clock throughput, per-tenant
# p50/p95 slice latency, SLA-miss rate for workers in {0,1,2,4}).
cargo test --release -q --test server_matrix \
    threaded_stress_lane_delivers_goldens_exactly_once
cargo test --release -q --test server_matrix \
    crash_mid_concurrent_suspend_leaves_registry_recoverable
cargo test --release -q --test server_matrix \
    sla_budgets_force_cheaper_rungs_and_count_misses
cargo test --release -q --test server_matrix \
    admission_control_rejects_queues_and_drains
cargo test --release -q --test delta_retention \
    torn_remote_put_orphans_are_swept_and_resume_survives
cargo run --release -q -p qsr-server --bin qsr-server -- \
    --sessions 3 --quantum 1500 --max-live 1 --workers 2
cargo run --release -p qsr-bench --bin bench_pr10

# Nightly lane (opt-in: QSR_NIGHTLY=1). The full-corpus oracle matrix —
# every scenario x config x batch combination at stride cfg.stride,
# including the grace/multipass knob cross product — plus the paper-scale
# (2.2M rows, 200K-tuple buffers) larger-than-memory smoke. Hours, not
# minutes: keep it off the commit path.
if [ "${QSR_NIGHTLY:-0}" = "1" ]; then
    QSR_ORACLE_FULL=1 QSR_ORACLE_SEED=219803630 QSR_ORACLE_FAULTS=64 \
        cargo test --release -q --test oracle_sweep
    QSR_ORACLE_FULL=1 QSR_BATCH_SIZE=48 \
        cargo test --release -q --test oracle_sweep
    # Delta-chain lane: the widened corpus crossing every backend with
    # delta chaining and multi-generation retention windows.
    QSR_ORACLE_FULL=1 \
        cargo test --release -q --test oracle_sweep backend_delta_retention_chains
    cargo run --release -p qsr-bench --bin bench_pr8 -- --scale
fi
