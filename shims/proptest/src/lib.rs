//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest's API it uses: the
//! `proptest!` macro (both `ident in strategy` and `ident: Type`
//! parameter forms, plus `#![proptest_config(..)]`), `any::<T>()`,
//! range and string strategies, `prop_map`, `prop_oneof!`,
//! `proptest::collection::vec`, `proptest::bool::ANY`, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline harness:
//! cases are generated from a seed derived from the test name, so runs
//! are fully deterministic; there is no shrinking (failures report the
//! case number and inputs via the panic message instead); and string
//! "regex" strategies only honor a trailing `{m,n}` length bound, which
//! is the only regex feature the workspace uses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG handed to strategies while generating one case.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// RNG for case `case` of the test named `name` (deterministic).
    pub fn for_case(name: &str, case: u32) -> Self {
        let h = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37_79b9)))
    }

    /// Uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    /// Uniform sample from a range (see [`rand::Rng::gen_range`]).
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: rand::SampleUniform,
        R: rand::SampleRange<T>,
    {
        self.0.gen_range(range)
    }

    /// Bernoulli sample.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.0.gen_bool(p)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Object-safe strategy, for [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Type-erased strategy (output of [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
            let ix = rng.gen_range(0..self.0.len());
            self.0[ix].generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// String strategy from a regex-ish pattern. Only a trailing
    /// `{m,n}` repetition bound is honored (the workspace uses `".*"`
    /// and `".{0,24}"`); everything else means "arbitrary chars".
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_len_bounds(self).unwrap_or((0, 32));
            let len = rng.gen_range(min..=max);
            // Mix ASCII with multi-byte and boundary code points so
            // codec round-trip tests see interesting UTF-8.
            (0..len)
                .map(|_| match rng.gen_range(0..10u32) {
                    0 => '\0',
                    1 => '\u{7f}',
                    2 => 'é',
                    3 => '日',
                    4 => '\u{10348}',
                    5 => '\u{fffd}',
                    _ => char::from_u32(rng.gen_range(0x20..0x7fu32)).unwrap_or('x'),
                })
                .collect()
        }
    }

    fn parse_len_bounds(pattern: &str) -> Option<(usize, usize)> {
        let inner = pattern.strip_suffix('}')?;
        let brace = inner.rfind('{')?;
        let body = &inner[brace + 1..];
        let (m, n) = body.split_once(',')?;
        Some((m.trim().parse().ok()?, n.trim().parse().ok()?))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn string_pattern_bounds() {
            let mut rng = TestRng::for_case("string_pattern_bounds", 0);
            for _ in 0..200 {
                let s = ".{0,24}".generate(&mut rng);
                assert!(s.chars().count() <= 24);
            }
        }

        #[test]
        fn map_and_oneof() {
            let mut rng = TestRng::for_case("map_and_oneof", 0);
            let st = Union(vec![
                (0..10u64).prop_map(|v| v as i64).boxed(),
                (100..110u64).prop_map(|v| v as i64).boxed(),
            ]);
            for _ in 0..100 {
                let v = st.generate(&mut rng);
                assert!((0..10).contains(&v) || (100..110).contains(&v));
            }
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use super::strategy::Strategy;
    use super::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "arbitrary value" strategy.
    pub trait Arbitrary: Sized {
        /// Produce one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias toward boundary values now and then: they are
                    // where codecs break.
                    match rng.gen_range(0..16u32) {
                        0 => 0 as $t,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(u64::arbitrary(rng))
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            let len = rng.gen_range(0..64usize);
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }

    impl Arbitrary for String {
        fn arbitrary(rng: &mut TestRng) -> Self {
            ".*".generate(rng)
        }
    }

    /// Strategy producing arbitrary values of `T` (see [`any`]).
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Vector of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Uniform `true` / `false`.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    /// The canonical boolean strategy (`proptest::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;
}

pub mod test_runner {
    //! Runner configuration.

    /// Subset of proptest's `Config` honored by this harness.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }
}

pub mod prelude {
    //! Everything a test module needs, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property-test entry point. Supports `ident in strategy` and
/// `ident: Type` parameters and an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    (@tests ($cfg:expr)) => {};
    (@tests ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $crate::proptest!(@bind __rng, case, $body, $($params)*);
            }
        }
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    // Parameter binders: peel one `ident in strategy` or `ident: Type`
    // parameter, bind it, recurse on the rest, then run the body.
    (@bind $rng:ident, $case:ident, $body:block, ) => { $body };
    (@bind $rng:ident, $case:ident, $body:block, $var:ident in $strat:expr) => {
        $crate::proptest!(@bind $rng, $case, $body, $var in $strat,)
    };
    (@bind $rng:ident, $case:ident, $body:block, $var:ident in $strat:expr, $($rest:tt)*) => {
        {
            let $var = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
            $crate::proptest!(@bind $rng, $case, $body, $($rest)*)
        }
    };
    (@bind $rng:ident, $case:ident, $body:block, $var:ident : $ty:ty) => {
        $crate::proptest!(@bind $rng, $case, $body, $var : $ty,)
    };
    (@bind $rng:ident, $case:ident, $body:block, $var:ident : $ty:ty, $($rest:tt)*) => {
        {
            let $var = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
            $crate::proptest!(@bind $rng, $case, $body, $($rest)*)
        }
    };
    // No config attribute: use the default.
    ($($rest:tt)*) => {
        $crate::proptest!(@tests ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_params_work(v: u64, b: Vec<u8>, flag: bool) {
            let _ = (v, b, flag);
        }

        #[test]
        fn strategy_params_work(x in 3u32..9, s in ".{0,4}", z in crate::bool::ANY) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(s.chars().count() <= 4);
            let _ = z;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn config_is_honored(vals in crate::collection::vec(any::<i64>(), 0..12)) {
            prop_assert!(vals.len() < 12);
        }
    }

    #[test]
    fn oneof_compiles_and_generates() {
        use crate::strategy::Strategy;
        let st = prop_oneof![
            any::<i64>().prop_map(|v| v.to_string()),
            ".{1,3}".prop_map(|s| s),
        ];
        let mut rng = crate::TestRng::for_case("oneof", 1);
        for _ in 0..50 {
            let _ = st.generate(&mut rng);
        }
    }
}
