//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of criterion's API its benches use:
//! `Criterion::benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple wall-clock loop
//! (warm-up + fixed sample count, median reported) — good enough for
//! eyeballing regressions, with none of criterion's statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one bench within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, one invocation per sample.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up pass, not recorded.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.results.push(start.elapsed());
        }
    }
}

/// Opaque value sink preventing the optimizer from deleting bench bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named group of related benches.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of recorded samples per bench.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run(&self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.sample_size,
            results: Vec::new(),
        };
        f(&mut b);
        b.results.sort_unstable();
        let median = b
            .results
            .get(b.results.len() / 2)
            .copied()
            .unwrap_or_default();
        println!(
            "bench {}/{id}: median {median:?} over {} samples",
            self.name,
            b.results.len()
        );
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(&id.to_string(), f);
        self
    }

    /// Benchmark a closure that borrows an input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level bench context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group("default");
        group.bench_function(id, f);
        self
    }
}

/// Declare a group of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the declared groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 4, "3 samples + 1 warm-up");
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &v| {
            b.iter(|| v * 2)
        });
        g.finish();
    }
}
