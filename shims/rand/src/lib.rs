//! Offline stand-in for the `rand` crate (0.8-compatible API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `rand`'s API it uses: a seedable
//! deterministic generator (`rngs::StdRng`), `Rng::gen_range` /
//! `Rng::gen_bool`, and `seq::SliceRandom::shuffle`. The generator is
//! xoshiro256** seeded through SplitMix64 — high-quality and fully
//! deterministic for a given seed, which is all the workload generators
//! and tests rely on (they never depend on the exact stream of the real
//! `StdRng`).

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (API-compatible subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

mod uniform {
    use super::RngCore;

    /// Types that [`super::Rng::gen_range`] can sample uniformly.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform sample from `[low, high)` (`high` exclusive).
        fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        /// Uniform sample from `[low, high]` (`high` inclusive).
        fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    }

    macro_rules! impl_int_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u128;
                    let v = rng.next_u64() as u128 % span;
                    (low as i128 + v as i128) as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low <= high, "gen_range: empty range");
                    let span = (high as i128 - low as i128) as u128 + 1;
                    let v = rng.next_u64() as u128 % span;
                    (low as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    assert!(low < high, "gen_range: empty range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    low + (high - low) * unit as $t
                }
                fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                    Self::sample_exclusive(rng, low, high)
                }
            }
        )*};
    }

    impl_float_uniform!(f32, f64);

    /// Range argument accepted by [`super::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Draw one uniform sample from the range.
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_exclusive(rng, self.start, self.end)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_inclusive(rng, low, high)
        }
    }
}

pub use uniform::{SampleRange, SampleUniform};

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`low..high` or `low..=high`).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (offline stand-in for the
    /// real crate's ChaCha-based `StdRng`; same trait surface, different
    /// stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension methods (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub use seq::SliceRandom as _;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.gen_range(0..1_000_000i64) == c.gen_range(0..1_000_000i64));
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-3.0..3.0f64);
            assert!((-3.0..3.0).contains(&w));
            let x = r.gen_range(1..=6usize);
            assert!((1..=6).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_holds() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should move something");
        assert!(v.choose(&mut r).is_some());
    }
}
