//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `parking_lot`'s API it actually
//! uses, implemented over `std::sync`. Semantics match `parking_lot`
//! where the workspace depends on them: `lock()` never returns a poison
//! error (a poisoned std lock is transparently recovered — panicking
//! while holding a lock is already a bug elsewhere, and `parking_lot`
//! has no poisoning at all).

use std::sync::{self, TryLockError};

/// Non-poisoning mutex with `parking_lot`'s `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock with `parking_lot`'s signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
