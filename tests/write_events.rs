//! Write-event-set equality: a pipelined suspend must issue exactly the
//! same labeled write events as a serial one.
//!
//! The dump pipeline overlaps blob writes across worker threads, so the
//! *global* ordering of write events is scheduling-dependent — but blob
//! file ids are allocated on the submitting thread in operator order, and
//! each file's pages are written by a single job in order. Grouping the
//! recorded [`WriteEvent`] stream per target file therefore must yield
//! identical ordered sequences for `dump_writers: 0` and `dump_writers: 4`,
//! at both a passthrough (pool 0) and a caching (pool 64) database. A
//! divergence means the pipeline added, dropped, merged, or relabeled an
//! I/O — precisely the class of bug that silently shifts the crash-matrix
//! ordinal space.

use qsr::core::SuspendPolicy;
use qsr::exec::{PlanSpec, QueryExecution, SuspendOptions, WorkUnitObserver};
use qsr::storage::{CostModel, Database, FaultInjector, WriteEvent, WriteKind};
use qsr::workload::{generate_table, TableSpec};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qsr-wevents-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Sort over a spilling hash join: at the suspend point both the join
/// (partition files, hybrid-resident partition) and the sort (run buffer)
/// carry dump-worthy state, so the suspend writes several distinct blobs —
/// enough for the pipeline to genuinely interleave.
fn plan() -> PlanSpec {
    PlanSpec::Sort {
        input: Box::new(PlanSpec::HashJoin {
            build: Box::new(PlanSpec::TableScan { table: "s".into() }),
            probe: Box::new(PlanSpec::TableScan { table: "r".into() }),
            build_key: 0,
            probe_key: 0,
            partitions: 4,
            hybrid: false,
        }),
        key: 0,
        buffer_tuples: 256,
    }
}

fn populate(db: &Arc<Database>) {
    generate_table(db, &TableSpec::new("r", 600).payload(16).seed(11)).unwrap();
    generate_table(db, &TableSpec::new("s", 150).payload(16).seed(12)).unwrap();
}

fn observer_at(boundary: u64) -> Box<dyn WorkUnitObserver> {
    Box::new(move |_op, seq: u64| seq >= boundary)
}

/// Total work units of the uninterrupted query, so the suspend boundary
/// can be pinned mid-flight without guessing operator output counts.
fn total_work_units() -> u64 {
    let dir = TempDir::new("golden");
    let db = Database::open_default(&dir.0).unwrap();
    populate(&db);
    let mut exec = QueryExecution::start(db, plan()).unwrap();
    exec.run_to_completion().unwrap();
    exec.work_units()
}

/// Run to the half-way work unit, suspend under a recording injector, and
/// return the suspend phase's write events grouped per target in arrival
/// order.
fn suspend_events(
    boundary: u64,
    pool_pages: usize,
    dump_writers: usize,
) -> BTreeMap<String, Vec<WriteEvent>> {
    let dir = TempDir::new("cell");
    let db = Database::open_with_pool(&dir.0, CostModel::default(), pool_pages).unwrap();
    populate(&db);
    db.pool().flush_all().unwrap();

    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    exec.set_work_unit_observer(Some(observer_at(boundary)));
    let (_prefix, done) = exec.run().unwrap();
    assert!(!done, "suspend boundary must land mid-query");

    let fi = Arc::new(FaultInjector::seeded(0));
    fi.record_events(true);
    db.disk().set_fault_injector(Some(fi.clone()));
    exec.suspend_with(
        &SuspendPolicy::AllDump,
        &SuspendOptions {
            dump_writers,
            ..SuspendOptions::default()
        },
    )
    .unwrap();
    db.disk().set_fault_injector(None);

    let mut by_target: BTreeMap<String, Vec<WriteEvent>> = BTreeMap::new();
    for ev in fi.take_events() {
        by_target.entry(ev.target.clone()).or_default().push(ev);
    }
    by_target
}

fn assert_same_per_file_sequences(
    serial: &BTreeMap<String, Vec<WriteEvent>>,
    pipelined: &BTreeMap<String, Vec<WriteEvent>>,
    pool_pages: usize,
) {
    let s_targets: Vec<_> = serial.keys().collect();
    let p_targets: Vec<_> = pipelined.keys().collect();
    assert_eq!(
        s_targets, p_targets,
        "pool {pool_pages}: pipelined suspend touched a different file set"
    );
    for (target, s_events) in serial {
        assert_eq!(
            s_events, &pipelined[target],
            "pool {pool_pages}: write sequence for {target} diverged between \
             serial and pipelined suspend"
        );
    }
}

#[test]
fn pipelined_suspend_writes_equal_serial_per_file() {
    let boundary = (total_work_units() / 2).max(1);
    for pool_pages in [0usize, 64] {
        let serial = suspend_events(boundary, pool_pages, 0);
        let pipelined = suspend_events(boundary, pool_pages, 4);

        // Sanity: the suspend really dumped state (several blob files plus
        // the manifest's two-step atomic commit).
        assert!(
            serial.len() >= 3,
            "pool {pool_pages}: expected several dump files, got {:?}",
            serial.keys().collect::<Vec<_>>()
        );
        let manifest = serial
            .get(qsr::exec::SUSPEND_MANIFEST)
            .unwrap_or_else(|| panic!("pool {pool_pages}: no manifest commit recorded"));
        assert_eq!(
            manifest.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![WriteKind::SidecarWrite, WriteKind::SidecarRename],
            "pool {pool_pages}: manifest commit must be write-tmp then rename"
        );

        assert_same_per_file_sequences(&serial, &pipelined, pool_pages);
    }
}

#[test]
fn caching_pool_defers_but_does_not_invent_writes() {
    // Cross-pool the event *kinds* per file still agree in multiset terms
    // for the dump blobs themselves: dump files are created fresh at
    // suspend time and synced before commit, so caching cannot elide any
    // of their pages — only table-file write-back timing may differ.
    let boundary = (total_work_units() / 2).max(1);
    let plain = suspend_events(boundary, 0, 0);
    let cached = suspend_events(boundary, 64, 0);
    for (target, events) in &plain {
        let Some(cached_events) = cached.get(target) else {
            continue; // table write-back absorbed by the cache: legal
        };
        if events.first().map(|e| e.kind) == Some(WriteKind::Create) {
            assert_eq!(
                events, cached_events,
                "dump blob {target} must see identical writes with and without a cache"
            );
        }
    }
}
