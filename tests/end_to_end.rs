//! End-to-end integration tests through the `qsr` facade crate: the full
//! lifecycle across every layer (workload → storage → executor → contract
//! graph → optimizer → suspend/resume), including cross-"node" migration
//! and budget compliance.

use qsr::core::{OpId, SuspendPolicy};
use qsr::exec::{AggFn, PlanSpec, Predicate, QueryExecution, SuspendTrigger};
use qsr::storage::{Database, Phase};
use qsr::workload::{generate_table, TableSpec};
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qsr-e2e-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn setup(tag: &str) -> (TempDir, Arc<Database>) {
    let dir = TempDir::new(tag);
    let db = Database::open_default(&dir.0).unwrap();
    generate_table(&db, &TableSpec::new("r", 4000).payload(32).seed(11)).unwrap();
    generate_table(&db, &TableSpec::new("s", 800).payload(32).seed(12)).unwrap();
    (dir, db)
}

fn join_plan(buffer: usize) -> PlanSpec {
    PlanSpec::BlockNlj {
        outer: Box::new(PlanSpec::Filter {
            input: Box::new(PlanSpec::TableScan { table: "r".into() }),
            predicate: Predicate::IntLt { col: 1, value: 600 },
        }),
        inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
        outer_key: 0,
        inner_key: 0,
        buffer_tuples: buffer,
    }
}

#[test]
fn full_lifecycle_with_optimizer() {
    let (_d, db) = setup("lifecycle");
    let plan = join_plan(700);

    let mut base = QueryExecution::start(db.clone(), plan.clone()).unwrap();
    let expected = base.run_to_completion().unwrap();

    let mut exec = QueryExecution::start(db.clone(), plan).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(0),
        n: 500,
    }));
    let (prefix, done) = exec.run().unwrap();
    assert!(!done);
    let handle = exec
        .suspend(&SuspendPolicy::Optimized { budget: None })
        .unwrap();
    let mut resumed = QueryExecution::resume(db, &handle).unwrap();
    let rest = resumed.run_to_completion().unwrap();

    let mut all = prefix;
    all.extend(rest);
    assert_eq!(all, expected);
}

#[test]
fn migration_to_fresh_session() {
    // Suspend under one Database handle; resume under a completely fresh
    // one over the same directory (the Grid migration scenario).
    let dir = TempDir::new("migrate");
    let expected;
    let blob;
    let prefix_len;
    {
        let db = Database::open_default(&dir.0).unwrap();
        generate_table(&db, &TableSpec::new("r", 4000).payload(32).seed(21)).unwrap();
        generate_table(&db, &TableSpec::new("s", 800).payload(32).seed(22)).unwrap();
        let plan = join_plan(900);
        let mut base = QueryExecution::start(db.clone(), plan.clone()).unwrap();
        expected = base.run_to_completion().unwrap();

        let mut exec = QueryExecution::start(db.clone(), plan).unwrap();
        exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
            op: OpId(0),
            n: 777,
        }));
        let (prefix, done) = exec.run().unwrap();
        assert!(!done);
        prefix_len = prefix.len();
        blob = exec
            .suspend(&SuspendPolicy::Optimized { budget: Some(15.0) })
            .unwrap()
            .blob;
    }
    let db2 = Database::open_default(&dir.0).unwrap();
    let mut resumed = QueryExecution::resume_from_blob(db2, blob).unwrap();
    let rest = resumed.run_to_completion().unwrap();
    assert_eq!(prefix_len + rest.len(), expected.len());
}

#[test]
fn budget_is_respected_at_suspend_time() {
    let (_d, db) = setup("budget");
    let plan = join_plan(2000);

    for budget in [5.0, 20.0, 1000.0] {
        db.ledger().reset();
        let mut exec = QueryExecution::start(db.clone(), plan.clone()).unwrap();
        exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
            op: OpId(0),
            n: 1800,
        }));
        let (_, done) = exec.run().unwrap();
        assert!(!done);
        let before = db.ledger().snapshot();
        let handle = exec
            .suspend(&SuspendPolicy::Optimized {
                budget: Some(budget),
            })
            .unwrap();
        let spent = db.ledger().snapshot().since(&before).phase_cost(Phase::Suspend);
        // Small slack: the SuspendedQuery blob itself is written outside
        // the optimizer's budgeted dumps.
        assert!(
            spent <= budget + 15.0,
            "budget {budget}: spent {spent}"
        );
        let mut resumed = QueryExecution::resume(db.clone(), &handle).unwrap();
        resumed.run_to_completion().unwrap();
    }
}

#[test]
fn aggregate_pipeline_suspends_cleanly() {
    let (_d, db) = setup("aggpipe");
    let plan = PlanSpec::StreamAgg {
        input: Box::new(PlanSpec::Sort {
            input: Box::new(PlanSpec::TableScan { table: "r".into() }),
            key: 1,
            buffer_tuples: 600,
        }),
        group_col: Some(1),
        agg_col: 0,
        func: AggFn::Count,
    };
    let mut base = QueryExecution::start(db.clone(), plan.clone()).unwrap();
    let expected = base.run_to_completion().unwrap();

    for n in [200u64, 2000, 3999] {
        let mut exec = QueryExecution::start(db.clone(), plan.clone()).unwrap();
        exec.set_trigger(Some(SuspendTrigger::AfterOpTuples { op: OpId(1), n }));
        let (prefix, done) = exec.run().unwrap();
        if done {
            assert_eq!(prefix, expected);
            continue;
        }
        let handle = exec.suspend(&SuspendPolicy::AllGoBack).unwrap();
        let mut resumed = QueryExecution::resume(db.clone(), &handle).unwrap();
        let rest = resumed.run_to_completion().unwrap();
        let mut all = prefix;
        all.extend(rest);
        assert_eq!(all, expected, "suspend at sort tick {n}");
    }
}

/// Larger-than-memory operators under the vectorized path: tuple-at-a-time
/// and `QSR_BATCH_SIZE=48` batch execution must produce bit-identical
/// output *and* bit-identical execution-phase ledgers (vectorization
/// reshapes the pull loop, never the I/O), for the recursive grace join
/// and the multi-pass external sort — including a batch-mode suspend
/// parked mid-machinery (inside the partition spills / merge passes).
#[test]
fn grace_operators_batch_mode_pins_tuple_mode_ledgers() {
    use qsr::workload::KeyDist;

    let grace_setup = |tag: &str| -> (TempDir, Arc<Database>) {
        let dir = TempDir::new(tag);
        let db = Database::open_default(&dir.0).unwrap();
        generate_table(
            &db,
            &TableSpec::new("gb", 27).payload(24).seed(15).dist(KeyDist::DupHeavy),
        )
        .unwrap();
        generate_table(&db, &TableSpec::new("ga", 54).payload(24).seed(14)).unwrap();
        generate_table(
            &db,
            &TableSpec::new("gc", 60).payload(24).seed(16).dist(KeyDist::Reversed),
        )
        .unwrap();
        (dir, db)
    };
    let plans = [
        PlanSpec::MemoryBudget {
            input: Box::new(PlanSpec::HashJoin {
                build: Box::new(PlanSpec::TableScan { table: "gb".into() }),
                probe: Box::new(PlanSpec::TableScan { table: "ga".into() }),
                build_key: 0,
                probe_key: 0,
                partitions: 3,
                hybrid: false,
            }),
            mem_budget: 2,
            merge_fanin: 0,
        },
        PlanSpec::MemoryBudget {
            input: Box::new(PlanSpec::Sort {
                input: Box::new(PlanSpec::TableScan { table: "gc".into() }),
                key: 0,
                buffer_tuples: 6,
            }),
            mem_budget: 0,
            merge_fanin: 2,
        },
    ];
    for plan in plans {
        // Tuple-mode reference: output, total work units, and the
        // execution ledger.
        let (_d1, db1) = grace_setup("gbt");
        db1.ledger().reset();
        let mut tuple_exec = QueryExecution::start(db1.clone(), plan.clone()).unwrap();
        tuple_exec.set_batch_size(0);
        let expected = tuple_exec.run_to_completion().unwrap();
        let total = tuple_exec.work_units();
        let tuple_ledger = db1.ledger().snapshot();

        // Batch 48, uninterrupted: bit-identical output and ledger.
        let (_d2, db2) = grace_setup("gbb");
        db2.ledger().reset();
        let mut batch_exec = QueryExecution::start(db2.clone(), plan.clone()).unwrap();
        batch_exec.set_batch_size(48);
        assert_eq!(batch_exec.run_to_completion().unwrap(), expected);
        let batch_ledger = db2.ledger().snapshot();
        assert_eq!(
            tuple_ledger.total_cost(),
            batch_ledger.total_cost(),
            "batch mode must not change execution I/O cost"
        );
        assert_eq!(
            tuple_ledger.phase(Phase::Execute),
            batch_ledger.phase(Phase::Execute),
            "batch mode must not change execute-phase page counts"
        );

        // Batch 48 with suspends parked inside the machinery: boundaries
        // at 40% and 60% of the work-unit space land mid-spill / mid-pass
        // (the same region the degradation matrix's tracer cross-check
        // pins), and batch-mode resume must still complete to `expected`.
        for frac in [4u64, 6] {
            let b = (total * frac / 10).max(1);
            let (dir, db) = grace_setup("gbs");
            let mut exec = QueryExecution::start(db.clone(), plan.clone()).unwrap();
            exec.set_batch_size(48);
            exec.set_work_unit_observer(Some(Box::new(move |_op, seq: u64| seq >= b)));
            let (prefix, done) = exec.run().unwrap();
            assert!(!done, "boundary {b} must interrupt the query");
            exec.suspend(&SuspendPolicy::Optimized { budget: None })
                .unwrap();
            drop(db);
            // Fresh handle over the same directory: the "new process".
            let db = Database::open_default(&dir.0).unwrap();
            let mut resumed = QueryExecution::recover(db).unwrap().unwrap();
            resumed.set_batch_size(48);
            let rest = resumed.run_to_completion().unwrap();
            let mut all = prefix;
            all.extend(rest);
            assert_eq!(all, expected, "batch-mode suspend at boundary {b}");
        }
    }
}

#[test]
fn checkpointing_overhead_is_negligible_in_cost_units() {
    // The paper's §3.1 claim: asynchronous checkpointing at
    // minimal-heap-state points performs no I/O during execution.
    let (_d, db) = setup("overhead");
    let plan = join_plan(700);

    db.ledger().reset();
    let mut with = QueryExecution::start(db.clone(), plan.clone()).unwrap();
    with.run_to_completion().unwrap();
    let cost_with = db.ledger().snapshot().total_cost();

    db.ledger().reset();
    let mut without = QueryExecution::start_without_checkpointing(db.clone(), plan).unwrap();
    without.run_to_completion().unwrap();
    let cost_without = db.ledger().snapshot().total_cost();

    assert_eq!(
        cost_with, cost_without,
        "checkpointing must add zero I/O cost during execution"
    );
}

#[test]
fn resume_without_persisted_graph_reforms_gradually() {
    // Paper §3.3: "If we do not store the contract graph, part of the
    // contract graph is still available... as the query execution
    // continues, the contract graph will be gradually reformed."
    use qsr::exec::driver::SuspendOptions;
    let (_d, db) = setup("nograph");
    let plan = join_plan(400);
    let mut base = QueryExecution::start(db.clone(), plan.clone()).unwrap();
    let expected = base.run_to_completion().unwrap();

    let mut exec = QueryExecution::start(db.clone(), plan).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(0),
        n: 300,
    }));
    let (p1, done) = exec.run().unwrap();
    assert!(!done);
    let h1 = exec
        .suspend_with(
            &SuspendPolicy::Optimized { budget: None },
            &SuspendOptions {
                persist_graph: false,
                ..SuspendOptions::default()
            },
        )
        .unwrap();

    // Resume with an empty graph; run past several batch boundaries so
    // fresh checkpoints form, then suspend again — first with the
    // always-valid all-DumpState, then (after more reformation) with the
    // optimizer.
    let mut exec = QueryExecution::resume(db.clone(), &h1).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(0),
        n: 500,
    }));
    let (p2, done) = exec.run().unwrap();
    assert!(!done, "trigger should fire again");
    let h2 = exec.suspend(&SuspendPolicy::AllDump).unwrap();

    let mut exec = QueryExecution::resume(db.clone(), &h2).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(0),
        n: 300,
    }));
    let (p3, done) = exec.run().unwrap();
    let (p4, h3_used) = if done {
        (Vec::new(), false)
    } else {
        // The graph has re-formed: the optimizer may legitimately choose
        // GoBack chains again.
        let h3 = exec
            .suspend(&SuspendPolicy::Optimized { budget: None })
            .unwrap();
        let mut exec = QueryExecution::resume(db.clone(), &h3).unwrap();
        (exec.run_to_completion().unwrap(), true)
    };

    let mut all = p1;
    all.extend(p2);
    all.extend(p3);
    all.extend(p4);
    assert_eq!(all, expected, "h3_used={h3_used}");
}
