//! Oracle family for the multi-session preemptive server: N concurrent
//! sessions over one shared database, scheduled by suspension, under
//! seeded fault schedules.
//!
//! The invariant (ISSUE 6 acceptance): under a crash, torn write, or
//! NoSpace at **any** write ordinal of a preemption window, every
//! non-victim session resumes to results bit-identical to its
//! uninterrupted golden run, and the victim either resumes correctly or
//! clean-aborts with its exact pre-suspend state restored (replaying from
//! its last committed generation — or scratch — without duplicating a
//! tuple). Per-session manifests must always read cleanly: exactly one
//! valid generation per session, never a torn mix, never cross-session
//! damage.

use qsr::core::SuspendPolicy;
use qsr::exec::{read_manifest_named, AggFn, PlanSpec, Predicate, SuspendOptions};
use qsr::server::{QsrServer, ServerConfig, SessionId, SessionRegistry};
use qsr::storage::{
    CostModel, Database, FaultInjector, TraceEvent, Tracer, Tuple, WriteFault,
};
use qsr::workload::{generate_table, TableSpec};
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qsr-server-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic tables so write-event ordinals line up across the matrix.
fn populate(db: &Arc<Database>) {
    generate_table(db, &TableSpec::new("r", 800).payload(16).seed(11)).unwrap();
    generate_table(db, &TableSpec::new("s", 200).payload(16).seed(12)).unwrap();
}

/// Three heterogeneous sessions: a dump-heavy sort-over-join, a buffered
/// join, and a partitioned aggregation — distinct operator state shapes,
/// so preemption exercises distinct suspend plans per victim.
fn plans() -> Vec<PlanSpec> {
    vec![
        PlanSpec::Sort {
            input: Box::new(PlanSpec::BlockNlj {
                outer: Box::new(PlanSpec::Filter {
                    input: Box::new(PlanSpec::TableScan { table: "r".into() }),
                    predicate: Predicate::IntLt { col: 1, value: 500 },
                }),
                inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
                outer_key: 0,
                inner_key: 0,
                buffer_tuples: 150,
            }),
            key: 0,
            buffer_tuples: 4096,
        },
        PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan { table: "r".into() }),
                predicate: Predicate::IntLt { col: 1, value: 300 },
            }),
            inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 100,
        },
        PlanSpec::HashAgg {
            input: Box::new(PlanSpec::TableScan { table: "r".into() }),
            group_col: 1,
            agg_col: 0,
            func: AggFn::Count,
            partitions: 2,
        },
    ]
}

/// Priorities per session, admission order. Session 2 is the designated
/// shedding victim everywhere (strictly lowest), keeping the server-level
/// ladder deterministic across matrix cells.
const PRIORITIES: [u32; 3] = [5, 1, 3];

fn config() -> ServerConfig {
    ServerConfig {
        quantum: 1_500,
        max_live: 1,
        policy: SuspendPolicy::Optimized { budget: None },
        options: SuspendOptions {
            dump_writers: 0,
            ..SuspendOptions::default()
        },
    }
}

/// Uninterrupted golden output per session plan.
fn goldens() -> Vec<Vec<Tuple>> {
    plans()
        .into_iter()
        .map(|plan| {
            let dir = TempDir::new("golden");
            let db = Database::open_default(&dir.0).unwrap();
            populate(&db);
            let mut exec = qsr::exec::QueryExecution::start(db, plan).unwrap();
            exec.run_to_completion().unwrap()
        })
        .collect()
}

/// Deterministic server state: fresh uncached directory, three admitted
/// sessions, no faults armed yet.
fn build_server(tag: &str) -> (TempDir, Arc<Database>, QsrServer) {
    let dir = TempDir::new(tag);
    let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
    populate(&db);
    db.pool().flush_all().unwrap();
    let mut server = QsrServer::new(db.clone(), config());
    for (i, plan) in plans().into_iter().enumerate() {
        let tenant = if i % 2 == 0 { "tenant-a" } else { "tenant-b" };
        server.admit(tenant, PRIORITIES[i], &plan).unwrap();
    }
    (dir, db, server)
}

#[test]
fn concurrent_sessions_deliver_goldens_exactly_once() {
    let goldens = goldens();
    let (_dir, _db, mut server) = build_server("fair");
    server.run_to_completion().unwrap();
    let mut preempted = 0;
    for (i, s) in server.sessions().iter().enumerate() {
        assert!(s.is_finished(), "session {} must finish", i + 1);
        assert_eq!(
            s.collected,
            goldens[i],
            "session {} output must match its uninterrupted golden",
            i + 1
        );
        assert!(s.fairness.quanta > 0, "session {} never ran", i + 1);
        assert_eq!(
            s.fairness.suspends, s.fairness.resumes,
            "session {}: every preemption suspend must be matched by a resume",
            i + 1
        );
        preempted += s.fairness.suspends;
    }
    // One live slot for three sessions: scheduling MUST have gone through
    // the suspend path, or this test exercises nothing.
    assert!(preempted > 0, "no preemption happened under 1 live slot");
}

#[test]
fn scheduler_emits_typed_session_events() {
    let goldens = goldens();
    let dir = TempDir::new("events");
    let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
    populate(&db);
    db.pool().flush_all().unwrap();
    let tracer = Arc::new(Tracer::new(db.ledger().clone()));
    tracer.enable_full_capture();
    db.install_tracer(Some(tracer.clone()));

    let mut server = QsrServer::new(db.clone(), config());
    for (i, plan) in plans().into_iter().enumerate() {
        server.admit("tenant-a", PRIORITIES[i], &plan).unwrap();
    }
    server.run_to_completion().unwrap();
    for (i, s) in server.sessions().iter().enumerate() {
        assert_eq!(s.collected, goldens[i]);
    }

    let records = tracer.take_full();
    let mut admits = 0;
    let mut preempts = 0;
    let mut resumes = 0;
    for rec in &records {
        match &rec.event {
            TraceEvent::SessionAdmit { session, priority, .. } => {
                admits += 1;
                assert!((1..=3).contains(session));
                assert!(PRIORITIES.contains(priority));
            }
            TraceEvent::Preempt { session, est_suspend_cost, .. } => {
                preempts += 1;
                assert!((1..=3).contains(session));
                assert!(
                    est_suspend_cost.is_finite() && *est_suspend_cost >= 0.0,
                    "victim signal must be a finite estimate, got {est_suspend_cost}"
                );
            }
            TraceEvent::SessionResume { session, generation } => {
                resumes += 1;
                assert!((1..=3).contains(session));
                assert!(*generation >= 1, "resume must name a committed generation");
            }
            _ => {}
        }
    }
    assert_eq!(admits, 3, "one SessionAdmit per admitted session");
    assert!(preempts > 0, "preemptions must be journaled");
    assert!(resumes > 0, "resumes must be journaled");
}

/// The heart of the family: crash/torn/NoSpace at every write ordinal of
/// the first preemption window (round 1: two preemption suspends plus any
/// execute-phase spills).
#[test]
fn fault_matrix_during_preemption_leaves_every_session_recoverable() {
    let goldens = goldens();

    // Dry run: the write window of round 1.
    let writes = {
        let (_dir, db, mut server) = build_server("dry");
        let fi = Arc::new(FaultInjector::seeded(0));
        db.disk().set_fault_injector(Some(fi.clone()));
        server.run_round().unwrap();
        fi.writes_observed()
    };
    assert!(writes > 0, "round 1 must issue write events (preemptions)");

    for k in 1..=writes {
        for fault in [WriteFault::Crash, WriteFault::Torn, WriteFault::NoSpace] {
            let (dir, db, mut server) = build_server("cell");
            let fi = Arc::new(FaultInjector::seeded(0x5E55 + k));
            fi.fail_write(k, fault);
            db.disk().set_fault_injector(Some(fi.clone()));
            let outcome = server.run_round();
            let what = format!("{fault:?} at preemption write {k}");

            if fi.halted() {
                // Simulated process death. Drop every handle and recover
                // from the directory alone.
                drop(server);
                drop(db);
                let db = Database::open_default(&dir.0).unwrap();
                // Exactly one valid generation per session: no session's
                // manifest may read as an error, whatever the ordinal.
                for id in 1..=3u64 {
                    let name = SessionRegistry::manifest_name(SessionId(id));
                    read_manifest_named(&db, &name).unwrap_or_else(|e| {
                        panic!("{what}: session {id} manifest unreadable: {e}")
                    });
                }
                let mut server = QsrServer::recover(db, config())
                    .unwrap_or_else(|e| panic!("{what}: registry recovery failed: {e}"));
                assert_eq!(
                    server.sessions().len(),
                    3,
                    "{what}: recovery must reconstruct every admitted session"
                );
                server
                    .run_to_completion()
                    .unwrap_or_else(|e| panic!("{what}: post-recovery run failed: {e}"));
                for (i, s) in server.sessions().iter().enumerate() {
                    assert!(
                        s.is_finished(),
                        "{what}: session {} must finish after recovery",
                        i + 1
                    );
                    // The recovered process delivers the suffix after the
                    // session's last committed generation (the prefix was
                    // delivered by the dead process); a session with no
                    // committed generation replays in full.
                    assert!(
                        goldens[i].ends_with(&s.collected),
                        "{what}: session {} recovered output is not a golden suffix \
                         ({} tuples vs golden {})",
                        i + 1,
                        s.collected.len(),
                        goldens[i].len()
                    );
                }
            } else {
                // Process alive: the ladder absorbed the fault (NoSpace →
                // cheaper rung) or the server shed under pressure. Either
                // way the run must complete, and every surviving session
                // must deliver its golden bit-exactly.
                outcome.unwrap_or_else(|e| panic!("{what}: non-halting round errored: {e}"));
                server
                    .run_to_completion()
                    .unwrap_or_else(|e| panic!("{what}: completion failed: {e}"));
                for (i, s) in server.sessions().iter().enumerate() {
                    if s.is_shed() {
                        // Only the designated lowest-priority session may
                        // have been shed.
                        assert_eq!(i, 1, "{what}: shed victim must be the lowest priority");
                        continue;
                    }
                    assert!(s.is_finished(), "{what}: session {} must finish", i + 1);
                    assert_eq!(
                        s.collected,
                        goldens[i],
                        "{what}: session {} diverges from golden",
                        i + 1
                    );
                }
            }
        }
    }
}

/// Crash sweep over a *later* round, after every session has committed
/// suspend generations. This is the window the round-1 matrix cannot
/// reach: a crash mid-execution here leaves stale pages appended past a
/// sealed partition watermark (e.g. a HashAgg spill), and the recovered
/// session must truncate them on reopen rather than splice phantom
/// tuples into its aggregate (`RunWriter::reopen` regression).
#[test]
fn crash_after_committed_generations_replays_no_stale_run_pages() {
    let goldens = goldens();

    // Short quanta keep all three sessions in flight deep into the run,
    // so the crash window sits between committed generations for
    // everyone.
    let late_config = || ServerConfig {
        quantum: 400,
        ..config()
    };
    let build_late = |tag: &str| {
        let (dir, db, mut server) = build_server(tag);
        *server.config_mut() = late_config();
        server.run_round().unwrap();
        server.run_round().unwrap();
        (dir, db, server)
    };

    // Two clean rounds commit real generations for every session; the
    // write window under test is round 3.
    let writes = {
        let (_dir, db, mut server) = build_late("late-dry");
        let fi = Arc::new(FaultInjector::seeded(0));
        db.disk().set_fault_injector(Some(fi.clone()));
        server.run_round().unwrap();
        fi.writes_observed()
    };
    assert!(writes > 0, "round 3 must issue write events");

    for k in 1..=writes {
        let (dir, db, mut server) = build_late("late-cell");
        let fi = Arc::new(FaultInjector::seeded(0xC4A5 + k));
        fi.fail_write(k, WriteFault::Crash);
        db.disk().set_fault_injector(Some(fi.clone()));
        let outcome = server.run_round();
        let what = format!("crash at round-3 write {k}");
        assert!(outcome.is_err(), "{what}: injected crash must surface");
        assert!(fi.halted(), "{what}: the crash must halt the process");

        drop(server);
        drop(db);
        let db = Database::open_default(&dir.0).unwrap();
        let mut server = QsrServer::recover(db, late_config())
            .unwrap_or_else(|e| panic!("{what}: registry recovery failed: {e}"));
        // Sessions that finished before the crash retired their registry
        // entries; everyone still in flight must be reconstructed.
        assert!(
            !server.sessions().is_empty(),
            "{what}: at least one in-flight session must be recovered"
        );
        server
            .run_to_completion()
            .unwrap_or_else(|e| panic!("{what}: post-recovery run failed: {e}"));
        for s in server.sessions() {
            let golden = &goldens[(s.meta.id - 1) as usize];
            assert!(
                s.is_finished(),
                "{what}: session {} must finish",
                s.meta.id
            );
            assert!(
                golden.ends_with(&s.collected),
                "{what}: session {} recovered output is not a golden suffix \
                 ({} tuples vs golden {})",
                s.meta.id,
                s.collected.len(),
                golden.len()
            );
        }
    }
}

/// Server-level degradation ladder: when even the per-query ladder cannot
/// park a victim (zero quota headroom), the server sheds the
/// lowest-priority session — and the survivor, rolled back to scratch
/// without a committed generation, still delivers exactly-once output.
#[test]
fn quota_pressure_sheds_lowest_priority_and_preserves_survivor() {
    // Both plans are pure BlockNlj: execution itself writes nothing, so
    // the quota bites only preemption suspends.
    let nlj = |cutoff: i64| PlanSpec::BlockNlj {
        outer: Box::new(PlanSpec::Filter {
            input: Box::new(PlanSpec::TableScan { table: "r".into() }),
            predicate: Predicate::IntLt { col: 1, value: cutoff },
        }),
        inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
        outer_key: 0,
        inner_key: 0,
        buffer_tuples: 100,
    };
    let golden = {
        let dir = TempDir::new("shed-golden");
        let db = Database::open_default(&dir.0).unwrap();
        populate(&db);
        let mut exec = qsr::exec::QueryExecution::start(db, nlj(500)).unwrap();
        exec.run_to_completion().unwrap()
    };

    let dir = TempDir::new("shed");
    let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
    populate(&db);
    db.pool().flush_all().unwrap();
    let tracer = Arc::new(Tracer::new(db.ledger().clone()));
    tracer.enable_full_capture();
    db.install_tracer(Some(tracer.clone()));

    let mut server = QsrServer::new(
        db.clone(),
        ServerConfig {
            quantum: 1_000,
            max_live: 1,
            ..config()
        },
    );
    server.admit("premium", 5, &nlj(500)).unwrap();
    server.admit("basic", 1, &nlj(300)).unwrap();
    // Zero headroom from here on: every suspend attempt exhausts the
    // ladder and clean-aborts.
    let dm = db.disk();
    dm.set_quota(Some(dm.used_bytes()));

    server.run_to_completion().unwrap();

    let s1 = &server.sessions()[0];
    let s2 = &server.sessions()[1];
    assert!(s2.is_shed(), "lowest-priority session must be shed under pressure");
    assert!(s2.collected.is_empty(), "shed output must be discarded");
    assert!(s1.is_finished(), "premium session must survive");
    assert_eq!(
        s1.collected, golden,
        "survivor must deliver exactly-once output despite its clean-aborted preemption"
    );
    // The session registry must be empty again: the shed session's entry
    // retired with it, the finished one's at completion.
    let registry = SessionRegistry::new(db.clone());
    assert!(registry.scan().unwrap().is_empty(), "registry must drain");

    let records = tracer.take_full();
    assert!(
        records.iter().any(|r| matches!(
            &r.event,
            TraceEvent::Shed { session: 2, priority: 1, .. }
        )),
        "the shed must be journaled with the victim's identity and priority"
    );
}
