//! Oracle family for the multi-session preemptive server: N concurrent
//! sessions over one shared database, scheduled by suspension, under
//! seeded fault schedules.
//!
//! The invariant (ISSUE 6 acceptance): under a crash, torn write, or
//! NoSpace at **any** write ordinal of a preemption window, every
//! non-victim session resumes to results bit-identical to its
//! uninterrupted golden run, and the victim either resumes correctly or
//! clean-aborts with its exact pre-suspend state restored (replaying from
//! its last committed generation — or scratch — without duplicating a
//! tuple). Per-session manifests must always read cleanly: exactly one
//! valid generation per session, never a torn mix, never cross-session
//! damage.

use qsr::core::SuspendPolicy;
use qsr::exec::{read_manifest_named, AggFn, PlanSpec, Predicate, SuspendOptions};
use qsr::server::{
    Admission, AdmissionConfig, QsrServer, ServerConfig, SessionId, SessionRegistry, SlaConfig,
};
use qsr::storage::{
    BackendKind, CostModel, Database, FaultInjector, Phase, TraceEvent, Tracer, Tuple, WriteFault,
};
use qsr::workload::{generate_table, TableSpec};
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qsr-server-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic tables so write-event ordinals line up across the matrix.
fn populate(db: &Arc<Database>) {
    generate_table(db, &TableSpec::new("r", 800).payload(16).seed(11)).unwrap();
    generate_table(db, &TableSpec::new("s", 200).payload(16).seed(12)).unwrap();
}

/// Three heterogeneous sessions: a dump-heavy sort-over-join, a buffered
/// join, and a partitioned aggregation — distinct operator state shapes,
/// so preemption exercises distinct suspend plans per victim.
fn plans() -> Vec<PlanSpec> {
    vec![
        PlanSpec::Sort {
            input: Box::new(PlanSpec::BlockNlj {
                outer: Box::new(PlanSpec::Filter {
                    input: Box::new(PlanSpec::TableScan { table: "r".into() }),
                    predicate: Predicate::IntLt { col: 1, value: 500 },
                }),
                inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
                outer_key: 0,
                inner_key: 0,
                buffer_tuples: 150,
            }),
            key: 0,
            buffer_tuples: 4096,
        },
        PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan { table: "r".into() }),
                predicate: Predicate::IntLt { col: 1, value: 300 },
            }),
            inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 100,
        },
        PlanSpec::HashAgg {
            input: Box::new(PlanSpec::TableScan { table: "r".into() }),
            group_col: 1,
            agg_col: 0,
            func: AggFn::Count,
            partitions: 2,
        },
    ]
}

/// Priorities per session, admission order. Session 2 is the designated
/// shedding victim everywhere (strictly lowest), keeping the server-level
/// ladder deterministic across matrix cells.
const PRIORITIES: [u32; 3] = [5, 1, 3];

fn config() -> ServerConfig {
    ServerConfig {
        quantum: 1_500,
        max_live: 1,
        policy: SuspendPolicy::Optimized { budget: None },
        options: SuspendOptions {
            dump_writers: 0,
            ..SuspendOptions::default()
        },
        ..ServerConfig::default()
    }
}

/// Uninterrupted golden output per session plan.
fn goldens() -> Vec<Vec<Tuple>> {
    plans()
        .into_iter()
        .map(|plan| {
            let dir = TempDir::new("golden");
            let db = Database::open_default(&dir.0).unwrap();
            populate(&db);
            let mut exec = qsr::exec::QueryExecution::start(db, plan).unwrap();
            exec.run_to_completion().unwrap()
        })
        .collect()
}

/// Deterministic server state: fresh uncached directory, three admitted
/// sessions, no faults armed yet.
fn build_server(tag: &str) -> (TempDir, Arc<Database>, QsrServer) {
    let dir = TempDir::new(tag);
    let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
    populate(&db);
    db.pool().flush_all().unwrap();
    let mut server = QsrServer::new(db.clone(), config());
    for (i, plan) in plans().into_iter().enumerate() {
        let tenant = if i % 2 == 0 { "tenant-a" } else { "tenant-b" };
        server.admit(tenant, PRIORITIES[i], &plan).unwrap();
    }
    (dir, db, server)
}

#[test]
fn concurrent_sessions_deliver_goldens_exactly_once() {
    let goldens = goldens();
    let (_dir, _db, mut server) = build_server("fair");
    server.run_to_completion().unwrap();
    let mut preempted = 0;
    for (i, s) in server.sessions().iter().enumerate() {
        assert!(s.is_finished(), "session {} must finish", i + 1);
        assert_eq!(
            s.collected,
            goldens[i],
            "session {} output must match its uninterrupted golden",
            i + 1
        );
        assert!(s.fairness.quanta > 0, "session {} never ran", i + 1);
        assert_eq!(
            s.fairness.suspends, s.fairness.resumes,
            "session {}: every preemption suspend must be matched by a resume",
            i + 1
        );
        preempted += s.fairness.suspends;
    }
    // One live slot for three sessions: scheduling MUST have gone through
    // the suspend path, or this test exercises nothing.
    assert!(preempted > 0, "no preemption happened under 1 live slot");
}

#[test]
fn scheduler_emits_typed_session_events() {
    let goldens = goldens();
    let dir = TempDir::new("events");
    let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
    populate(&db);
    db.pool().flush_all().unwrap();
    let tracer = Arc::new(Tracer::new(db.ledger().clone()));
    tracer.enable_full_capture();
    db.install_tracer(Some(tracer.clone()));

    let mut server = QsrServer::new(db.clone(), config());
    for (i, plan) in plans().into_iter().enumerate() {
        server.admit("tenant-a", PRIORITIES[i], &plan).unwrap();
    }
    server.run_to_completion().unwrap();
    for (i, s) in server.sessions().iter().enumerate() {
        assert_eq!(s.collected, goldens[i]);
    }

    let records = tracer.take_full();
    let mut admits = 0;
    let mut preempts = 0;
    let mut resumes = 0;
    for rec in &records {
        match &rec.event {
            TraceEvent::SessionAdmit { session, priority, .. } => {
                admits += 1;
                assert!((1..=3).contains(session));
                assert!(PRIORITIES.contains(priority));
            }
            TraceEvent::Preempt { session, est_suspend_cost, .. } => {
                preempts += 1;
                assert!((1..=3).contains(session));
                assert!(
                    est_suspend_cost.is_finite() && *est_suspend_cost >= 0.0,
                    "victim signal must be a finite estimate, got {est_suspend_cost}"
                );
            }
            TraceEvent::SessionResume { session, generation } => {
                resumes += 1;
                assert!((1..=3).contains(session));
                assert!(*generation >= 1, "resume must name a committed generation");
            }
            _ => {}
        }
    }
    assert_eq!(admits, 3, "one SessionAdmit per admitted session");
    assert!(preempts > 0, "preemptions must be journaled");
    assert!(resumes > 0, "resumes must be journaled");
}

/// The heart of the family: crash/torn/NoSpace at every write ordinal of
/// the first preemption window (round 1: two preemption suspends plus any
/// execute-phase spills).
#[test]
fn fault_matrix_during_preemption_leaves_every_session_recoverable() {
    let goldens = goldens();

    // Dry run: the write window of round 1.
    let writes = {
        let (_dir, db, mut server) = build_server("dry");
        let fi = Arc::new(FaultInjector::seeded(0));
        db.disk().set_fault_injector(Some(fi.clone()));
        server.run_round().unwrap();
        fi.writes_observed()
    };
    assert!(writes > 0, "round 1 must issue write events (preemptions)");

    for k in 1..=writes {
        for fault in [WriteFault::Crash, WriteFault::Torn, WriteFault::NoSpace] {
            let (dir, db, mut server) = build_server("cell");
            let fi = Arc::new(FaultInjector::seeded(0x5E55 + k));
            fi.fail_write(k, fault);
            db.disk().set_fault_injector(Some(fi.clone()));
            let outcome = server.run_round();
            let what = format!("{fault:?} at preemption write {k}");

            if fi.halted() {
                // Simulated process death. Drop every handle and recover
                // from the directory alone.
                drop(server);
                drop(db);
                let db = Database::open_default(&dir.0).unwrap();
                // Exactly one valid generation per session: no session's
                // manifest may read as an error, whatever the ordinal.
                for id in 1..=3u64 {
                    let name = SessionRegistry::manifest_name(SessionId(id));
                    read_manifest_named(&db, &name).unwrap_or_else(|e| {
                        panic!("{what}: session {id} manifest unreadable: {e}")
                    });
                }
                let mut server = QsrServer::recover(db, config())
                    .unwrap_or_else(|e| panic!("{what}: registry recovery failed: {e}"));
                assert_eq!(
                    server.sessions().len(),
                    3,
                    "{what}: recovery must reconstruct every admitted session"
                );
                server
                    .run_to_completion()
                    .unwrap_or_else(|e| panic!("{what}: post-recovery run failed: {e}"));
                for (i, s) in server.sessions().iter().enumerate() {
                    assert!(
                        s.is_finished(),
                        "{what}: session {} must finish after recovery",
                        i + 1
                    );
                    // The recovered process delivers the suffix after the
                    // session's last committed generation (the prefix was
                    // delivered by the dead process); a session with no
                    // committed generation replays in full.
                    assert!(
                        goldens[i].ends_with(&s.collected),
                        "{what}: session {} recovered output is not a golden suffix \
                         ({} tuples vs golden {})",
                        i + 1,
                        s.collected.len(),
                        goldens[i].len()
                    );
                }
            } else {
                // Process alive: the ladder absorbed the fault (NoSpace →
                // cheaper rung) or the server shed under pressure. Either
                // way the run must complete, and every surviving session
                // must deliver its golden bit-exactly.
                outcome.unwrap_or_else(|e| panic!("{what}: non-halting round errored: {e}"));
                server
                    .run_to_completion()
                    .unwrap_or_else(|e| panic!("{what}: completion failed: {e}"));
                for (i, s) in server.sessions().iter().enumerate() {
                    if s.is_shed() {
                        // Only the designated lowest-priority session may
                        // have been shed.
                        assert_eq!(i, 1, "{what}: shed victim must be the lowest priority");
                        continue;
                    }
                    assert!(s.is_finished(), "{what}: session {} must finish", i + 1);
                    assert_eq!(
                        s.collected,
                        goldens[i],
                        "{what}: session {} diverges from golden",
                        i + 1
                    );
                }
            }
        }
    }
}

/// Crash sweep over a *later* round, after every session has committed
/// suspend generations. This is the window the round-1 matrix cannot
/// reach: a crash mid-execution here leaves stale pages appended past a
/// sealed partition watermark (e.g. a HashAgg spill), and the recovered
/// session must truncate them on reopen rather than splice phantom
/// tuples into its aggregate (`RunWriter::reopen` regression).
#[test]
fn crash_after_committed_generations_replays_no_stale_run_pages() {
    let goldens = goldens();

    // Short quanta keep all three sessions in flight deep into the run,
    // so the crash window sits between committed generations for
    // everyone.
    let late_config = || ServerConfig {
        quantum: 400,
        ..config()
    };
    let build_late = |tag: &str| {
        let (dir, db, mut server) = build_server(tag);
        *server.config_mut() = late_config();
        server.run_round().unwrap();
        server.run_round().unwrap();
        (dir, db, server)
    };

    // Two clean rounds commit real generations for every session; the
    // write window under test is round 3.
    let writes = {
        let (_dir, db, mut server) = build_late("late-dry");
        let fi = Arc::new(FaultInjector::seeded(0));
        db.disk().set_fault_injector(Some(fi.clone()));
        server.run_round().unwrap();
        fi.writes_observed()
    };
    assert!(writes > 0, "round 3 must issue write events");

    for k in 1..=writes {
        let (dir, db, mut server) = build_late("late-cell");
        let fi = Arc::new(FaultInjector::seeded(0xC4A5 + k));
        fi.fail_write(k, WriteFault::Crash);
        db.disk().set_fault_injector(Some(fi.clone()));
        let outcome = server.run_round();
        let what = format!("crash at round-3 write {k}");
        assert!(outcome.is_err(), "{what}: injected crash must surface");
        assert!(fi.halted(), "{what}: the crash must halt the process");

        drop(server);
        drop(db);
        let db = Database::open_default(&dir.0).unwrap();
        let mut server = QsrServer::recover(db, late_config())
            .unwrap_or_else(|e| panic!("{what}: registry recovery failed: {e}"));
        // Sessions that finished before the crash retired their registry
        // entries; everyone still in flight must be reconstructed.
        assert!(
            !server.sessions().is_empty(),
            "{what}: at least one in-flight session must be recovered"
        );
        server
            .run_to_completion()
            .unwrap_or_else(|e| panic!("{what}: post-recovery run failed: {e}"));
        for s in server.sessions() {
            let golden = &goldens[(s.meta.id - 1) as usize];
            assert!(
                s.is_finished(),
                "{what}: session {} must finish",
                s.meta.id
            );
            assert!(
                golden.ends_with(&s.collected),
                "{what}: session {} recovered output is not a golden suffix \
                 ({} tuples vs golden {})",
                s.meta.id,
                s.collected.len(),
                golden.len()
            );
        }
    }
}

/// Server-level degradation ladder: when even the per-query ladder cannot
/// park a victim (zero quota headroom), the server sheds the
/// lowest-priority session — and the survivor, rolled back to scratch
/// without a committed generation, still delivers exactly-once output.
#[test]
fn quota_pressure_sheds_lowest_priority_and_preserves_survivor() {
    // Both plans are pure BlockNlj: execution itself writes nothing, so
    // the quota bites only preemption suspends.
    let nlj = |cutoff: i64| PlanSpec::BlockNlj {
        outer: Box::new(PlanSpec::Filter {
            input: Box::new(PlanSpec::TableScan { table: "r".into() }),
            predicate: Predicate::IntLt { col: 1, value: cutoff },
        }),
        inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
        outer_key: 0,
        inner_key: 0,
        buffer_tuples: 100,
    };
    let golden = {
        let dir = TempDir::new("shed-golden");
        let db = Database::open_default(&dir.0).unwrap();
        populate(&db);
        let mut exec = qsr::exec::QueryExecution::start(db, nlj(500)).unwrap();
        exec.run_to_completion().unwrap()
    };

    let dir = TempDir::new("shed");
    let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
    populate(&db);
    db.pool().flush_all().unwrap();
    let tracer = Arc::new(Tracer::new(db.ledger().clone()));
    tracer.enable_full_capture();
    db.install_tracer(Some(tracer.clone()));

    let mut server = QsrServer::new(
        db.clone(),
        ServerConfig {
            quantum: 1_000,
            max_live: 1,
            ..config()
        },
    );
    server.admit("premium", 5, &nlj(500)).unwrap();
    server.admit("basic", 1, &nlj(300)).unwrap();
    // Zero headroom from here on: every suspend attempt exhausts the
    // ladder and clean-aborts.
    let dm = db.disk();
    dm.set_quota(Some(dm.used_bytes()));

    server.run_to_completion().unwrap();

    let s1 = &server.sessions()[0];
    let s2 = &server.sessions()[1];
    assert!(s2.is_shed(), "lowest-priority session must be shed under pressure");
    assert!(s2.collected.is_empty(), "shed output must be discarded");
    assert!(s1.is_finished(), "premium session must survive");
    assert_eq!(
        s1.collected, golden,
        "survivor must deliver exactly-once output despite its clean-aborted preemption"
    );
    // The session registry must be empty again: the shed session's entry
    // retired with it, the finished one's at completion.
    let registry = SessionRegistry::new(db.clone());
    assert!(registry.scan().unwrap().is_empty(), "registry must drain");

    let records = tracer.take_full();
    assert!(
        records.iter().any(|r| matches!(
            &r.event,
            TraceEvent::Shed { session: 2, priority: 1, .. }
        )),
        "the shed must be journaled with the victim's identity and priority"
    );
}

/// Nightly widening knob: `QSR_NIGHTLY=1` runs the stress lanes at full
/// width (more workers, more repetitions, the full crash-ordinal sweep).
fn nightly() -> bool {
    std::env::var("QSR_NIGHTLY").ok().as_deref() == Some("1")
}

/// A server with `n` sessions (cycling the three plan shapes) over the
/// given backend, worker count, and delta setting — the threaded stress
/// lane's parameterized builder. The backend installs before any
/// admission so registry sidecars and suspend state share one store.
fn build_server_mt(
    tag: &str,
    n: usize,
    backend: BackendKind,
    workers: usize,
    delta: bool,
) -> (TempDir, Arc<Database>, QsrServer) {
    let dir = TempDir::new(tag);
    let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
    populate(&db);
    db.pool().flush_all().unwrap();
    db.install_backend(backend);
    let mut cfg = config();
    cfg.workers = workers;
    cfg.options.delta = Some(delta);
    let mut server = QsrServer::new(db.clone(), cfg);
    let all = plans();
    for i in 0..n {
        let tenant = if i % 2 == 0 { "tenant-a" } else { "tenant-b" };
        server
            .admit(tenant, PRIORITIES[i % 3], &all[i % 3])
            .unwrap();
    }
    (dir, db, server)
}

/// The seeded multi-threaded stress lane: N sessions × workers {2,4} ×
/// backend {local,memory} × delta {off,on}. Threaded schedules interleave
/// suspends, resumes, and ladder descents arbitrarily, so the invariant
/// is output equality: every session must deliver its uninterrupted
/// golden bit-exactly, exactly once, with suspends matched by resumes.
#[test]
fn threaded_stress_lane_delivers_goldens_exactly_once() {
    let goldens = goldens();
    let reps = if nightly() { 3 } else { 1 };
    let sessions = if nightly() { 6 } else { 4 };
    for workers in [2usize, 4] {
        for backend in [BackendKind::Local, BackendKind::Memory] {
            for delta in [false, true] {
                for rep in 0..reps {
                    let what =
                        format!("workers={workers} backend={backend:?} delta={delta} rep={rep}");
                    let (_dir, _db, mut server) = build_server_mt(
                        &format!("mt-{workers}-{delta}-{rep}"),
                        sessions,
                        backend,
                        workers,
                        delta,
                    );
                    server
                        .run_to_completion()
                        .unwrap_or_else(|e| panic!("{what}: threaded run failed: {e}"));
                    let mut preempted = 0;
                    for (i, s) in server.sessions().iter().enumerate() {
                        assert!(s.is_finished(), "{what}: session {} must finish", i + 1);
                        assert_eq!(
                            s.collected,
                            goldens[i % 3],
                            "{what}: session {} output diverges from its golden",
                            i + 1
                        );
                        assert_eq!(
                            s.fairness.suspends, s.fairness.resumes,
                            "{what}: session {} suspends must match resumes",
                            i + 1
                        );
                        preempted += s.fairness.suspends;
                    }
                    assert!(
                        preempted > 0,
                        "{what}: more sessions than workers must force concurrent parking"
                    );
                }
            }
        }
    }
}

/// Crash injected mid-concurrent-suspend: with two workers parking
/// sessions simultaneously, a halting fault at an arbitrary interleaved
/// write ordinal must still leave every session's manifest with exactly
/// one valid generation, the registry recoverable, and post-recovery
/// output an exact golden suffix (the exactly-once watermark).
#[test]
fn crash_mid_concurrent_suspend_leaves_registry_recoverable() {
    let goldens = goldens();
    let clean_writes = {
        let (_dir, db, mut server) =
            build_server_mt("mtc-dry", 4, BackendKind::Local, 2, false);
        let fi = Arc::new(FaultInjector::seeded(0));
        db.disk().set_fault_injector(Some(fi.clone()));
        server.run_to_completion().unwrap();
        fi.writes_observed()
    };
    assert!(clean_writes > 0, "threaded run must issue suspend writes");
    let ordinals: Vec<u64> = if nightly() {
        (1..=clean_writes).collect()
    } else {
        [1, 2, 3, 5, 8, 13, 21, 34, 55]
            .into_iter()
            .filter(|k| *k <= clean_writes)
            .collect()
    };
    for k in ordinals {
        let what = format!("crash at threaded write {k}");
        let (dir, db, mut server) =
            build_server_mt(&format!("mtc-{k}"), 4, BackendKind::Local, 2, false);
        let fi = Arc::new(FaultInjector::seeded(0xBEEF + k));
        fi.fail_write(k, WriteFault::Crash);
        db.disk().set_fault_injector(Some(fi.clone()));
        let outcome = server.run_to_completion();
        if !fi.halted() {
            // Interleaving pushed this ordinal past the run's writes; the
            // run must then have completed cleanly.
            outcome.unwrap_or_else(|e| panic!("{what}: unhalted run errored: {e}"));
            continue;
        }
        assert!(outcome.is_err(), "{what}: the crash must surface");

        // Process death: recover from the directory alone.
        drop(server);
        drop(db);
        let db = Database::open_default(&dir.0).unwrap();
        for id in 1..=4u64 {
            let name = SessionRegistry::manifest_name(SessionId(id));
            read_manifest_named(&db, &name)
                .unwrap_or_else(|e| panic!("{what}: session {id} manifest unreadable: {e}"));
        }
        // Finish deterministically (workers = 0): the invariant under
        // test is recoverability, not the threaded schedule.
        let mut server = QsrServer::recover(db, config())
            .unwrap_or_else(|e| panic!("{what}: registry recovery failed: {e}"));
        server
            .run_to_completion()
            .unwrap_or_else(|e| panic!("{what}: post-recovery run failed: {e}"));
        for s in server.sessions() {
            let golden = &goldens[((s.meta.id - 1) % 3) as usize];
            assert!(s.is_finished(), "{what}: session {} must finish", s.meta.id);
            assert!(
                golden.ends_with(&s.collected),
                "{what}: session {} recovered output is not a golden suffix \
                 ({} tuples vs golden {})",
                s.meta.id,
                s.collected.len(),
                golden.len()
            );
        }
    }
}

/// The resume-cost mis-attribution fix, pinned with exact per-session
/// totals: a NoSpace on the first preemption write forces the victim's
/// suspend down the degradation ladder. The rung>0 fallback I/O is the
/// price of the *preemptor's* demand for the live slot — it must land on
/// the preempting session's `preempt_fallback_cost`, exactly, and never
/// on the victim's own park cost.
#[test]
fn rung_fallback_io_is_attributed_to_the_preemptor_exactly() {
    // Pure BlockNlj plans: execution writes nothing, so write ordinal 1
    // is deterministically the first preemption's first suspend write.
    let nlj = |cutoff: i64| PlanSpec::BlockNlj {
        outer: Box::new(PlanSpec::Filter {
            input: Box::new(PlanSpec::TableScan { table: "r".into() }),
            predicate: Predicate::IntLt { col: 1, value: cutoff },
        }),
        inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
        outer_key: 0,
        inner_key: 0,
        buffer_tuples: 100,
    };
    let golden = |cutoff: i64| {
        let dir = TempDir::new("attr-golden");
        let db = Database::open_default(&dir.0).unwrap();
        populate(&db);
        let mut exec = qsr::exec::QueryExecution::start(db, nlj(cutoff)).unwrap();
        exec.run_to_completion().unwrap()
    };

    let dir = TempDir::new("attr");
    let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
    populate(&db);
    db.pool().flush_all().unwrap();
    let mut server = QsrServer::new(
        db.clone(),
        ServerConfig {
            quantum: 1_000,
            max_live: 1,
            ..config()
        },
    );
    server.admit("premium", 5, &nlj(500)).unwrap();
    server.admit("basic", 1, &nlj(300)).unwrap();

    let fi = Arc::new(FaultInjector::seeded(0xA77));
    fi.fail_write(1, WriteFault::NoSpace);
    db.disk().set_fault_injector(Some(fi.clone()));
    let before = db.ledger().snapshot();
    server.run_round().unwrap();
    let after = db.ledger().snapshot();
    let fallback = after.phase_cost(Phase::Fallback) - before.phase_cost(Phase::Fallback);
    let suspend = after.phase_cost(Phase::Suspend) - before.phase_cost(Phase::Suspend);
    assert!(
        fallback > 0.0,
        "NoSpace on the first suspend write must descend the ladder and spend fallback I/O"
    );

    let victim = &server.sessions()[0].fairness;
    let preemptor = &server.sessions()[1].fairness;
    assert_eq!(victim.suspends, 1, "round 1 preempts the first session once");
    assert_eq!(
        victim.suspend_cost.iter().sum::<f64>(),
        suspend,
        "the victim's park cost is exactly the round's Suspend-phase delta"
    );
    assert_eq!(
        preemptor.preempt_fallback_cost, fallback,
        "the ladder's fallback I/O must land on the preemptor, exactly"
    );
    assert_eq!(
        victim.preempt_fallback_cost, 0.0,
        "the victim must not be billed for the preemptor's ladder descent"
    );
    assert_eq!(
        preemptor.suspend_cost.iter().sum::<f64>(),
        0.0,
        "the preemptor parked nothing this round"
    );

    // The mis-attribution fix must not cost correctness: finish the run
    // and check both goldens.
    db.disk().set_fault_injector(None);
    server.run_to_completion().unwrap();
    assert_eq!(server.sessions()[0].collected, golden(500));
    assert_eq!(server.sessions()[1].collected, golden(300));
}

/// Admission control prices a new session's estimated memory against the
/// live victim set: a typed `Overloaded` rejection when preempting room
/// would cost too much, a parked queue entry (drained as load drains)
/// when queueing is on — and the queued session still runs to its exact
/// golden.
#[test]
fn admission_control_rejects_queues_and_drains() {
    let goldens = goldens();
    // One session, one live slot: after a round the sort-over-join is
    // live *mid-flight*, deep enough that its victim signal — the root-LP
    // suspend estimate — prices dumping real buffered state (a fresh or
    // finished session would price 0.0 and admit anything).
    let dir = TempDir::new("admit");
    let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
    populate(&db);
    db.pool().flush_all().unwrap();
    let mut server = QsrServer::new(db.clone(), config());
    server.admit("tenant-a", 5, &plans()[0]).unwrap();
    server.run_round().unwrap();
    let demand = plans()[1].estimated_mem_tuples();
    assert!(demand > 0, "the newcomer must have a real memory estimate");

    // Hard-reject mode: zero budget means room only comes from preempting
    // the live victim, and a zero price ceiling makes every preemption
    // too expensive.
    server.config_mut().admission = Some(AdmissionConfig {
        memory_budget: 0,
        max_price: 0.0,
        queue: false,
    });
    let before = server.sessions().len();
    let err = server.try_admit("tenant-c", 1, &plans()[1]).unwrap_err();
    assert!(
        err.is_overloaded(),
        "rejection must be the typed Overloaded error, got {err}"
    );
    assert!(
        !err.is_resource_pressure(),
        "admission rejection must not read as ladder pressure"
    );
    assert_eq!(
        server.sessions().len(),
        before,
        "a rejected session must not be admitted"
    );

    // Queue mode: a budget that fits the newcomer alone (but not beside
    // the live sort) parks it; the scheduler re-prices it each round and
    // admits it once the sort finishes, and it still runs to golden.
    server.config_mut().admission = Some(AdmissionConfig {
        memory_budget: demand,
        max_price: 0.0,
        queue: true,
    });
    assert_eq!(
        server.try_admit("tenant-c", 1, &plans()[1]).unwrap(),
        Admission::Queued
    );
    assert_eq!(server.queued_admissions(), 1);
    server.run_to_completion().unwrap();
    assert_eq!(server.queued_admissions(), 0, "the queue must drain");
    let late = server
        .sessions()
        .iter()
        .find(|s| s.meta.tenant == "tenant-c")
        .expect("the queued session must eventually be admitted");
    assert!(late.is_finished());
    assert_eq!(
        late.collected, goldens[1],
        "a drained admission must still deliver its exact golden"
    );
    assert_eq!(
        server.sessions()[0].collected,
        goldens[0],
        "the incumbent the newcomer was priced against must stay bit-exact"
    );
}

/// SLA budgets derive per-preemption suspend deadlines: a tenant whose
/// budget is tiny forces the ladder to admission-skip unaffordable rungs,
/// which counts SLA misses — without ever costing output correctness.
#[test]
fn sla_budgets_force_cheaper_rungs_and_count_misses() {
    let goldens = goldens();

    // Generous budgets: every preemption fits its deadline, zero misses.
    let (_dir, _db, mut server) = build_server("sla-rich");
    server.config_mut().sla = Some(SlaConfig::uniform(1e9));
    server.run_to_completion().unwrap();
    for (i, s) in server.sessions().iter().enumerate() {
        assert_eq!(s.collected, goldens[i]);
        assert_eq!(
            s.fairness.sla_misses, 0,
            "session {}: a generous budget must never miss",
            i + 1
        );
    }

    // Starved budgets: once a tenant's spend exhausts its budget the
    // derived deadline hits 0 — rungs are admission-skipped (counted as
    // misses) and suspends that cannot fit any rung fail as pressure,
    // walking the server shedding ladder. Degradation may cost *service*
    // (sheds), never correctness: every finished session is bit-exact.
    let (_dir, _db, mut server) = build_server("sla-poor");
    server.config_mut().sla = Some(SlaConfig::uniform(0.5));
    server.run_to_completion().unwrap();
    let misses: u64 = server
        .sessions()
        .iter()
        .map(|s| s.fairness.sla_misses)
        .sum();
    assert!(
        misses > 0,
        "a starved budget must force below-requested-rung preemptions"
    );
    let top = &server.sessions()[0];
    assert!(
        top.is_finished(),
        "the highest-priority session must survive SLA starvation"
    );
    for (i, s) in server.sessions().iter().enumerate() {
        if s.is_shed() {
            assert!(
                s.collected.is_empty(),
                "session {}: shed output must be discarded",
                i + 1
            );
            continue;
        }
        assert!(s.is_finished(), "session {} must finish or shed", i + 1);
        assert_eq!(
            s.collected,
            goldens[i],
            "session {}: SLA degradation must never cost correctness",
            i + 1
        );
    }

    // Per-tenant override: the rich tenant never misses or sheds; the
    // zero-budget tenant's first preemption already derives a 0.0
    // deadline, so its requested rung is always admission-skipped — it
    // pays in misses (and possibly in being shed).
    let (_dir, _db, mut server) = build_server("sla-mixed");
    server.config_mut().sla = Some(SlaConfig {
        default_budget: 1e9,
        tenants: vec![("tenant-b".to_string(), 0.0)],
    });
    server.run_to_completion().unwrap();
    let mut starved_paid = false;
    for (i, s) in server.sessions().iter().enumerate() {
        if s.meta.tenant == "tenant-a" {
            assert!(s.is_finished(), "session {}: rich tenant must finish", i + 1);
            assert_eq!(s.collected, goldens[i]);
            assert_eq!(
                s.fairness.sla_misses, 0,
                "session {}: the rich tenant must not miss",
                i + 1
            );
        } else if s.is_shed() || s.fairness.sla_misses > 0 {
            starved_paid = true;
        }
    }
    assert!(
        starved_paid,
        "the starved tenant must pay in misses or shedding"
    );
}

