//! Failure injection: corrupted or missing persistent state must surface
//! as clean errors, never as wrong results or panics.

use qsr::core::{OpId, SuspendPolicy};
use qsr::exec::{PlanSpec, Predicate, QueryExecution, SuspendTrigger};
use qsr::storage::{BlobId, Database, FileId};
use qsr::workload::{generate_table, TableSpec};
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qsr-fail-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn suspended_join(tag: &str) -> (TempDir, Arc<Database>, qsr::exec::SuspendedHandle) {
    let dir = TempDir::new(tag);
    let db = Database::open_default(&dir.0).unwrap();
    generate_table(&db, &TableSpec::new("r", 3000).payload(24).seed(5)).unwrap();
    generate_table(&db, &TableSpec::new("s", 500).payload(24).seed(6)).unwrap();
    let plan = PlanSpec::BlockNlj {
        outer: Box::new(PlanSpec::Filter {
            input: Box::new(PlanSpec::TableScan { table: "r".into() }),
            predicate: Predicate::IntLt { col: 1, value: 700 },
        }),
        inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
        outer_key: 0,
        inner_key: 0,
        buffer_tuples: 600,
    };
    let mut exec = QueryExecution::start(db.clone(), plan).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(0),
        n: 500,
    }));
    let (_, done) = exec.run().unwrap();
    assert!(!done);
    let handle = exec.suspend(&SuspendPolicy::AllDump).unwrap();
    (dir, db, handle)
}

#[test]
fn resume_from_nonexistent_blob_errors_cleanly() {
    let (_d, db, _h) = suspended_join("noblob");
    let bogus = BlobId {
        file: FileId(9_999_999),
        len: 64,
        checksum: 0,
    };
    let err = QueryExecution::resume_from_blob(db, bogus);
    assert!(err.is_err(), "must not resume from a missing blob");
}

#[test]
fn resume_from_truncated_suspended_query_errors_cleanly() {
    let (_d, db, h) = suspended_join("trunc");
    // Lie about the length: decoding must fail, not panic or mis-resume.
    let truncated = BlobId {
        file: h.blob.file,
        len: h.blob.len / 2,
        checksum: h.blob.checksum,
    };
    let err = QueryExecution::resume_from_blob(db, truncated);
    assert!(err.is_err(), "truncated SuspendedQuery must be rejected");
}

#[test]
fn resume_with_corrupted_bytes_errors_cleanly() {
    let (dir, db, h) = suspended_join("corrupt");
    // Flip bytes in the middle of the blob's backing file.
    let path = dir.0.join(format!("f{}.qsr", h.blob.file.0));
    let mut bytes = std::fs::read(&path).unwrap();
    // Corrupt inside the payload (the file is page-padded beyond len).
    let mid = (h.blob.len / 3) as usize;
    let end = mid + 64.min(bytes.len() - mid);
    for b in &mut bytes[mid..end] {
        *b ^= 0xFF;
    }
    std::fs::write(&path, bytes).unwrap();
    let result = QueryExecution::resume_from_blob(db, h.blob);
    assert!(result.is_err(), "corrupted SuspendedQuery must be rejected");
}

#[test]
fn resume_with_missing_heap_dump_degrades_to_goback_fallback() {
    let (_d, db, h) = suspended_join("nodump");
    // Reference: a clean resume (reads in-memory nothing; the handle can be
    // resumed repeatedly) establishes the expected continuation.
    let mut clean = QueryExecution::resume(db.clone(), &h).unwrap();
    let expected = clean.run_to_completion().unwrap();

    // Delete every dump blob: the NLJ's dumped buffer disappears. The
    // suspend phase recorded a GoBack fallback for the NLJ (its contract
    // chain admits recompute), so resume must degrade, not fail — and must
    // produce the identical continuation.
    let sq = qsr::core::SuspendedQuery::load(db.blobs(), h.blob).unwrap();
    assert!(
        !sq.fallbacks.is_empty(),
        "suspend should have recorded a GoBack fallback for the dumped NLJ"
    );
    for rec in sq.records.values() {
        if let Some(dump) = rec.heap_dump {
            db.blobs().delete(dump).unwrap();
        }
    }
    let mut degraded = QueryExecution::resume_from_blob(db, h.blob)
        .expect("missing dump with a recorded fallback must degrade to GoBack");
    assert_eq!(degraded.run_to_completion().unwrap(), expected);
}

#[test]
fn resume_with_missing_heap_dump_and_no_fallback_errors_cleanly() {
    let (_d, db, h) = suspended_join("nodump-nofb");
    // Strip the fallbacks and re-save: now a lost dump has no recourse.
    let mut sq = qsr::core::SuspendedQuery::load(db.blobs(), h.blob).unwrap();
    sq.fallbacks.clear();
    let stripped = sq.save(db.blobs()).unwrap();
    for rec in sq.records.values() {
        if let Some(dump) = rec.heap_dump {
            db.blobs().delete(dump).unwrap();
        }
    }
    let result = QueryExecution::resume_validated(db, stripped);
    assert!(
        matches!(result, Err(qsr::exec::ResumeError::DumpUnavailable { .. })),
        "missing heap dump without a fallback must surface as DumpUnavailable"
    );
}

#[test]
fn resume_against_database_missing_tables_errors_cleanly() {
    let (_d, db, h) = suspended_join("notables");
    // A different database directory: tables absent.
    let other_dir = TempDir::new("other");
    let other = Database::open_default(&other_dir.0).unwrap();
    let sq_bytes = {
        // Copy the SuspendedQuery blob content over to the other database.
        let data = db.blobs().get(h.blob).unwrap();
        other.blobs().put(&data).unwrap()
    };
    let result = QueryExecution::resume_from_blob(other, sq_bytes);
    assert!(
        result.is_err(),
        "resume must fail when the catalog lacks the plan's tables"
    );
}

#[test]
fn double_resume_is_allowed_and_consistent() {
    // Resuming the same SuspendedQuery twice (e.g. after the first resumed
    // run was abandoned) must produce identical continuations.
    let (_d, db, h) = suspended_join("double");
    let mut a = QueryExecution::resume(db.clone(), &h).unwrap();
    let out_a = a.run_to_completion().unwrap();
    let mut b = QueryExecution::resume(db.clone(), &h).unwrap();
    let out_b = b.run_to_completion().unwrap();
    assert_eq!(out_a, out_b);
}
