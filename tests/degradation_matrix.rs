//! Degradation-ladder matrix: drive the suspend driver through every
//! ladder rung — via disk quotas, scripted `NoSpace` faults, and I/O
//! deadlines — and inject crash/torn/NoSpace faults at every write
//! ordinal of a pressured suspend, every write ordinal of generation GC,
//! and every write ordinal of generation retirement.
//!
//! The invariant everywhere: after a fault the directory holds either a
//! committed, fully resumable generation or the clean pre-suspend state —
//! never a mix, never an unreadable manifest, never a panic. A resumed
//! query's output concatenated with its pre-suspend prefix must be
//! byte-identical to an uninterrupted run.

use qsr::core::{OpId, SuspendOptimizer, SuspendPolicy, SuspendedQuery};
use qsr::exec::{
    PlanSpec, Predicate, QueryExecution, Rung, SuspendOptions, SuspendTrigger,
};
use qsr::storage::{
    CostModel, Database, Decode, FaultInjector, LocalDiskBackend, RemoteMockBackend,
    RobustBackend, Tuple, WriteFault, COMPACT_CHAIN_LEN, PAGE_SIZE, RESUME_BACKOFF,
};
use qsr::workload::{generate_table, KeyDist, TableSpec};
use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qsr-degrade-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic tables so write-event ordinals line up across the matrix.
fn populate(db: &Arc<Database>) {
    generate_table(db, &TableSpec::new("r", 800).payload(16).seed(11)).unwrap();
    generate_table(db, &TableSpec::new("s", 200).payload(16).seed(12)).unwrap();
}

/// Sort over block-NLJ over filtered scans — the same dump-heavy shape the
/// crash matrix uses, so every rung has real state to dump or roll back.
fn plan() -> PlanSpec {
    PlanSpec::Sort {
        input: Box::new(PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan { table: "r".into() }),
                predicate: Predicate::IntLt { col: 1, value: 500 },
            }),
            inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 150,
        }),
        key: 0,
        buffer_tuples: 4096,
    }
}

fn reference_output() -> Vec<Tuple> {
    let dir = TempDir::new("ref");
    let db = Database::open_default(&dir.0).unwrap();
    populate(&db);
    let mut exec = QueryExecution::start(db, plan()).unwrap();
    exec.run_to_completion().unwrap()
}

fn trigger() -> SuspendTrigger {
    SuspendTrigger::AfterOpTuples { op: OpId(1), n: 250 }
}

/// Run to the suspend point in a fresh directory (serial, uncached — the
/// deterministic baseline the ordinal matrices need).
fn run_to_suspend_point(tag: &str) -> (TempDir, Arc<Database>, Vec<Tuple>, QueryExecution) {
    let dir = TempDir::new(tag);
    let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
    populate(&db);
    db.pool().flush_all().unwrap();
    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    exec.set_trigger(Some(trigger()));
    let (prefix, done) = exec.run().unwrap();
    assert!(!done, "trigger must fire before the query completes");
    (dir, db, prefix, exec)
}

fn serial_options() -> SuspendOptions {
    SuspendOptions {
        dump_writers: 0,
        ..SuspendOptions::default()
    }
}

/// Cap the disk at `used + headroom` bytes.
fn arm_quota(db: &Database, headroom: u64) {
    let dm = db.disk();
    dm.set_quota(Some(dm.used_bytes().saturating_add(headroom)));
}

/// Assert the post-fault directory invariant: recovery either resumes a
/// committed generation whose output completes `prefix` into `reference`,
/// or reports clean state and a from-scratch rerun delivers `reference`.
fn assert_resumable_or_clean(dir: &TempDir, prefix: &[Tuple], reference: &[Tuple], what: &str) {
    let db = Database::open_default(&dir.0).unwrap();
    match QueryExecution::recover(db.clone()) {
        Ok(Some(mut resumed)) => {
            let suffix = resumed.run_to_completion().unwrap();
            let mut all = prefix.to_vec();
            all.extend(suffix);
            assert_eq!(all, reference, "{what}: resumed output diverges");
        }
        Ok(None) => {
            let mut fresh = QueryExecution::start(db, plan()).unwrap();
            let all = fresh.run_to_completion().unwrap();
            assert_eq!(all, reference, "{what}: fresh rerun diverges");
        }
        Err(e) => panic!("{what}: recovery errored: {e}"),
    }
}

/// The smallest quota headroom (in pages) at which a pressured suspend
/// under `policy` still commits. Everything below forces a clean abort;
/// the first commit must land on the cheapest admissible rung.
fn smallest_committing_headroom(policy: &SuspendPolicy) -> u64 {
    for pages in 1..=32u64 {
        let (_dir, db, _prefix, exec) = run_to_suspend_point("probe");
        arm_quota(&db, pages * PAGE_SIZE as u64);
        if exec.suspend_with(policy, &serial_options()).is_ok() {
            return pages * PAGE_SIZE as u64;
        }
    }
    panic!("no headroom up to 32 pages admits even the all-GoBack rung");
}

#[test]
fn every_ladder_rung_commits_under_engineered_pressure() {
    let reference = reference_output();
    let mut seen: HashSet<Rung> = HashSet::new();

    // Rung 0: no pressure at all — the requested plan commits as-is.
    {
        let (dir, db, prefix, exec) = run_to_suspend_point("r0");
        let h = exec
            .suspend_with(&SuspendPolicy::Optimized { budget: None }, &serial_options())
            .unwrap();
        assert_eq!(h.rung, Rung::Requested);
        seen.insert(h.rung);
        drop(db);
        assert_resumable_or_clean(&dir, &prefix, &reference, "no-pressure suspend");
    }

    // Rung 1: a one-shot NoSpace kills the requested plan's first write;
    // the LP-rounded heuristic is fault-free and commits.
    {
        let (dir, db, prefix, exec) = run_to_suspend_point("r1");
        let fi = Arc::new(FaultInjector::seeded(1));
        fi.fail_write(1, WriteFault::NoSpace);
        db.disk().set_fault_injector(Some(fi));
        let h = exec
            .suspend_with(&SuspendPolicy::Optimized { budget: None }, &serial_options())
            .unwrap();
        assert_eq!(h.rung, Rung::HeuristicRounded);
        seen.insert(h.rung);
        drop(db);
        assert_resumable_or_clean(&dir, &prefix, &reference, "nospace → heuristic rung");
    }

    // Rung 2: a Fixed policy's ladder skips the heuristic; the same
    // one-shot fault lands the commit on the all-DumpState rung.
    {
        let (dir, db, prefix, exec) = run_to_suspend_point("r2");
        let fixed = SuspendOptimizer::choose(
            &SuspendPolicy::AllDump,
            &exec.suspend_problem(),
            &exec.ctx().graph,
        )
        .unwrap()
        .plan;
        let fi = Arc::new(FaultInjector::seeded(2));
        fi.fail_write(1, WriteFault::NoSpace);
        db.disk().set_fault_injector(Some(fi));
        let h = exec
            .suspend_with(&SuspendPolicy::Fixed(fixed), &serial_options())
            .unwrap();
        assert_eq!(h.rung, Rung::AllDump);
        seen.insert(h.rung);
        drop(db);
        assert_resumable_or_clean(&dir, &prefix, &reference, "nospace → all-dump rung");
    }

    // Rung 3: the AllDump ladder is [Requested, AllGoBack]; killing the
    // dump rung's very first write (the blob-file create, so nothing is
    // salvageable) lands the commit on the all-GoBack rung.
    {
        let (dir, db, prefix, exec) = run_to_suspend_point("r3");
        let fi = Arc::new(FaultInjector::seeded(4));
        fi.fail_write(1, WriteFault::NoSpace);
        db.disk().set_fault_injector(Some(fi));
        let h = exec
            .suspend_with(&SuspendPolicy::AllDump, &serial_options())
            .unwrap();
        assert_eq!(h.rung, Rung::AllGoBack);
        seen.insert(h.rung);
        drop(db);
        assert_resumable_or_clean(&dir, &prefix, &reference, "nospace → all-goback rung");
    }

    assert_eq!(seen.len(), 4, "all four ladder rungs must have committed");
}

#[test]
fn minimal_quota_headroom_commits_some_rung_and_resumes() {
    // Sweep quota headrooms from nothing upward: below the minimal
    // headroom every attempt must abort cleanly (pre-suspend state),
    // at and above it the suspend commits at whatever rung fits — and
    // either way the delivered output matches the reference.
    let reference = reference_output();
    let minimal = smallest_committing_headroom(&SuspendPolicy::AllDump);
    for headroom in [0, minimal.saturating_sub(PAGE_SIZE as u64), minimal] {
        let (dir, db, prefix, exec) = run_to_suspend_point("min");
        arm_quota(&db, headroom);
        let outcome = exec.suspend_with(&SuspendPolicy::AllDump, &serial_options());
        db.disk().set_quota(None);
        if headroom >= minimal {
            assert!(outcome.is_ok(), "minimal headroom {headroom} must commit");
        } else {
            let err = outcome.expect_err("sub-minimal headroom must abort");
            assert!(err.is_resource_pressure(), "typed pressure, got {err}");
        }
        drop(db);
        assert_resumable_or_clean(&dir, &prefix, &reference, &format!("headroom {headroom}"));
    }
}

#[test]
fn tiny_deadline_admission_control_skips_to_goback() {
    // A deadline far below the all-dump plan's estimate: admission
    // control must skip the dump-bearing rung without spending its I/O
    // and commit the final all-GoBack rung.
    let reference = reference_output();
    let (dir, db, prefix, exec) = run_to_suspend_point("deadline");
    let fi = Arc::new(FaultInjector::seeded(3));
    db.disk().set_fault_injector(Some(fi.clone()));
    let before = fi.writes_observed();
    let h = exec
        .suspend_with(
            &SuspendPolicy::AllDump,
            &SuspendOptions {
                deadline: Some(0.5),
                ..serial_options()
            },
        )
        .unwrap();
    assert_eq!(h.rung, Rung::AllGoBack);
    // Admission control is the point: the skipped rungs must not have
    // written anything. Everything observed belongs to the committed rung.
    let spent = fi.writes_observed() - before;
    let goback_only = {
        let (_d2, db2, _p2, exec2) = run_to_suspend_point("deadline-ref");
        let fi2 = Arc::new(FaultInjector::seeded(3));
        db2.disk().set_fault_injector(Some(fi2.clone()));
        exec2
            .suspend_with(&SuspendPolicy::AllGoBack, &serial_options())
            .unwrap();
        fi2.writes_observed()
    };
    assert_eq!(
        spent, goback_only,
        "skipped rungs must not consume write events"
    );
    drop(db);
    assert_resumable_or_clean(&dir, &prefix, &reference, "deadline admission control");
}

#[test]
fn scripted_nospace_at_every_write_ordinal_still_commits() {
    // A one-shot NoSpace can strike any write of the suspend phase; the
    // ladder always has a fault-free rung left, so every ordinal must end
    // in a committed, resumable suspend.
    let reference = reference_output();
    let writes = {
        let (_dir, db, _prefix, exec) = run_to_suspend_point("dry");
        let fi = Arc::new(FaultInjector::seeded(0));
        db.disk().set_fault_injector(Some(fi.clone()));
        exec.suspend_with(&SuspendPolicy::Optimized { budget: None }, &serial_options())
            .unwrap();
        fi.writes_observed()
    };
    assert!(writes > 0);
    for k in 1..=writes {
        let (dir, db, prefix, exec) = run_to_suspend_point("cell");
        let fi = Arc::new(FaultInjector::seeded(0xA0 + k));
        fi.fail_write(k, WriteFault::NoSpace);
        db.disk().set_fault_injector(Some(fi));
        exec.suspend_with(&SuspendPolicy::Optimized { budget: None }, &serial_options())
            .unwrap_or_else(|e| panic!("nospace at write {k}: suspend aborted: {e}"));
        drop(db);
        assert_resumable_or_clean(&dir, &prefix, &reference, &format!("nospace at write {k}"));
    }
}

#[test]
fn fault_matrix_under_disk_pressure() {
    // The pressured ladder (quota forcing descent to all-GoBack) under a
    // crash, torn write, or second NoSpace at every write ordinal it
    // issues — rung boundaries included. Every cell must leave resumable
    // or clean state.
    let reference = reference_output();
    // AllDump under the minimal headroom: rung 0 genuinely runs out of
    // space partway, so the write window spans a failing rung, the salvage
    // sweep at the rung boundary, and the committing all-GoBack rung.
    let headroom = smallest_committing_headroom(&SuspendPolicy::AllDump);
    let writes = {
        let (_dir, db, _prefix, exec) = run_to_suspend_point("pdry");
        arm_quota(&db, headroom);
        let fi = Arc::new(FaultInjector::seeded(0));
        db.disk().set_fault_injector(Some(fi.clone()));
        exec.suspend_with(&SuspendPolicy::AllDump, &serial_options())
            .unwrap();
        fi.writes_observed()
    };
    assert!(writes > 0, "pressured ladder must issue write events");
    for k in 1..=writes {
        for fault in [WriteFault::Crash, WriteFault::Torn, WriteFault::NoSpace] {
            let (dir, db, prefix, exec) = run_to_suspend_point("pcell");
            arm_quota(&db, headroom);
            let fi = Arc::new(FaultInjector::seeded(0xBAD + k));
            fi.fail_write(k, fault);
            db.disk().set_fault_injector(Some(fi));
            // Commit, clean abort, or halt are all legal; what matters is
            // the state left behind.
            let _ = exec.suspend_with(&SuspendPolicy::AllDump, &serial_options());
            drop(db);
            assert_resumable_or_clean(
                &dir,
                &prefix,
                &reference,
                &format!("{fault:?} at pressured write {k}"),
            );
        }
    }
}

/// Crash at every write ordinal of a *second* suspend — whose tail is the
/// GC of the first generation — and assert exactly one valid generation
/// survives: recovery resumes generation 1 or generation 2, never a mix,
/// never an error.
#[test]
fn gc_crash_matrix_keeps_exactly_one_valid_generation() {
    let reference = reference_output();

    // Shape of one run: suspend (gen 1) → resume → 40 more root tuples →
    // suspend (gen 2, GC of gen 1 at its tail).
    let second_trigger = SuspendTrigger::AfterOpTuples { op: OpId(0), n: 40 };
    let writes = {
        let (_dir, db, _prefix, exec) = run_to_suspend_point("gdry");
        exec.suspend_with(&SuspendPolicy::AllDump, &serial_options())
            .unwrap();
        let mut resumed = QueryExecution::recover(db.clone()).unwrap().unwrap();
        resumed.set_trigger(Some(second_trigger.clone()));
        let (_mid, done) = resumed.run().unwrap();
        assert!(!done);
        let fi = Arc::new(FaultInjector::seeded(0));
        db.disk().set_fault_injector(Some(fi.clone()));
        resumed
            .suspend_with(&SuspendPolicy::AllDump, &serial_options())
            .unwrap();
        fi.writes_observed()
    };
    assert!(writes > 0);

    for k in 1..=writes {
        let fault = if k % 2 == 0 { WriteFault::Torn } else { WriteFault::Crash };
        let (dir, db, prefix, exec) = run_to_suspend_point("gcell");
        exec.suspend_with(&SuspendPolicy::AllDump, &serial_options())
            .unwrap();
        let mut resumed = QueryExecution::recover(db.clone()).unwrap().unwrap();
        resumed.set_trigger(Some(second_trigger.clone()));
        let (mid, done) = resumed.run().unwrap();
        assert!(!done);
        let fi = Arc::new(FaultInjector::seeded(0x6C + k));
        fi.fail_write(k, fault);
        db.disk().set_fault_injector(Some(fi));
        let _ = resumed.suspend_with(&SuspendPolicy::AllDump, &serial_options());
        drop(db);

        // Exactly one generation must load. Which one decides how much of
        // the mid-segment the resumed run re-delivers.
        let db = Database::open_default(&dir.0).unwrap();
        let manifest = qsr::exec::read_manifest(&db)
            .unwrap_or_else(|e| panic!("{fault:?} at gc write {k}: manifest unreadable: {e}"))
            .unwrap_or_else(|| panic!("{fault:?} at gc write {k}: both generations lost"));
        assert!(
            manifest.generation == 1 || manifest.generation == 2,
            "{fault:?} at gc write {k}: unexpected generation {}",
            manifest.generation
        );
        let mut resumed = QueryExecution::recover(db)
            .unwrap_or_else(|e| panic!("{fault:?} at gc write {k}: recovery errored: {e}"))
            .unwrap();
        let suffix = resumed.run_to_completion().unwrap();
        let mut all = prefix.clone();
        if manifest.generation == 2 {
            all.extend(mid.iter().cloned());
        }
        all.extend(suffix);
        assert_eq!(
            all, reference,
            "{fault:?} at gc write {k}: generation {} output diverges",
            manifest.generation
        );
    }
}

/// Crash at every write ordinal of generation retirement: before the
/// manifest removal the generation must still resume; after it the state
/// must read as cleanly un-suspended. Never an error, never a half-retired
/// generation that loads garbage.
#[test]
fn retire_crash_matrix_is_all_or_nothing() {
    let reference = reference_output();
    let writes = {
        let (_dir, db, _prefix, exec) = run_to_suspend_point("rdry");
        exec.suspend_with(&SuspendPolicy::AllDump, &serial_options())
            .unwrap();
        let fi = Arc::new(FaultInjector::seeded(0));
        db.disk().set_fault_injector(Some(fi.clone()));
        QueryExecution::retire_generation(&db).unwrap();
        fi.writes_observed()
    };
    assert!(writes > 0, "retirement must issue write events");

    for k in 1..=writes {
        let fault = if k % 2 == 0 { WriteFault::Torn } else { WriteFault::Crash };
        let (dir, db, prefix, exec) = run_to_suspend_point("rcell");
        exec.suspend_with(&SuspendPolicy::AllDump, &serial_options())
            .unwrap();
        let fi = Arc::new(FaultInjector::seeded(0x2E + k));
        fi.fail_write(k, fault);
        db.disk().set_fault_injector(Some(fi));
        let _ = QueryExecution::retire_generation(&db);
        drop(db);
        assert_resumable_or_clean(
            &dir,
            &prefix,
            &reference,
            &format!("{fault:?} at retire write {k}"),
        );
    }
}

/// The watchdog must see *every* write a rung charges to the suspend
/// phase, not just dump blobs. A rung that satisfies all its dumps from
/// the salvage cache (free, never vetoed) still flushes partition-writer
/// tails when it seals — those non-dump pages face the same per-rung
/// budget via `guard_suspend_write`, otherwise a salvage-reuse rung could
/// overrun its deadline through writes the dump-path watchdog never sees.
#[test]
fn watchdog_vetoes_non_dump_seal_writes_but_never_salvage_reuse() {
    use qsr::exec::{DumpWatchdog, ExecContext};
    use qsr::storage::StorageError;

    let dir = TempDir::new("wd");
    let db = Database::open_default(&dir.0).unwrap();
    let mut ctx = ExecContext::new(db.clone());
    let write_page = db.ledger().model().write_page;

    // Unwatched dump: lands one blob (one page) and seeds the reuse case.
    let value: Vec<u8> = vec![0xAB; 64];
    let before = db.ledger().snapshot();
    let id = ctx.put_dump_value(OpId(7), &value).unwrap();
    let one_dump = db.ledger().snapshot().since(&before).total_cost();
    assert!(one_dump >= write_page, "a fresh dump must charge its pages");

    // Arm a budget below even a single page write: nothing fresh fits.
    ctx.set_watchdog(Some(DumpWatchdog {
        budget: 0.4 * write_page,
        baseline: db.ledger().snapshot(),
    }));

    // A fresh dump is vetoed...
    let fresh: Vec<u8> = vec![0xCD; 64];
    let err = ctx.put_dump_value(OpId(7), &fresh).expect_err("fresh dump must be vetoed");
    assert!(matches!(err, StorageError::DeadlineExceeded { .. }), "got {err}");

    // ...but reusing the salvaged blob writes nothing and must never be.
    ctx.add_salvage([id]);
    assert_eq!(ctx.put_dump_value(OpId(7), &value).unwrap(), id);

    // The non-dump seal write is charged to the same budget: one tail
    // page would overrun, so the guard vetoes it; a no-op seal is free.
    let err = ctx
        .guard_suspend_write(1)
        .expect_err("seal tail flush must face the watchdog");
    assert!(matches!(err, StorageError::DeadlineExceeded { .. }), "got {err}");
    assert!(ctx.guard_suspend_write(0).is_ok());

    // Disarmed (execution phase): the guard is a no-op.
    ctx.set_watchdog(None);
    assert!(ctx.guard_suspend_write(1).is_ok());
}

/// Multi-session preemption (PR 6): three sessions share one directory,
/// each committing suspends under its **own named manifest**. A torn
/// write at any ordinal of session A's suspend must leave sessions B and
/// C fully resumable from their committed generations — exactly one
/// valid generation per session, never cross-session damage. (Under the
/// old single global manifest, A's suspend would have garbage-collected
/// B's or C's committed generation.)
#[test]
fn torn_write_during_one_sessions_suspend_spares_the_others() {
    let reference = reference_output();
    let manifest = |i: u64| format!("session-{i}.suspend");

    // Deterministic three-session state over one directory: B and C run
    // to their triggers and commit suspends under their own manifests;
    // A runs to its trigger and stays live, ready to be preempted.
    let build = |tag: &str| -> (TempDir, Arc<Database>, Vec<Vec<Tuple>>, QueryExecution) {
        let dir = TempDir::new(tag);
        let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
        populate(&db);
        db.pool().flush_all().unwrap();
        let mut prefixes = Vec::new();
        for (i, n) in [(2u64, 250u64), (3, 350)] {
            let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
            exec.set_manifest_name(manifest(i));
            exec.set_trigger(Some(SuspendTrigger::AfterOpTuples { op: OpId(1), n }));
            let (prefix, done) = exec.run().unwrap();
            assert!(!done);
            exec.suspend_with(&SuspendPolicy::AllDump, &serial_options())
                .unwrap();
            prefixes.push(prefix);
        }
        let mut a = QueryExecution::start(db.clone(), plan()).unwrap();
        a.set_manifest_name(manifest(1));
        a.set_trigger(Some(trigger()));
        let (a_prefix, done) = a.run().unwrap();
        assert!(!done);
        prefixes.insert(0, a_prefix);
        (dir, db, prefixes, a)
    };

    let writes = {
        let (_dir, db, _prefixes, a) = build("mdry");
        let fi = Arc::new(FaultInjector::seeded(0));
        db.disk().set_fault_injector(Some(fi.clone()));
        a.suspend_with(&SuspendPolicy::AllDump, &serial_options())
            .unwrap();
        fi.writes_observed()
    };
    assert!(writes > 0);

    for k in 1..=writes {
        let (dir, db, prefixes, a) = build("mcell");
        let fi = Arc::new(FaultInjector::seeded(0x7081 + k));
        fi.fail_write(k, WriteFault::Torn);
        db.disk().set_fault_injector(Some(fi));
        let _ = a.suspend_with(&SuspendPolicy::AllDump, &serial_options());
        drop(db);

        let db = Database::open_default(&dir.0).unwrap();
        // Sessions B and C: their committed generation 1 must survive A's
        // torn suspend untouched and resume to the exact reference.
        for (i, session) in [2u64, 3].into_iter().enumerate() {
            let m = qsr::exec::read_manifest_named(&db, &manifest(session))
                .unwrap_or_else(|e| {
                    panic!("torn at write {k}: session {session} manifest unreadable: {e}")
                })
                .unwrap_or_else(|| {
                    panic!("torn at write {k}: session {session} lost its generation")
                });
            assert_eq!(
                m.generation, 1,
                "torn at write {k}: session {session} generation tampered"
            );
            let mut resumed = QueryExecution::recover_named(db.clone(), &manifest(session))
                .unwrap_or_else(|e| {
                    panic!("torn at write {k}: session {session} resume failed: {e}")
                })
                .unwrap();
            let suffix = resumed.run_to_completion().unwrap();
            let mut all = prefixes[i + 1].clone();
            all.extend(suffix);
            assert_eq!(
                all, reference,
                "torn at write {k}: session {session} output diverges"
            );
        }
        // Session A: its own manifest must read cleanly — committed whole
        // (resumes to the reference) or absent (fresh rerun matches) —
        // never torn.
        match qsr::exec::read_manifest_named(&db, &manifest(1))
            .unwrap_or_else(|e| panic!("torn at write {k}: victim manifest unreadable: {e}"))
        {
            Some(_) => {
                let mut resumed = QueryExecution::recover_named(db.clone(), &manifest(1))
                    .unwrap_or_else(|e| panic!("torn at write {k}: victim resume failed: {e}"))
                    .unwrap();
                let suffix = resumed.run_to_completion().unwrap();
                let mut all = prefixes[0].clone();
                all.extend(suffix);
                assert_eq!(all, reference, "torn at write {k}: victim output diverges");
            }
            None => {
                let mut fresh = QueryExecution::start(db.clone(), plan()).unwrap();
                assert_eq!(
                    fresh.run_to_completion().unwrap(),
                    reference,
                    "torn at write {k}: victim fresh rerun diverges"
                );
            }
        }
    }
}

/// Tables for the larger-than-memory matrices: a duplicate-heavy build
/// side (the hot key never splits, forcing recursion to the depth cap and
/// the block-NLJ fallback) and a reverse-sorted sort input (adversarial
/// run formation).
fn grace_populate(db: &Arc<Database>) {
    generate_table(
        db,
        &TableSpec::new("gj_b", 27).payload(24).seed(15).dist(KeyDist::DupHeavy),
    )
    .unwrap();
    generate_table(db, &TableSpec::new("gj_p", 54).payload(24).seed(14)).unwrap();
    generate_table(
        db,
        &TableSpec::new("gs", 60).payload(24).seed(16).dist(KeyDist::Reversed),
    )
    .unwrap();
}

/// Budget 1: every multi-tuple partition re-partitions, recursion bottoms
/// out at the depth cap, and the fallback runs single-tuple NLJ blocks —
/// the deepest partition tree the operator supports.
fn grace_join_plan() -> PlanSpec {
    PlanSpec::MemoryBudget {
        input: Box::new(PlanSpec::HashJoin {
            build: Box::new(PlanSpec::TableScan { table: "gj_b".into() }),
            probe: Box::new(PlanSpec::TableScan { table: "gj_p".into() }),
            build_key: 0,
            probe_key: 0,
            partitions: 3,
            hybrid: false,
        }),
        mem_budget: 1,
        merge_fanin: 0,
    }
}

/// Buffer 6 over 60 rows flushes 10 sublists; fan-in 2 forces several
/// intermediate merge passes before the final merge.
fn multipass_sort_plan() -> PlanSpec {
    PlanSpec::MemoryBudget {
        input: Box::new(PlanSpec::Sort {
            input: Box::new(PlanSpec::TableScan { table: "gs".into() }),
            key: 0,
            buffer_tuples: 6,
        }),
        mem_budget: 0,
        merge_fanin: 2,
    }
}

fn grace_reference(plan: &PlanSpec) -> Vec<Tuple> {
    let dir = TempDir::new("gref");
    let db = Database::open_default(&dir.0).unwrap();
    grace_populate(&db);
    let mut exec = QueryExecution::start(db, plan.clone()).unwrap();
    exec.run_to_completion().unwrap()
}

/// Run `plan` to work-unit boundary `b` in a fresh uncached directory.
fn grace_run_to_boundary(
    tag: &str,
    plan: &PlanSpec,
    b: u64,
) -> (TempDir, Arc<Database>, Vec<Tuple>, QueryExecution) {
    let dir = TempDir::new(tag);
    let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
    grace_populate(&db);
    db.pool().flush_all().unwrap();
    let mut exec = QueryExecution::start(db.clone(), plan.clone()).unwrap();
    exec.set_work_unit_observer(Some(Box::new(move |_op, seq: u64| seq >= b)));
    let (prefix, done) = exec.run().unwrap();
    assert!(!done, "boundary {b} must interrupt the query");
    (dir, db, prefix, exec)
}

fn grace_total_work_units(plan: &PlanSpec) -> u64 {
    let dir = TempDir::new("gtotal");
    let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
    grace_populate(&db);
    let mut exec = QueryExecution::start(db, plan.clone()).unwrap();
    exec.run_to_completion().unwrap();
    exec.work_units()
}

fn assert_grace_resumable_or_clean(
    dir: &TempDir,
    plan: &PlanSpec,
    prefix: &[Tuple],
    reference: &[Tuple],
    what: &str,
) {
    let db = Database::open_default(&dir.0).unwrap();
    match QueryExecution::recover(db.clone()) {
        Ok(Some(mut resumed)) => {
            let suffix = resumed.run_to_completion().unwrap();
            let mut all = prefix.to_vec();
            all.extend(suffix);
            assert_eq!(all, reference, "{what}: resumed output diverges");
        }
        Ok(None) => {
            let mut fresh = QueryExecution::start(db, plan.clone()).unwrap();
            let all = fresh.run_to_completion().unwrap();
            assert_eq!(all, reference, "{what}: fresh rerun diverges");
        }
        Err(e) => panic!("{what}: recovery errored: {e}"),
    }
}

/// NoSpace + crash + torn at every write ordinal of suspends parked at
/// boundaries spanning the grace join's recursive-spill region and the
/// sort's intermediate merge passes. Each cell must end resumable or
/// clean; the tracer cross-check proves at least one boundary per plan
/// truly landed *inside* the machinery (spill / pass events both before
/// the suspend and after the resume).
#[test]
fn fault_matrix_at_recursive_spill_and_merge_pass_ordinals() {
    use qsr::storage::TraceEvent;

    for (name, plan) in [
        ("grace-join", grace_join_plan()),
        ("multipass-sort", multipass_sort_plan()),
    ] {
        let reference = grace_reference(&plan);
        let total = grace_total_work_units(&plan);
        // Boundaries spanning the state machines' interesting region: the
        // partition tree unfolds (and merge passes run) between the input
        // consumption at the start and the final emit tail.
        let boundaries: Vec<u64> = [4, 8, 12, 16]
            .iter()
            .map(|&i| (total * i / 20).max(1))
            .collect();
        let interesting = |records: &[qsr::storage::TraceRecord]| {
            records
                .iter()
                .filter(|r| {
                    matches!(
                        r.event,
                        TraceEvent::PartitionSpill { .. } | TraceEvent::MergePass { .. }
                    )
                })
                .count()
        };
        let mut straddled = false;
        for &b in &boundaries {
            // Dry pass: full-capture tracer over the whole interfered run.
            // Spill/pass events in the pre-suspend segment AND in the
            // resumed tail prove the boundary sat mid-machinery.
            let dir = TempDir::new("gdry");
            let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
            grace_populate(&db);
            db.pool().flush_all().unwrap();
            let tracer = std::sync::Arc::new(qsr::storage::Tracer::new(db.ledger().clone()));
            tracer.enable_full_capture();
            db.ledger().set_tracer(&tracer);
            let mut exec = QueryExecution::start(db.clone(), plan.clone()).unwrap();
            exec.set_work_unit_observer(Some(Box::new(move |_op, seq: u64| seq >= b)));
            let (prefix, done) = exec.run().unwrap();
            assert!(!done, "{name}: boundary {b} must interrupt the query");
            let before = interesting(&tracer.take_full());
            let fi = Arc::new(FaultInjector::seeded(0));
            db.disk().set_fault_injector(Some(fi.clone()));
            exec.suspend_with(&SuspendPolicy::Optimized { budget: None }, &serial_options())
                .unwrap();
            let writes = fi.writes_observed();
            assert!(writes > 0, "{name} boundary {b}: suspend must write");
            db.disk().set_fault_injector(None);
            let mut resumed = QueryExecution::recover(db.clone()).unwrap().unwrap();
            let suffix = resumed.run_to_completion().unwrap();
            let after = interesting(&tracer.take_full());
            let mut all = prefix.clone();
            all.extend(suffix);
            assert_eq!(all, reference, "{name} boundary {b}: dry run diverges");
            if before > 0 && after > 0 {
                straddled = true;
            }

            for k in 1..=writes {
                for fault in [WriteFault::NoSpace, WriteFault::Crash, WriteFault::Torn] {
                    let (dir, db, prefix, exec) = grace_run_to_boundary("gcell", &plan, b);
                    let fi = Arc::new(FaultInjector::seeded(0x96ACE + k));
                    fi.fail_write(k, fault);
                    db.disk().set_fault_injector(Some(fi));
                    // Commit, ladder descent, or halt are all legal; the
                    // state left behind is what the cell checks.
                    let _ =
                        exec.suspend_with(&SuspendPolicy::Optimized { budget: None }, &serial_options());
                    drop(db);
                    assert_grace_resumable_or_clean(
                        &dir,
                        &plan,
                        &prefix,
                        &reference,
                        &format!("{name}: {fault:?} at write {k} of boundary {b}"),
                    );
                }
            }
        }
        assert!(
            straddled,
            "{name}: no swept boundary resumed into remaining spill/pass work"
        );
    }
}

// ---------------------------------------------------------------------
// PR 9 matrices: delta-chain commits, chain compaction, remote failover,
// and keep-last-N retention GC — each under faults at every write ordinal.
// The invariant throughout: the directory always holds **exactly one
// valid, recoverable chain** per surviving generation — a manifest that
// loads, a chain below the compaction cap, every retained generation
// fully materializable, and a resume that delivers the reference output.
// ---------------------------------------------------------------------

/// Tables sized so operator dumps span several pages — page-granular
/// delta frames have unchanged prefixes to elide — and the filtered
/// outer stream survives four suspend cycles' worth of ticks.
fn delta_populate(db: &Arc<Database>) {
    generate_table(db, &TableSpec::new("dr", 3000).seed(31)).unwrap();
    generate_table(db, &TableSpec::new("ds", 3000).seed(32)).unwrap();
}

fn delta_plan() -> PlanSpec {
    PlanSpec::Sort {
        input: Box::new(PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan { table: "dr".into() }),
                predicate: Predicate::IntLt { col: 1, value: 500 },
            }),
            inner: Box::new(PlanSpec::TableScan { table: "ds".into() }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 150,
        }),
        key: 0,
        buffer_tuples: 4096,
    }
}

fn delta_reference() -> Vec<Tuple> {
    let dir = TempDir::new("dref");
    let db = Database::open_default(&dir.0).unwrap();
    delta_populate(&db);
    let mut exec = QueryExecution::start(db, delta_plan()).unwrap();
    exec.run_to_completion().unwrap()
}

fn delta_options(keep: usize) -> SuspendOptions {
    SuspendOptions {
        dump_writers: 0,
        delta: Some(true),
        keep_generations: Some(keep),
        ..SuspendOptions::default()
    }
}

/// Commit `committed` delta suspends (the first after 250 NLJ ticks, each
/// later one 40 ticks into its resumed segment) and leave the execution
/// parked at the pre-suspend point of suspend `committed + 1`. The root
/// sort is blocking, so no tuple leaves before the final drain — every
/// cell's full output arrives in the post-fault completion run.
fn run_delta_cycles(
    tag: &str,
    opts: &SuspendOptions,
    committed: usize,
) -> (TempDir, Arc<Database>, QueryExecution) {
    let dir = TempDir::new(tag);
    let db = Database::open_with_pool(&dir.0, CostModel::default(), 0).unwrap();
    delta_populate(&db);
    db.pool().flush_all().unwrap();
    let mut exec = QueryExecution::start(db.clone(), delta_plan()).unwrap();
    for cycle in 0..=committed {
        let ticks = if cycle == 0 { 250 } else { 40 };
        exec.set_trigger(Some(SuspendTrigger::AfterOpTuples { op: OpId(1), n: ticks }));
        let (prefix, done) = exec.run().unwrap();
        assert!(prefix.is_empty(), "the blocking sort must deliver nothing mid-build");
        assert!(!done, "cycle {cycle} finished before its suspend fired");
        if cycle < committed {
            exec.suspend_with(&SuspendPolicy::AllDump, opts).unwrap();
            exec = QueryExecution::recover(db.clone()).unwrap().unwrap();
        }
    }
    (dir, db, exec)
}

/// The exactly-one-valid-recoverable-chain invariant, checked from a
/// fresh handle: the manifest loads to a generation in `gens`, its chain
/// is below the compaction cap, every retained generation is fully
/// materializable (query blob, record and fallback dumps, every delta
/// ancestor), and the resumed run delivers exactly `reference`.
fn assert_one_valid_delta_chain(
    dir: &TempDir,
    reference: &[Tuple],
    gens: std::ops::RangeInclusive<u64>,
    what: &str,
) {
    let db = Database::open_default(&dir.0).unwrap();
    let m = qsr::exec::read_manifest(&db)
        .unwrap_or_else(|e| panic!("{what}: manifest unreadable: {e}"))
        .unwrap_or_else(|| panic!("{what}: every committed generation lost"));
    assert!(
        gens.contains(&m.generation),
        "{what}: unexpected generation {} (legal: {gens:?})",
        m.generation
    );
    assert!(
        (m.chain_len as usize) < COMPACT_CHAIN_LEN,
        "{what}: chain_len {} at or past the compaction cap",
        m.chain_len
    );
    let backend = db.backend();
    for (generation, qblob) in &m.retained {
        let sq = SuspendedQuery::decode_from_slice(
            &backend
                .get_blob(*qblob)
                .unwrap_or_else(|e| panic!("{what}: retained gen {generation} unreadable: {e}")),
        )
        .unwrap_or_else(|e| panic!("{what}: retained gen {generation} undecodable: {e}"));
        for rec in sq.records.values().chain(sq.fallbacks.values().flatten()) {
            if let Some(b) = rec.heap_dump {
                backend.get_blob(b).unwrap_or_else(|e| {
                    panic!("{what}: retained gen {generation} dump unreadable: {e}")
                });
            }
        }
        for dep in sq.delta_deps.values().flatten() {
            backend.get_blob(*dep).unwrap_or_else(|e| {
                panic!("{what}: retained gen {generation} delta ancestor unreadable: {e}")
            });
        }
    }
    let mut resumed = QueryExecution::recover(db)
        .unwrap_or_else(|e| panic!("{what}: recovery errored: {e}"))
        .unwrap_or_else(|| panic!("{what}: committed generation did not recover"));
    let out = resumed.run_to_completion().unwrap();
    assert_eq!(out, reference, "{what}: resumed output diverges");
}

/// Crash / torn / transient at every write ordinal of the first
/// delta-chain commit (the second suspend: fresh delta frames over the
/// full generation, plus the keep=1 GC of generation 1 at its tail).
#[test]
fn delta_chain_commit_fault_matrix_keeps_exactly_one_chain() {
    let reference = delta_reference();
    let opts = delta_options(1);
    let writes = {
        let (_dir, db, exec) = run_delta_cycles("dcdry", &opts, 1);
        let fi = Arc::new(FaultInjector::seeded(0));
        db.disk().set_fault_injector(Some(fi.clone()));
        exec.suspend_with(&SuspendPolicy::AllDump, &opts).unwrap();
        let m = qsr::exec::read_manifest(&db).unwrap().unwrap();
        assert!(
            m.chain_len >= 1,
            "the second delta suspend must actually chain (chain_len {})",
            m.chain_len
        );
        fi.writes_observed()
    };
    assert!(writes > 0);
    for k in 1..=writes {
        for fault in [WriteFault::Crash, WriteFault::Torn, WriteFault::Transient(2)] {
            let (dir, db, exec) = run_delta_cycles("dccell", &opts, 1);
            let fi = Arc::new(FaultInjector::seeded(0xDE17A + k));
            fi.fail_write(k, fault);
            db.disk().set_fault_injector(Some(fi));
            let _ = exec.suspend_with(&SuspendPolicy::AllDump, &opts);
            drop(db);
            assert_one_valid_delta_chain(
                &dir,
                &reference,
                1..=2,
                &format!("{fault:?} at delta-commit write {k}"),
            );
        }
    }
}

/// Crash / torn at every write ordinal of the compaction fold: after
/// five committed generations the chain sits at depth 2 (the cap minus
/// one), so the sixth suspend folds it back to full dumps. A fault mid-
/// fold must leave generation 5 (chained) or generation 6 (folded) whole.
#[test]
fn compaction_fold_fault_matrix_keeps_exactly_one_chain() {
    use qsr::storage::{TraceEvent, Tracer};
    let reference = delta_reference();
    let opts = delta_options(1);
    // The sort operator's buffer grows in bursts as the join below it
    // flushes blocks, so an occasional delta is unprofitable and resets the
    // chain; under this workload the chain deterministically reaches depth
    // 2 (one below the cap) after the fifth committed suspend, making the
    // sixth the fold.
    let writes = {
        let (_dir, db, exec) = run_delta_cycles("cfdry", &opts, 5);
        let pre = qsr::exec::read_manifest(&db).unwrap().unwrap();
        assert_eq!(
            pre.chain_len as usize,
            COMPACT_CHAIN_LEN - 1,
            "five committed delta suspends must sit one below the cap"
        );
        let tracer = Arc::new(Tracer::new(db.ledger().clone()));
        tracer.enable_full_capture();
        db.ledger().set_tracer(&tracer);
        let fi = Arc::new(FaultInjector::seeded(0));
        db.disk().set_fault_injector(Some(fi.clone()));
        exec.suspend_with(&SuspendPolicy::AllDump, &opts).unwrap();
        let folds = tracer
            .take_full()
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::ChainCompact { .. }))
            .count();
        assert!(folds > 0, "the sixth suspend must fold at least one chain");
        let post = qsr::exec::read_manifest(&db).unwrap().unwrap();
        assert!(
            (post.chain_len as usize) < COMPACT_CHAIN_LEN,
            "the fold must bring the chain back below the cap"
        );
        fi.writes_observed()
    };
    for k in 1..=writes {
        for fault in [WriteFault::Crash, WriteFault::Torn] {
            let (dir, db, exec) = run_delta_cycles("cfcell", &opts, 5);
            let fi = Arc::new(FaultInjector::seeded(0xF07D + k));
            fi.fail_write(k, fault);
            db.disk().set_fault_injector(Some(fi));
            let _ = exec.suspend_with(&SuspendPolicy::AllDump, &opts);
            drop(db);
            assert_one_valid_delta_chain(
                &dir,
                &reference,
                5..=6,
                &format!("{fault:?} at compaction write {k}"),
            );
        }
    }
}

/// Crash / torn at every write ordinal of a keep-last-2 retention GC:
/// the third suspend's tail collects generation 1 while generation 2
/// must stay in the retained window, fully materializable — delta
/// ancestors included — whichever side of the fault the commit landed.
#[test]
fn retention_gc_fault_matrix_never_breaks_live_chains() {
    let reference = delta_reference();
    let opts = delta_options(2);
    let writes = {
        let (_dir, db, exec) = run_delta_cycles("rgdry", &opts, 2);
        let pre = qsr::exec::read_manifest(&db).unwrap().unwrap();
        assert_eq!(pre.retained.len(), 1, "keep=2 must retain one predecessor");
        let fi = Arc::new(FaultInjector::seeded(0));
        db.disk().set_fault_injector(Some(fi.clone()));
        exec.suspend_with(&SuspendPolicy::AllDump, &opts).unwrap();
        fi.writes_observed()
    };
    for k in 1..=writes {
        for fault in [WriteFault::Crash, WriteFault::Torn] {
            let (dir, db, exec) = run_delta_cycles("rgcell", &opts, 2);
            let fi = Arc::new(FaultInjector::seeded(0x6C2 + k));
            fi.fail_write(k, fault);
            db.disk().set_fault_injector(Some(fi));
            let _ = exec.suspend_with(&SuspendPolicy::AllDump, &opts);
            drop(db);
            assert_one_valid_delta_chain(
                &dir,
                &reference,
                2..=3,
                &format!("{fault:?} at retention-gc write {k}"),
            );
        }
    }
}

/// Crash / torn / transient / timeout at every *remote* write ordinal of
/// a suspend through the robust remote stack. Transients are retried in
/// place; a dead endpoint (crash, torn upload) or a typed timeout fails
/// over to the local disk — in every cell the suspend must still commit
/// and resume exactly, from a fresh process with the default local
/// backend (failover leaves a locally recoverable directory).
#[test]
fn remote_fault_matrix_retries_or_fails_over_at_every_write() {
    let reference = reference_output();

    // One suspend cell through a scripted remote stack. `script` arms the
    // remote before the suspend; returns the robust layer for post-checks.
    let cell = |tag: &str, script: &dyn Fn(&RemoteMockBackend)| -> (TempDir, Arc<RobustBackend>, Vec<Tuple>) {
        let (dir, db, prefix, exec) = run_to_suspend_point(tag);
        let local =
            || Arc::new(LocalDiskBackend::new(db.blobs().clone(), db.disk().clone()));
        let remote = Arc::new(RemoteMockBackend::new(local(), 9));
        script(&remote);
        let robust = Arc::new(RobustBackend::new(
            remote.clone(),
            Some(local()),
            RESUME_BACKOFF,
            Some(db.ledger().clone()),
        ));
        db.set_backend(robust.clone());
        exec.suspend_with(&SuspendPolicy::AllDump, &serial_options())
            .expect("retry/failover must keep the suspend alive");
        (dir, robust, prefix)
    };

    let writes = {
        let (_dir, db, _prefix, exec) = run_to_suspend_point("rmdry");
        let local =
            || Arc::new(LocalDiskBackend::new(db.blobs().clone(), db.disk().clone()));
        let remote = Arc::new(RemoteMockBackend::new(local(), 9));
        db.set_backend(remote.clone());
        exec.suspend_with(&SuspendPolicy::AllDump, &serial_options())
            .unwrap();
        remote.faults().writes_observed()
    };
    assert!(writes > 0, "a remote suspend must issue remote writes");

    for k in 1..=writes {
        for fault in [WriteFault::Crash, WriteFault::Torn, WriteFault::Transient(1)] {
            let (dir, robust, prefix) =
                cell("rmcell", &|r: &RemoteMockBackend| r.faults().fail_write(k, fault));
            if matches!(fault, WriteFault::Crash | WriteFault::Torn) {
                assert!(
                    robust.failed_over(),
                    "{fault:?} at remote write {k}: a dead endpoint must fail over"
                );
            } else {
                assert!(
                    !robust.failed_over(),
                    "a retried transient at remote write {k} must not fail over"
                );
            }
            assert_resumable_or_clean(
                &dir,
                &prefix,
                &reference,
                &format!("{fault:?} at remote write {k}"),
            );
        }
        // Typed timeout on the k-th put (ordinals past the last put are
        // vacuously clean cells): never blindly retried, always failover.
        let (dir, _robust, prefix) =
            cell("rmtimeout", &|r: &RemoteMockBackend| r.timeout_put(k));
        assert_resumable_or_clean(
            &dir,
            &prefix,
            &reference,
            &format!("timeout at remote put {k}"),
        );
    }
}

#[test]
fn clean_abort_leaves_no_new_files_and_typed_error() {
    // Headroom 0: every rung fails, the ladder aborts. The typed error
    // must be resource pressure, the directory must hold no manifest, and
    // the salvage sweep must have deleted every blob the failed rungs
    // wrote (quota accounting back to its pre-suspend level).
    let (dir, db, _prefix, exec) = run_to_suspend_point("abort");
    let used_before = db.disk().used_bytes();
    arm_quota(&db, 0);
    let err = exec
        .suspend_with(&SuspendPolicy::Optimized { budget: None }, &serial_options())
        .expect_err("zero headroom must abort the ladder");
    assert!(
        err.is_resource_pressure(),
        "abort error must be typed pressure, got {err}"
    );
    db.disk().set_quota(None);
    assert_eq!(
        db.disk().used_bytes(),
        used_before,
        "clean abort must release every byte the failed rungs wrote"
    );
    drop(db);
    let db = Database::open_default(&dir.0).unwrap();
    assert!(
        QueryExecution::recover(db).unwrap().is_none(),
        "clean abort must leave no manifest"
    );
}
