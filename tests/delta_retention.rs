//! PR 9 end-to-end coverage: delta checkpoints, keep-last-N retention,
//! and pluggable suspend backends (memory, fault-injected remote with
//! retry + failover) — all through the public suspend/resume lifecycle.
//!
//! The invariants under test:
//! - delta-on suspends charge measurably fewer `Phase::Suspend` dump
//!   pages than full suspends of the same state, and resume is exact;
//! - delta chains never grow past `COMPACT_CHAIN_LEN − 1` links (the
//!   compaction fold), across arbitrarily many suspend/resume cycles;
//! - retention GC (keep = 1) never collects a blob a live delta chain
//!   still references — every cycle stays resumable;
//! - keep = N retains the N−1 previous generations fully materializable;
//! - the memory backend round-trips without touching the disk manifest;
//! - the remote backend stack retries transients and fails over to the
//!   local disk mid-suspend without losing the suspend.

use qsr::core::{OpId, SuspendPolicy, SuspendedQuery};
use qsr::exec::{
    read_manifest, PlanSpec, Predicate, QueryExecution, SuspendOptions, SuspendTrigger,
    SUSPEND_MANIFEST,
};
use qsr::storage::{
    BackendKind, Database, Decode, LocalDiskBackend, Phase, RemoteMockBackend, RobustBackend,
    SuspendBackend, Tuple, WriteFault, COMPACT_CHAIN_LEN, RESUME_BACKOFF,
};
use qsr::workload::{generate_table, TableSpec};
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qsr-delta-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn populate(db: &Arc<Database>) {
    // Wide payloads and a same-sized inner: operator dumps span many
    // pages (page-granular deltas have something to save) and the outer
    // stream survives several suspend cycles' worth of ticks.
    generate_table(db, &TableSpec::new("r", 3000).seed(21)).unwrap();
    generate_table(db, &TableSpec::new("s", 3000).seed(22)).unwrap();
}

fn plan() -> PlanSpec {
    PlanSpec::Sort {
        input: Box::new(PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan { table: "r".into() }),
                predicate: Predicate::IntLt { col: 1, value: 500 },
            }),
            inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 150,
        }),
        key: 0,
        buffer_tuples: 4096,
    }
}

fn reference_output() -> Vec<Tuple> {
    let dir = TempDir::new("ref");
    let db = Database::open_default(&dir.0).unwrap();
    populate(&db);
    let mut exec = QueryExecution::start(db, plan()).unwrap();
    exec.run_to_completion().unwrap()
}

fn options(delta: bool, keep: usize) -> SuspendOptions {
    SuspendOptions {
        dump_writers: 0,
        delta: Some(delta),
        keep_generations: Some(keep),
        ..SuspendOptions::default()
    }
}

/// Drive one lifecycle on a fresh directory: suspend after 250 NLJ ticks,
/// then `cycles − 1` further suspend/resume rounds of 40 ticks each, then
/// run to completion. Returns the concatenated output and the
/// `Phase::Suspend` pages charged by each suspend.
fn run_cycles(tag: &str, opts: &SuspendOptions, cycles: usize) -> (Vec<Tuple>, Vec<u64>) {
    let dir = TempDir::new(tag);
    let db = Database::open_default(&dir.0).unwrap();
    populate(&db);
    let mut out = Vec::new();
    let mut suspend_pages = Vec::new();
    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    for cycle in 0..cycles {
        let ticks = if cycle == 0 { 250 } else { 40 };
        exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
            op: OpId(1),
            n: ticks,
        }));
        let (prefix, done) = exec.run().unwrap();
        out.extend(prefix);
        assert!(!done, "cycle {cycle} finished before its suspend fired");
        let before = db.ledger().snapshot();
        exec.suspend_with(&SuspendPolicy::AllDump, opts).unwrap();
        suspend_pages.push(
            db.ledger()
                .snapshot()
                .since(&before)
                .phase(Phase::Suspend)
                .pages_written,
        );
        let m = read_manifest(&db).unwrap().expect("manifest after suspend");
        assert!(
            (m.chain_len as usize) < COMPACT_CHAIN_LEN,
            "cycle {cycle}: chain_len {} must stay below the compaction cap",
            m.chain_len
        );
        exec = QueryExecution::recover(db.clone())
            .unwrap()
            .expect("committed suspend must recover");
    }
    exec.set_trigger(None);
    out.extend(exec.run_to_completion().unwrap());
    (out, suspend_pages)
}

#[test]
fn delta_suspends_charge_less_dump_io_and_resume_exactly() {
    let reference = reference_output();
    let (full_out, full_pages) = run_cycles("full", &options(false, 1), 3);
    let (delta_out, delta_pages) = run_cycles("delta", &options(true, 1), 3);
    assert_eq!(full_out, reference, "delta-off output drifted");
    assert_eq!(delta_out, reference, "delta-on output drifted");
    // The first suspend has no baseline — both modes dump in full.
    assert_eq!(full_pages[0], delta_pages[0]);
    // Later suspends moved only 40 tuples past a multi-page state: delta
    // frames are never dearer (an unprofitable delta falls back to a full
    // dump) and must be measurably cheaper in aggregate.
    for i in 1..delta_pages.len() {
        assert!(
            delta_pages[i] <= full_pages[i],
            "suspend {i}: delta pages {} exceed full pages {}",
            delta_pages[i],
            full_pages[i]
        );
    }
    let (full, delta): (u64, u64) = (full_pages[1..].iter().sum(), delta_pages[1..].iter().sum());
    assert!(
        delta < full,
        "delta suspends charged {delta} pages, not below the {full} full suspends charge"
    );
}

#[test]
fn delta_chains_compact_and_survive_retention_gc_across_cycles() {
    let reference = reference_output();
    // 7 cycles at keep=1: chains grow 0→1→2, fold, and grow again, with
    // retention GC collecting the superseded generation every time. Any
    // GC'd blob still referenced by a live chain would break a resume.
    let (out, _) = run_cycles("cycles", &options(true, 1), 7);
    assert_eq!(out, reference, "multi-cycle delta output drifted");
}

#[test]
fn retention_keeps_previous_generations_materializable() {
    let dir = TempDir::new("keep");
    let db = Database::open_default(&dir.0).unwrap();
    populate(&db);
    let opts = options(true, 3);
    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    let mut retained_seen = Vec::new();
    for cycle in 0..4 {
        let ticks = if cycle == 0 { 250 } else { 40 };
        exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
            op: OpId(1),
            n: ticks,
        }));
        let (_, done) = exec.run().unwrap();
        assert!(!done);
        exec.suspend_with(&SuspendPolicy::AllDump, &opts).unwrap();
        let m = read_manifest(&db).unwrap().unwrap();
        assert_eq!(
            m.retained.len(),
            (cycle).min(2),
            "cycle {cycle}: keep=3 retains up to 2 predecessors"
        );
        // Every retained generation must still be fully materializable:
        // its SuspendedQuery loads and every record blob (including each
        // delta chain ancestor) reads back through the backend.
        let backend = db.backend();
        for (generation, qblob) in &m.retained {
            let sq =
                SuspendedQuery::decode_from_slice(&backend.get_blob(*qblob).unwrap()).unwrap();
            for rec in sq.records.values() {
                if let Some(b) = rec.heap_dump {
                    backend.get_blob(b).unwrap_or_else(|e| {
                        panic!("generation {generation}: record blob unreadable: {e}")
                    });
                }
            }
            for dep in sq.delta_deps.values().flatten() {
                backend.get_blob(*dep).unwrap_or_else(|e| {
                    panic!("generation {generation}: delta ancestor unreadable: {e}")
                });
            }
            retained_seen.push(*generation);
        }
        exec = QueryExecution::recover(db.clone()).unwrap().unwrap();
    }
    assert!(
        retained_seen.contains(&1) && retained_seen.contains(&3),
        "retention window never slid over generations 1 and 3: {retained_seen:?}"
    );
    // Retiring the live generation reclaims the retained tail too.
    drop(exec);
    QueryExecution::retire_generation(&db).unwrap();
    assert!(read_manifest(&db).unwrap().is_none());
}

#[test]
fn memory_backend_round_trips_without_a_disk_manifest() {
    let reference = reference_output();
    let dir = TempDir::new("mem");
    let db = Database::open_default(&dir.0).unwrap();
    populate(&db);
    db.install_backend(BackendKind::Memory);
    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(1),
        n: 250,
    }));
    let (mut out, done) = exec.run().unwrap();
    assert!(!done);
    exec.suspend(&SuspendPolicy::AllDump).unwrap();
    // The manifest lives in the memory backend, not the disk sidecar: a
    // fresh process would see a clean directory.
    assert!(db.disk().read_sidecar(SUSPEND_MANIFEST).unwrap().is_none());
    let mut exec = QueryExecution::recover(db.clone()).unwrap().unwrap();
    out.extend(exec.run_to_completion().unwrap());
    assert_eq!(out, reference, "memory-backend lifecycle output drifted");
}

#[test]
fn remote_backend_retries_transients_and_fails_over_mid_suspend() {
    let reference = reference_output();
    let dir = TempDir::new("remote");
    let db = Database::open_default(&dir.0).unwrap();
    populate(&db);
    let local = || Arc::new(LocalDiskBackend::new(db.blobs().clone(), db.disk().clone()));
    let remote = Arc::new(RemoteMockBackend::new(local(), 7));
    // First remote put hiccups once (retried under RESUME_BACKOFF); the
    // fourth write tears — the endpoint dies mid-suspend and the robust
    // layer must fail over to the local disk without losing the suspend.
    remote.faults().fail_write(1, WriteFault::Transient(1));
    remote.faults().fail_write(4, WriteFault::Torn);
    let robust = Arc::new(RobustBackend::new(
        remote.clone(),
        Some(local()),
        RESUME_BACKOFF,
        Some(db.ledger().clone()),
    ));
    db.set_backend(robust.clone());

    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(1),
        n: 250,
    }));
    let (mut out, done) = exec.run().unwrap();
    assert!(!done);
    exec.suspend(&SuspendPolicy::AllDump)
        .expect("failover must keep the suspend alive");
    assert!(
        robust.failed_over(),
        "the torn remote write must have flipped the stack to local"
    );
    assert_eq!(robust.name(), "local");
    let mut exec = QueryExecution::recover(db.clone()).unwrap().unwrap();
    out.extend(exec.run_to_completion().unwrap());
    assert_eq!(out, reference, "failover lifecycle output drifted");
}

/// The orphan-leak fault-matrix cell: a torn remote put uploads a partial
/// fragment and then dies — no manifest will ever reference those bytes,
/// so without a sweep they leak forever. The sweep on recover must delete
/// exactly the unreferenced fragments (charged to the ledger), converge to
/// zero orphans, and never touch a blob the live suspend still references.
#[test]
fn torn_remote_put_orphans_are_swept_and_resume_survives() {
    let reference = reference_output();
    let dir = TempDir::new("orphan");
    let db = Database::open_default(&dir.0).unwrap();
    populate(&db);
    let local = || Arc::new(LocalDiskBackend::new(db.blobs().clone(), db.disk().clone()));
    let remote = Arc::new(RemoteMockBackend::new(local(), 7));
    // The second remote put tears mid-upload: a partial fragment lands
    // durably on the endpoint, then the endpoint dies and the robust
    // layer fails over to local disk.
    remote.faults().fail_write(2, WriteFault::Torn);
    let robust = Arc::new(RobustBackend::new(
        remote.clone(),
        Some(local()),
        RESUME_BACKOFF,
        Some(db.ledger().clone()),
    ));
    db.set_backend(robust.clone());

    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(1),
        n: 250,
    }));
    let (mut out, done) = exec.run().unwrap();
    assert!(!done);
    exec.suspend(&SuspendPolicy::AllDump)
        .expect("failover must keep the suspend alive");
    assert!(robust.failed_over());

    // The endpoint comes back (its stored objects survived the outage) —
    // which is exactly when the leaked fragment becomes reachable again.
    remote.faults().clear();

    // The torn fragment is enumerable but referenced by no manifest.
    let listed = robust.list_blobs().unwrap().expect("remote side enumerates");
    assert!(!listed.is_empty(), "the partial upload must be listed");

    let before = db.ledger().snapshot();
    let (scanned, deleted) = QueryExecution::sweep_orphan_blobs(&db).unwrap();
    let after = db.ledger().snapshot();
    assert!(scanned >= 1, "sweep must scan the listed uploads");
    assert!(deleted >= 1, "the torn fragment must be deleted");
    assert!(
        after.phase_cost(Phase::Fallback) > before.phase_cost(Phase::Fallback),
        "orphan deletes must be charged to the ledger"
    );

    // Convergence: a second sweep finds zero orphans.
    let (_, deleted_again) = QueryExecution::sweep_orphan_blobs(&db).unwrap();
    assert_eq!(deleted_again, 0, "sweep must converge to zero orphans");

    // The live suspend's own blobs survived the sweep: resume is exact.
    let mut exec = QueryExecution::recover(db.clone()).unwrap().unwrap();
    out.extend(exec.run_to_completion().unwrap());
    assert_eq!(out, reference, "sweep deleted a referenced blob");
}
