//! Crash matrix: inject a crash at every write event of the suspend phase,
//! restart "the process" from disk, and assert the query's total output is
//! byte-identical to an uninterrupted run.
//!
//! The invariant under test is the atomic-commit protocol: the suspend
//! either committed (a manifest exists → recovery resumes and finishes the
//! query) or it did not (no manifest / old manifest → the query restarts
//! from scratch). Either way the delivered tuple sequence matches the
//! reference — never a torn in-between state, never a panic.

use qsr::core::{OpId, SuspendPolicy};
use qsr::exec::{PlanSpec, Predicate, QueryExecution, SuspendOptions, SuspendTrigger};
use qsr::storage::{CostModel, Database, FaultInjector, Tuple, WriteFault};
use qsr::workload::{generate_table, TableSpec};
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qsr-crash-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Deterministic tables; every instantiation of a scenario sees identical
/// bytes, so write-event ordinals line up across the matrix.
fn populate(db: &Arc<Database>) {
    generate_table(db, &TableSpec::new("r", 800).payload(16).seed(11)).unwrap();
    generate_table(db, &TableSpec::new("s", 200).payload(16).seed(12)).unwrap();
}

/// Sort over block-NLJ over filtered scans: exercises scan, filter,
/// block-NLJ (buffer dump / GoBack fallback) and external sort (in-memory
/// run buffer dump) in one plan.
fn plan() -> PlanSpec {
    PlanSpec::Sort {
        input: Box::new(PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan { table: "r".into() }),
                predicate: Predicate::IntLt { col: 1, value: 500 },
            }),
            inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 150,
        }),
        key: 0,
        buffer_tuples: 4096,
    }
}

/// Run the plan uninterrupted and collect every output tuple.
fn reference_output() -> Vec<Tuple> {
    let dir = TempDir::new("ref");
    let db = Database::open_default(&dir.0).unwrap();
    populate(&db);
    let mut exec = QueryExecution::start(db, plan()).unwrap();
    exec.run_to_completion().unwrap()
}

/// Fire the suspend trigger mid-join (the NLJ is pre-order op 1); the sort
/// above it is still filling, so both carry non-trivial state.
fn trigger() -> SuspendTrigger {
    SuspendTrigger::AfterOpTuples {
        op: OpId(1),
        n: 250,
    }
}

/// Run to the suspend point in a fresh directory, returning the tuples
/// delivered before the suspend and the still-open execution. With
/// `pool_pages > 0` the database runs over a caching buffer pool; the
/// tables are flushed to disk before returning so fault ordinals cover
/// only suspend-phase writes (the load is durably committed, as it would
/// be in a real deployment).
fn run_to_suspend_point_with(
    tag: &str,
    pool_pages: usize,
) -> (TempDir, Arc<Database>, Vec<Tuple>, QueryExecution) {
    let dir = TempDir::new(tag);
    let db = Database::open_with_pool(&dir.0, CostModel::default(), pool_pages).unwrap();
    populate(&db);
    db.pool().flush_all().unwrap();
    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    exec.set_trigger(Some(trigger()));
    let (prefix, done) = exec.run().unwrap();
    assert!(!done, "trigger must fire before the query completes");
    (dir, db, prefix, exec)
}

fn run_to_suspend_point(tag: &str) -> (TempDir, Arc<Database>, Vec<Tuple>, QueryExecution) {
    run_to_suspend_point_with(tag, 0)
}

/// Dry run: count how many write events the suspend phase issues.
fn count_suspend_writes_with(options: &SuspendOptions, pool_pages: usize) -> u64 {
    let (_dir, db, _prefix, exec) = run_to_suspend_point_with("dry", pool_pages);
    let fi = Arc::new(FaultInjector::seeded(0));
    db.disk().set_fault_injector(Some(fi.clone()));
    exec.suspend_with(&SuspendPolicy::AllDump, options).unwrap();
    let writes = fi.writes_observed();
    db.disk().set_fault_injector(None);
    assert!(writes > 0, "suspend must write something");
    writes
}

/// One matrix cell: crash at suspend-phase write event `k`, then restart
/// from disk and check the invariant.
fn crash_at_with(
    k: u64,
    fault: WriteFault,
    reference: &[Tuple],
    options: &SuspendOptions,
    pool_pages: usize,
    resume_workers: usize,
) {
    let (dir, db, prefix, exec) = run_to_suspend_point_with("cell", pool_pages);
    let fi = Arc::new(FaultInjector::seeded(0xC0FFEE + k));
    fi.fail_write(k, fault);
    db.disk().set_fault_injector(Some(fi.clone()));

    // The suspend either dies at the injected fault or — when the crash
    // point lands after the manifest rename — reports success; both are
    // legal. What matters is the state left on disk.
    let _ = exec.suspend_with(&SuspendPolicy::AllDump, options);

    // "Process death": drop every handle, then reopen from the directory
    // alone. The fresh Database has no fault injector.
    drop(db);
    let db = Database::open_default(&dir.0).unwrap();

    match QueryExecution::recover_named_with(db.clone(), qsr::exec::SUSPEND_MANIFEST, resume_workers)
    {
        Ok(Some(mut resumed)) => {
            // Suspend committed: prefix + resumed suffix == reference.
            let suffix = resumed.run_to_completion().unwrap();
            let mut all = prefix.clone();
            all.extend(suffix);
            assert_eq!(
                all, reference,
                "crash at write {k} ({fault:?}): resumed output diverges"
            );
            qsr::exec::clear_manifest(&db).unwrap();
            assert!(
                QueryExecution::recover(db).unwrap().is_none(),
                "cleared manifest must read as no suspend"
            );
        }
        Ok(None) => {
            // Suspend never committed: the query restarts from scratch and
            // must still produce exactly the reference output.
            let mut fresh = QueryExecution::start(db, plan()).unwrap();
            let all = fresh.run_to_completion().unwrap();
            assert_eq!(
                all, reference,
                "crash at write {k} ({fault:?}): fresh rerun diverges"
            );
        }
        Err(e) => panic!("crash at write {k} ({fault:?}): recovery errored: {e}"),
    }
}

/// Crash at every suspend-phase write ordinal under `options`/`pool_pages`,
/// alternating whole-process crashes with torn writes so both halves of
/// the fault model are exercised at every other ordinal.
fn run_matrix(options: &SuspendOptions, pool_pages: usize) {
    run_matrix_with_resume_workers(options, pool_pages, 0);
}

fn run_matrix_with_resume_workers(options: &SuspendOptions, pool_pages: usize, resume_workers: usize) {
    let reference = reference_output();
    assert!(!reference.is_empty());
    let writes = count_suspend_writes_with(options, pool_pages);
    for k in 1..=writes {
        let fault = if k % 2 == 0 {
            WriteFault::Torn
        } else {
            WriteFault::Crash
        };
        crash_at_with(k, fault, &reference, options, pool_pages, resume_workers);
    }
}

#[test]
fn crash_matrix_every_suspend_write() {
    // Default options: dump blobs flushed by the parallel writer pipeline.
    // Which physical write lands at ordinal `k` is scheduling-dependent,
    // but the invariant is state-based and must hold at every ordinal.
    run_matrix(&SuspendOptions::default(), 0);
}

#[test]
fn crash_matrix_serial_baseline() {
    // The seed's serial write path (`dump_writers: 0`) stays covered.
    run_matrix(
        &SuspendOptions {
            dump_writers: 0,
            ..SuspendOptions::default()
        },
        0,
    );
}

#[test]
fn crash_matrix_with_buffer_pool() {
    // A caching pool defers page writes until eviction or the suspend
    // barrier; every ordinal of that reshuffled write sequence must still
    // leave resumable-or-clean state (recovery reopens with a cold pool,
    // so anything lost to the crash must have been redundant).
    run_matrix(&SuspendOptions::default(), 64);
}

#[test]
fn crash_matrix_parallel_resume() {
    // The same crash matrix, but every recovery runs with a 4-reader
    // prefetch pool: whatever torn state a crash left behind, the
    // parallel read path must reach the identical resumable-or-clean
    // verdict and output as the serial one.
    run_matrix_with_resume_workers(&SuspendOptions::default(), 0, 4);
}

#[test]
fn serial_and_parallel_suspends_issue_identical_write_counts() {
    // The pipeline overlaps writes; it must not add, drop, or merge any.
    // Equal totals keep the fault-injection ordinal space — and therefore
    // the crash matrix — identical across the two modes.
    let serial = count_suspend_writes_with(
        &SuspendOptions {
            dump_writers: 0,
            ..SuspendOptions::default()
        },
        0,
    );
    for writers in [1, 4, 8] {
        let parallel = count_suspend_writes_with(
            &SuspendOptions {
                dump_writers: writers,
                ..SuspendOptions::default()
            },
            0,
        );
        assert_eq!(
            serial, parallel,
            "suspend with {writers} writers changed the write-event count"
        );
    }
}

#[test]
fn cached_suspend_recovers_in_fresh_process() {
    // Suspend over a warm buffer pool, then "crash" the process cleanly
    // (drop loses every dirty frame) and recover from disk alone with an
    // uncached database: the suspend barrier must have flushed everything
    // the manifest references.
    let (dir, db, prefix, exec) = run_to_suspend_point_with("cached", 64);
    exec.suspend(&SuspendPolicy::AllDump).unwrap();
    drop(db);

    let db = Database::open_default(&dir.0).unwrap();
    let mut resumed = QueryExecution::recover(db)
        .unwrap()
        .expect("committed suspend must be recoverable");
    let suffix = resumed.run_to_completion().unwrap();
    let mut all = prefix;
    all.extend(suffix);
    assert_eq!(all, reference_output());
}

#[test]
fn crash_after_commit_leaves_resumable_state() {
    // A crash strictly after the suspend returns must leave a committed
    // manifest that a fresh process can recover from.
    let (dir, db, prefix, exec) = run_to_suspend_point("post");
    exec.suspend(&SuspendPolicy::AllDump).unwrap();
    drop(db);

    let db = Database::open_default(&dir.0).unwrap();
    let mut resumed = QueryExecution::recover(db)
        .unwrap()
        .expect("committed suspend must be recoverable");
    let suffix = resumed.run_to_completion().unwrap();
    let mut all = prefix;
    all.extend(suffix);
    assert_eq!(all, reference_output());
}

#[test]
fn second_suspend_supersedes_first_generation() {
    // Suspend, resume, run a little, suspend again: recovery must resume
    // the *second* generation, and the final output must match.
    let (dir, db, mut all, exec) = run_to_suspend_point("gen");
    exec.suspend(&SuspendPolicy::AllDump).unwrap();

    let mut resumed = QueryExecution::recover(db.clone())
        .unwrap()
        .expect("first suspend committed");
    resumed.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(0),
        n: 40,
    }));
    let (mid, done) = resumed.run().unwrap();
    all.extend(mid);
    assert!(!done, "second trigger must fire before completion");
    resumed.suspend(&SuspendPolicy::AllDump).unwrap();
    drop(db);

    let db = Database::open_default(&dir.0).unwrap();
    let manifest = qsr::exec::read_manifest(&db).unwrap().unwrap();
    assert_eq!(manifest.generation, 2, "second suspend is generation 2");
    let mut resumed = QueryExecution::recover(db)
        .unwrap()
        .expect("second suspend committed");
    all.extend(resumed.run_to_completion().unwrap());
    assert_eq!(all, reference_output());
}

#[test]
fn corrupt_dump_degrades_to_goback_on_recovery() {
    // Flip a bit in a dump blob after commit: recovery must degrade to the
    // GoBack fallback (recompute) and still produce identical output.
    let (dir, db, prefix, exec) = run_to_suspend_point("rot");
    let handle = exec.suspend(&SuspendPolicy::AllDump).unwrap();

    let sq = qsr::core::SuspendedQuery::load(db.blobs(), handle.blob).unwrap();
    assert!(
        !sq.fallbacks.is_empty(),
        "suspend should record GoBack fallbacks for dumped operators"
    );
    // Corrupt a dump whose operator recorded a fallback (the sort's dump
    // has none — its rebuild child signed no contract — so rotting it is
    // correctly unrecoverable; that case is covered in failure_injection).
    let dump = sq
        .records
        .values()
        .filter(|r| sq.fallbacks.contains_key(&r.op))
        .find_map(|r| r.heap_dump)
        .expect("a dumped operator with a GoBack fallback must exist");
    drop(db);

    // Rot the dump's backing file on disk (inside the stored length so the
    // checksum is guaranteed to cover it).
    let path = dir.0.join(format!("f{}.qsr", dump.file.0));
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = (dump.len / 2) as usize;
    bytes[mid] ^= 0x10;
    std::fs::write(&path, bytes).unwrap();

    let db = Database::open_default(&dir.0).unwrap();
    let mut resumed = QueryExecution::recover(db)
        .unwrap()
        .expect("corrupt dump with fallback must still recover");
    let suffix = resumed.run_to_completion().unwrap();
    let mut all = prefix;
    all.extend(suffix);
    assert_eq!(all, reference_output());
}
