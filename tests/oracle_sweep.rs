//! Differential suspend-point oracle driver.
//!
//! Every corpus query is run twice — once uninterrupted (the golden run),
//! once under interference — and the delivered tuple sequences must be
//! bit-identical. Three interference families:
//!
//! 1. an exhaustive sweep suspending at every `QSR_ORACLE_STRIDE`-th
//!    work-unit boundary (default 1: *every* boundary) under every
//!    pool × writers configuration,
//! 2. multi-suspend chains (suspend → resume → suspend …) to depth 3,
//! 3. `QSR_ORACLE_FAULTS` randomized fault schedules (default 32; seeded,
//!    no wall-clock entropy) striking the suspend or resume phase,
//! 4. a vectorized batch-mode lane (`batch=` token axis) re-running the
//!    sweep and chains through `next_batch` against the tuple-mode golden;
//!    `QSR_ORACLE_FULL=1` widens the batch sizes to {1, 7, 64, 1024}.
//!
//! On failure the harness prints a repro line
//! (`QSR_ORACLE_SEED=… QSR_ORACLE_CASE='…'`), greedily shrinks the
//! scenario, prints the minimized token, and panics. Replaying: set
//! `QSR_ORACLE_CASE` to a printed token and rerun this test — only the
//! replay runs, everything else skips. `QSR_ORACLE_FULL=1` widens the
//! fault budget and chain coverage for a nightly-style run.

use qsr::oracle::{shrink, Mode, Oracle, Policy, Scenario, SkewProfile};
use qsr::storage::{splitmix64, BackendKind, FaultSchedule};

const DEFAULT_SEED: u64 = 0x0D1F_F5EE;

struct Config {
    seed: u64,
    stride: u64,
    faults: u64,
    full: bool,
    replay: Option<String>,
}

fn config() -> Config {
    // Hard-error parsing: a malformed QSR_ORACLE_* value must abort the
    // run naming the variable, never silently fall back to a default.
    let full = qsr::storage::env_flag("QSR_ORACLE_FULL").unwrap_or(false);
    Config {
        seed: qsr::storage::env_parse("QSR_ORACLE_SEED").unwrap_or(DEFAULT_SEED),
        stride: qsr::storage::env_parse("QSR_ORACLE_STRIDE").unwrap_or(1).max(1),
        faults: qsr::storage::env_parse("QSR_ORACLE_FAULTS")
            .unwrap_or(if full { 128 } else { 32 }),
        full,
        replay: qsr::storage::env_parse::<String>("QSR_ORACLE_CASE"),
    }
}

/// The pool-pages × dump-writers matrix every family covers.
const CONFIGS: [(usize, usize); 4] = [(0, 0), (0, 4), (64, 0), (64, 4)];

/// Report a failing scenario: print the repro token, shrink, print the
/// minimized token, panic.
fn fail_with_repro(oracle: &mut Oracle, s: &Scenario, seed: u64, err: &str) -> ! {
    eprintln!("oracle failure: {err}");
    eprintln!("repro: QSR_ORACLE_SEED={seed} QSR_ORACLE_CASE='{s}' cargo test --release --test oracle_sweep");
    let min = shrink(oracle, s);
    if min != *s {
        eprintln!("minimized: QSR_ORACLE_SEED={seed} QSR_ORACLE_CASE='{min}'");
    }
    panic!("oracle scenario failed: {min}");
}

fn check_or_die(oracle: &mut Oracle, s: &Scenario, seed: u64) {
    if let Err(e) = oracle.check(s) {
        fail_with_repro(oracle, s, seed, &e);
    }
}

/// Replay a single scenario token from the environment. When
/// `QSR_ORACLE_CASE` is unset this test is a no-op; when set, the other
/// oracle tests skip and only the replay runs.
#[test]
fn replay_repro_token() {
    let cfg = config();
    let Some(token) = cfg.replay else { return };
    let s: Scenario = token
        .parse()
        .unwrap_or_else(|e| panic!("bad QSR_ORACLE_CASE token {token:?}: {e}"));
    let mut oracle = Oracle::new();
    check_or_die(&mut oracle, &s, cfg.seed);
}

#[test]
fn exhaustive_suspend_point_sweep() {
    let cfg = config();
    if cfg.replay.is_some() {
        return;
    }
    let mut oracle = Oracle::new();
    for case in qsr::workload::cases() {
        let total = oracle
            .total_work_units(case.name)
            .unwrap_or_else(|e| panic!("golden run of {}: {e}", case.name));
        for (pool_pages, dump_writers) in CONFIGS {
            let mut boundary = 1;
            while boundary <= total {
                // Alternate policies across the sweep so both the
                // all-dump and the MIP-optimized suspend paths see every
                // region of the boundary space.
                let policy = if boundary % 2 == 0 {
                    Policy::Optimized
                } else {
                    Policy::Dump
                };
                let s = Scenario {
                    case: case.name.to_string(),
                    pool_pages,
                    dump_writers,
                    batch: 0,
                    mem_budget: 0,
                    merge_fanin: 0,
                    skew: SkewProfile::Default,
                    policy,
                    quota: None,
                    backend: Default::default(),
                    delta: false,
                    keep: 1,
                    mode: Mode::Sweep { boundary },
                };
                check_or_die(&mut oracle, &s, cfg.seed);
                boundary += cfg.stride;
            }
        }
    }
}

#[test]
fn multi_suspend_chains_to_depth_three() {
    let cfg = config();
    if cfg.replay.is_some() {
        return;
    }
    let mut oracle = Oracle::new();
    let configs: &[(usize, usize)] = if cfg.full { &CONFIGS } else { &[(0, 0), (64, 4)] };
    for case in qsr::workload::cases() {
        let total = oracle.total_work_units(case.name).unwrap();
        let step = (total / 4).max(1);
        // Fixed chains splitting the query into roughly equal segments,
        // plus one seeded-random chain per case.
        let mut chains = vec![vec![step, step], vec![step, step, step]];
        let mut x = cfg.seed ^ splitmix64(case.name.len() as u64);
        let mut next = move || {
            x = splitmix64(x);
            x
        };
        chains.push(vec![
            1 + next() % total.max(1),
            1 + next() % step,
            1 + next() % step,
        ]);
        for (pool_pages, dump_writers) in configs.iter().copied() {
            for boundaries in &chains {
                let s = Scenario {
                    case: case.name.to_string(),
                    pool_pages,
                    dump_writers,
                    batch: 0,
                    mem_budget: 0,
                    merge_fanin: 0,
                    skew: SkewProfile::Default,
                    policy: if boundaries.len() % 2 == 0 {
                        Policy::Optimized
                    } else {
                        Policy::Dump
                    },
                    quota: None,
                    backend: Default::default(),
                    delta: false,
                    keep: 1,
                    mode: Mode::Chain {
                        boundaries: boundaries.clone(),
                    },
                };
                check_or_die(&mut oracle, &s, cfg.seed);
            }
        }
    }
}

/// Vectorized-execution family: the exhaustive suspend-point sweep again,
/// but with the interfered run (and every recovery re-execution) driven
/// through `next_batch` while the golden stays tuple-at-a-time. Batch
/// sizes are deliberately odd so suspend boundaries land *mid-batch* at
/// every possible alignment — the contract under test is that operators
/// fully process any consumed batch and surface the suspend on the next
/// pull, so delivered output is bit-identical to the scalar path no
/// matter where inside a batch the request lands.
#[test]
fn batch_mode_suspend_point_sweep() {
    let cfg = config();
    if cfg.replay.is_some() {
        return;
    }
    let mut oracle = Oracle::new();
    let batches: &[usize] = if cfg.full { &[1, 7, 64, 1024] } else { &[7, 64] };
    for case in qsr::workload::cases() {
        let total = oracle
            .total_work_units(case.name)
            .unwrap_or_else(|e| panic!("golden run of {}: {e}", case.name));
        for &batch in batches {
            let mut boundary = 1;
            while boundary <= total {
                let policy = if boundary % 2 == 0 {
                    Policy::Optimized
                } else {
                    Policy::Dump
                };
                let s = Scenario {
                    case: case.name.to_string(),
                    pool_pages: 0,
                    dump_writers: 0,
                    batch,
                    mem_budget: 0,
                    merge_fanin: 0,
                    skew: SkewProfile::Default,
                    policy,
                    quota: None,
                    backend: Default::default(),
                    delta: false,
                    keep: 1,
                    mode: Mode::Sweep { boundary },
                };
                check_or_die(&mut oracle, &s, cfg.seed);
                boundary += cfg.stride;
            }
        }
    }
}

/// Batch-mode chains: suspend → resume → suspend with every segment
/// executing vectorized, so resumed operators are re-driven through
/// `next_batch` from restored row-oriented state.
#[test]
fn batch_mode_multi_suspend_chains() {
    let cfg = config();
    if cfg.replay.is_some() {
        return;
    }
    let mut oracle = Oracle::new();
    for case in qsr::workload::cases() {
        let total = oracle.total_work_units(case.name).unwrap();
        let step = (total / 4).max(1);
        for (batch, boundaries) in [(7, vec![step, step]), (64, vec![step, step, step])] {
            let s = Scenario {
                case: case.name.to_string(),
                pool_pages: 64,
                dump_writers: 4,
                batch,
                mem_budget: 0,
                merge_fanin: 0,
                skew: SkewProfile::Default,
                policy: Policy::Optimized,
                quota: None,
                backend: Default::default(),
                delta: false,
                keep: 1,
                mode: Mode::Chain { boundaries },
            };
            check_or_die(&mut oracle, &s, cfg.seed);
        }
    }
}

/// Backend × delta × retention family: multi-suspend chains (the only
/// mode where delta frames and the retention window actually build up)
/// across every suspend backend, with delta checkpointing on and a
/// keep-last-2 window, so every resume replays chained frames whose
/// ancestors the retention GC must have preserved. The memory backend
/// resumes through the same handle (its state dies with the process by
/// design); local and remote resume through a fresh handle like every
/// other scenario.
#[test]
fn backend_delta_retention_chains() {
    let cfg = config();
    if cfg.replay.is_some() {
        return;
    }
    let mut oracle = Oracle::new();
    let cases: &[&str] = if cfg.full {
        &["sort", "hash-join", "hash-agg", "distinct", "merge-join"]
    } else {
        &["sort", "hash-join"]
    };
    for case in cases {
        let total = oracle
            .total_work_units(case)
            .unwrap_or_else(|e| panic!("golden run of {case}: {e}"));
        let step = (total / 4).max(1);
        for backend in [BackendKind::Local, BackendKind::Memory, BackendKind::Remote] {
            for (delta, keep) in [(true, 1), (true, 2), (false, 3)] {
                let s = Scenario {
                    case: case.to_string(),
                    pool_pages: 0,
                    dump_writers: 0,
                    batch: 0,
                    mem_budget: 0,
                    merge_fanin: 0,
                    skew: SkewProfile::Default,
                    policy: Policy::Dump,
                    quota: None,
                    backend,
                    delta,
                    keep,
                    mode: Mode::Chain {
                        boundaries: vec![step, step, step],
                    },
                };
                check_or_die(&mut oracle, &s, cfg.seed);
            }
        }
    }
}

/// Disk-pressure family: sweep quota headrooms from "nothing fits" (clean
/// abort + rerun) through "only the cheapest rungs fit" up to "everything
/// fits", at the MIP-optimized policy whose ladder has all four rungs.
/// Every headroom must deliver golden output — via a committed suspend at
/// whatever rung the quota admits, or via clean abort and re-execution.
#[test]
fn degradation_ladder_quota_sweep() {
    let cfg = config();
    if cfg.replay.is_some() {
        return;
    }
    let mut oracle = Oracle::new();
    const PAGE: u64 = 4096;
    let headrooms: &[u64] = &[0, PAGE, 2 * PAGE, 4 * PAGE, 16 * PAGE, 64 * PAGE, 1024 * PAGE];
    for case in qsr::workload::cases() {
        let total = oracle
            .total_work_units(case.name)
            .unwrap_or_else(|e| panic!("golden run of {}: {e}", case.name));
        let boundary = (total / 2).max(1);
        for &headroom in headrooms {
            for policy in [Policy::Optimized, Policy::Dump] {
                let s = Scenario {
                    case: case.name.to_string(),
                    pool_pages: 0,
                    dump_writers: 0,
                    batch: 0,
                    mem_budget: 0,
                    merge_fanin: 0,
                    skew: SkewProfile::Default,
                    policy,
                    quota: Some(headroom),
                    backend: Default::default(),
                    delta: false,
                    keep: 1,
                    mode: Mode::Sweep { boundary },
                };
                check_or_die(&mut oracle, &s, cfg.seed);
            }
        }
    }
}

/// Scripted `NoSpace` at every write ordinal of the suspend phase: rung 0
/// loses exactly one write (the fault is one-shot), so the ladder steps
/// down once and the next rung — salvaging rung 0's valid blobs — must
/// still commit a resumable suspend that delivers golden output.
#[test]
fn scripted_nospace_at_every_suspend_write() {
    let cfg = config();
    if cfg.replay.is_some() {
        return;
    }
    let mut oracle = Oracle::new();
    // hash-join and hash-agg pin the in-place partition-writer sealing:
    // a NoSpace on the first suspend write once lost the unflushed tail
    // page, and the retry rung committed a run set missing tuples.
    for case in ["sort", "hash-join", "hash-agg"] {
        let total = oracle
            .total_work_units(case)
            .unwrap_or_else(|e| panic!("golden run of {case}: {e}"));
        let boundary = (total / 2).max(1);
        let shape = Scenario {
            case: case.to_string(),
            pool_pages: 0,
            dump_writers: 0,
            batch: 0,
            mem_budget: 0,
            merge_fanin: 0,
            skew: SkewProfile::Default,
            policy: Policy::Optimized,
            quota: None,
            backend: Default::default(),
            delta: false,
            keep: 1,
            mode: Mode::Fault {
                boundary,
                during_resume: false,
                schedule: FaultSchedule::default(),
            },
        };
        let (writes, _) = oracle
            .probe_fault_windows(&shape, boundary, false)
            .unwrap_or_else(|e| panic!("nospace probe [{shape}]: {e}"));
        for ord in 1..=writes.max(1) {
            let s = Scenario {
                mode: Mode::Fault {
                    boundary,
                    during_resume: false,
                    schedule: FaultSchedule {
                        write_fault: Some((ord, qsr::storage::WriteFault::NoSpace)),
                        ..Default::default()
                    },
                },
                ..shape.clone()
            };
            check_or_die(&mut oracle, &s, cfg.seed);
        }
    }
}

/// Larger-than-memory knob variants: explicit `budget=`/`fanin=` tokens
/// overriding the grace cases' own envelopes, crossed with the adversarial
/// skew profiles. Budget 1 forces the deepest partition tree (every
/// recursion level plus the block-NLJ fallback); fan-in 2 over the
/// reversed table maximizes intermediate merge passes. The sweep walks
/// every work-unit boundary, so suspends land mid-partition-spill and
/// mid-merge-pass at every alignment the state machines allow.
const GRACE_VARIANTS: [(&str, u64, u64, SkewProfile); 6] = [
    ("grace-join-deep", 1, 0, SkewProfile::Dup),
    ("grace-join-deep", 2, 0, SkewProfile::Zipf),
    ("grace-join-deep", 5, 0, SkewProfile::Rev),
    ("multipass-sort", 0, 2, SkewProfile::Rev),
    ("multipass-sort", 0, 3, SkewProfile::Zipf),
    ("multipass-sort", 0, 2, SkewProfile::Dup),
];

#[test]
fn grace_memory_knob_sweep() {
    let cfg = config();
    if cfg.replay.is_some() {
        return;
    }
    let mut oracle = Oracle::new();
    // The full lane crosses every boundary with the whole pool × writers ×
    // batch matrix; the quick lane rotates through the matrix across the
    // boundary space so each combination still sees every region.
    let mut combos = Vec::new();
    for (pool_pages, dump_writers) in CONFIGS {
        for batch in [0, 48] {
            combos.push((pool_pages, dump_writers, batch));
        }
    }
    for (case, mem_budget, merge_fanin, skew) in GRACE_VARIANTS {
        let probe = Scenario {
            case: case.to_string(),
            pool_pages: 0,
            dump_writers: 0,
            batch: 0,
            mem_budget,
            merge_fanin,
            skew,
            policy: Policy::Dump,
            quota: None,
            backend: Default::default(),
            delta: false,
            keep: 1,
            mode: Mode::Sweep { boundary: 1 },
        };
        let total = oracle
            .total_work_units_for(&probe)
            .unwrap_or_else(|e| panic!("golden run [{probe}]: {e}"));
        // Quick lane: cap each variant near 96 boundaries; stride-1 under
        // QSR_ORACLE_FULL=1 (or an explicit QSR_ORACLE_STRIDE).
        let stride = if cfg.full {
            cfg.stride
        } else {
            cfg.stride.max(total / 96).max(1)
        };
        let mut boundary = 1;
        let mut turn = 0usize;
        while boundary <= total {
            let policy = if boundary % 2 == 0 {
                Policy::Optimized
            } else {
                Policy::Dump
            };
            let picks: &[(usize, usize, usize)] = if cfg.full {
                &combos
            } else {
                std::slice::from_ref(&combos[turn % combos.len()])
            };
            for &(pool_pages, dump_writers, batch) in picks {
                let s = Scenario {
                    case: case.to_string(),
                    pool_pages,
                    dump_writers,
                    batch,
                    mem_budget,
                    merge_fanin,
                    skew,
                    policy,
                    quota: None,
                    backend: Default::default(),
                    delta: false,
                    keep: 1,
                    mode: Mode::Sweep { boundary },
                };
                check_or_die(&mut oracle, &s, cfg.seed);
            }
            turn += 1;
            boundary += stride;
        }
    }
}

/// Seeded fault schedules against the knobbed grace scenarios: 32 runs
/// whose boundaries are drawn from the whole work-unit space, so faults
/// strike suspends parked mid-recursive-spill and mid-merge-pass, during
/// both the suspend and the resume phase.
#[test]
fn grace_knob_fault_schedules() {
    let cfg = config();
    if cfg.replay.is_some() {
        return;
    }
    let mut oracle = Oracle::new();
    let mut x = cfg.seed ^ 0x6ACE;
    let mut next = move || {
        x = splitmix64(x);
        x
    };
    for i in 0..32u64 {
        let (case, mem_budget, merge_fanin, skew) =
            GRACE_VARIANTS[(next() % GRACE_VARIANTS.len() as u64) as usize];
        let (pool_pages, dump_writers) = CONFIGS[(next() % CONFIGS.len() as u64) as usize];
        let during_resume = next() % 2 == 1;
        let policy = if next() % 2 == 0 { Policy::Dump } else { Policy::Optimized };
        let batch = if next() % 2 == 0 { 0 } else { 48 };
        let shape = Scenario {
            case: case.to_string(),
            pool_pages,
            dump_writers,
            batch,
            mem_budget,
            merge_fanin,
            skew,
            policy,
            quota: None,
            backend: Default::default(),
            delta: false,
            keep: 1,
            mode: Mode::Fault {
                boundary: 1,
                during_resume,
                schedule: FaultSchedule::default(),
            },
        };
        let total = oracle.total_work_units_for(&shape).unwrap();
        let boundary = 1 + next() % total.max(1);
        let shape = Scenario {
            mode: Mode::Fault {
                boundary,
                during_resume,
                schedule: FaultSchedule::default(),
            },
            ..shape
        };
        let (writes, reads) = oracle
            .probe_fault_windows(&shape, boundary, during_resume)
            .unwrap_or_else(|e| panic!("grace fault probe {i} [{shape}]: {e}"));
        let schedule = FaultSchedule::from_seed(cfg.seed.wrapping_add(0x6ACE + i), writes, reads);
        let s = Scenario {
            mode: Mode::Fault {
                boundary,
                during_resume,
                schedule,
            },
            ..shape
        };
        check_or_die(&mut oracle, &s, cfg.seed);
    }
}

#[test]
fn randomized_fault_schedules() {
    let cfg = config();
    if cfg.replay.is_some() {
        return;
    }
    let mut oracle = Oracle::new();
    let cases = qsr::workload::cases();
    let mut x = cfg.seed;
    let mut next = move || {
        x = splitmix64(x);
        x
    };
    for i in 0..cfg.faults {
        let case = &cases[(next() % cases.len() as u64) as usize];
        let total = oracle.total_work_units(case.name).unwrap();
        let (pool_pages, dump_writers) = CONFIGS[(next() % CONFIGS.len() as u64) as usize];
        let during_resume = next() % 2 == 1;
        let boundary = 1 + next() % total.max(1);
        let policy = if next() % 2 == 0 { Policy::Dump } else { Policy::Optimized };
        // One in four randomized fault runs also squeezes the disk: a
        // seeded quota headroom compounds the scripted fault schedule.
        let quota = (next() % 4 == 0).then(|| next() % (256 * 1024));
        let shape = Scenario {
            case: case.name.to_string(),
            pool_pages,
            dump_writers,
            batch: 0,
            mem_budget: 0,
            merge_fanin: 0,
            skew: SkewProfile::Default,
            policy,
            quota,
            backend: Default::default(),
            delta: false,
            keep: 1,
            mode: Mode::Fault {
                boundary,
                during_resume,
                schedule: FaultSchedule::default(),
            },
        };
        // Size the fault windows to the I/O the targeted phase actually
        // issues, so scheduled ordinals usually land inside the phase.
        let (writes, reads) = oracle
            .probe_fault_windows(&shape, boundary, during_resume)
            .unwrap_or_else(|e| panic!("fault probe {i} [{shape}]: {e}"));
        let schedule = FaultSchedule::from_seed(cfg.seed.wrapping_add(i), writes, reads);
        let s = Scenario {
            mode: Mode::Fault {
                boundary,
                during_resume,
                schedule,
            },
            ..shape
        };
        check_or_die(&mut oracle, &s, cfg.seed);
    }
}
