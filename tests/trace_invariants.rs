//! Suspend-lifecycle flight-recorder invariants.
//!
//! Two families:
//!
//! 1. **Zero overhead off** — the same corpus scenario run with no tracer
//!    and with a tracer (full capture + JSONL sink) must leave the
//!    `CostLedger` bit-identical and deliver identical output. The sink
//!    writes through `std::fs`, never the `DiskManager`, so observability
//!    can never perturb the paper's cost numbers. `scripts/ci.sh` runs
//!    this test in release mode.
//!
//! 2. **Event-stream invariants** — with full capture on, every corpus
//!    case under several pool/policy/deadline configurations must produce
//!    a structurally sound stream: strict `RungStart` →
//!    (`RungAbort`|`RungCommit`) pairing, `PhaseExit`/`PhaseEnter`
//!    alternation paired on event payloads (the record's own `phase`
//!    field is already the *new* phase on a `PhaseExit`), and per-operator
//!    attribution that reconciles with the ledger's phase table — exactly
//!    for a clean pool-0 suspend, bounded everywhere else.

use qsr::core::SuspendPolicy;
use qsr::exec::{QueryExecution, SuspendOptions};
use qsr::storage::{CostModel, CostSnapshot, Database, Phase, TraceEvent, TraceRecord, Tracer};
use qsr::workload::{cases, populate};
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qsr-traceinv-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn setup(dir: &TempDir, pool_pages: usize) -> Arc<Database> {
    let db = Database::open_with_pool(&dir.0, CostModel::default(), pool_pages).unwrap();
    populate(&db).unwrap();
    db.pool().flush_all().unwrap();
    db
}

fn install_full_capture(db: &Arc<Database>, sink: Option<&PathBuf>) -> Arc<Tracer> {
    let t = Arc::new(Tracer::new(db.ledger().clone()));
    t.enable_full_capture();
    if let Some(path) = sink {
        t.set_json_sink(path).unwrap();
    }
    db.install_tracer(Some(t.clone()));
    t
}

fn serial() -> SuspendOptions {
    SuspendOptions {
        dump_writers: 0,
        ..SuspendOptions::default()
    }
}

/// Golden output and total work units of an uninterrupted run.
fn golden(case: &str) -> (Vec<qsr::storage::Tuple>, u64) {
    let dir = TempDir::new("golden");
    let db = setup(&dir, 0);
    let plan = qsr::workload::case_by_name(case).unwrap().plan;
    let mut exec = QueryExecution::start(db, plan).unwrap();
    let out = exec.run_to_completion().unwrap();
    (out, exec.work_units())
}

/// Run `case` to its mid-point boundary, suspend under `policy`/`options`,
/// resume through the same database handle (so the tracer observes the
/// whole lifecycle), and deliver the full output.
fn suspend_resume_cycle(
    db: &Arc<Database>,
    case: &str,
    boundary: u64,
    policy: &SuspendPolicy,
    options: &SuspendOptions,
) -> Vec<qsr::storage::Tuple> {
    let plan = qsr::workload::case_by_name(case).unwrap().plan;
    let mut exec = QueryExecution::start(db.clone(), plan).unwrap();
    exec.set_work_unit_observer(Some(Box::new(move |_op, seq: u64| seq >= boundary)));
    let (mut out, done) = exec.run().unwrap();
    assert!(!done, "{case}: boundary {boundary} must fire before completion");
    exec.suspend_with(policy, options).unwrap();
    let mut resumed = QueryExecution::recover(db.clone())
        .unwrap()
        .expect("committed suspend must recover");
    out.extend(resumed.run_to_completion().unwrap());
    out
}

/// Invariant: every `RungStart` is closed by exactly one `RungAbort` or
/// `RungCommit` naming the same rung, rungs never nest, and `RungPlan` /
/// `WatchdogVeto` only appear inside an open rung. Returns the commit
/// count.
fn check_rung_pairing(case: &str, records: &[TraceRecord]) -> usize {
    let mut open: Option<&str> = None;
    let mut commits = 0;
    for r in records {
        match &r.event {
            TraceEvent::RungStart { rung } => {
                assert!(
                    open.is_none(),
                    "{case}: RungStart {rung:?} while {open:?} still open"
                );
                open = Some(rung);
            }
            TraceEvent::RungPlan { rung, .. } => {
                assert_eq!(open, Some(*rung), "{case}: RungPlan outside its rung");
            }
            TraceEvent::WatchdogVeto { .. } => {
                assert!(open.is_some(), "{case}: WatchdogVeto outside any rung");
            }
            TraceEvent::RungAbort { rung, .. } => {
                assert_eq!(open, Some(*rung), "{case}: RungAbort closes wrong rung");
                open = None;
            }
            TraceEvent::RungCommit { rung, .. } => {
                assert_eq!(open, Some(*rung), "{case}: RungCommit closes wrong rung");
                open = None;
                commits += 1;
            }
            _ => {}
        }
    }
    assert!(open.is_none(), "{case}: rung {open:?} never closed");
    commits
}

/// Invariant: phase transitions come as `PhaseExit(old)` immediately
/// answered by `PhaseEnter(new)`, with `old` matching the tracked current
/// phase. Pairing is on event payloads: by the time `PhaseExit` is
/// emitted the ledger (and thus `record.phase`) already shows the new
/// phase.
fn check_phase_alternation(case: &str, records: &[TraceRecord]) {
    let mut current = Phase::Execute;
    let mut exiting: Option<Phase> = None;
    for r in records {
        match &r.event {
            TraceEvent::PhaseExit { phase } => {
                assert!(
                    exiting.is_none(),
                    "{case}: PhaseExit while a transition is already open"
                );
                assert_eq!(*phase, current, "{case}: PhaseExit names a phase we are not in");
                exiting = Some(*phase);
            }
            TraceEvent::PhaseEnter { phase } => {
                assert!(exiting.is_some(), "{case}: PhaseEnter without a PhaseExit");
                assert_ne!(Some(*phase), exiting, "{case}: self-transition traced");
                current = *phase;
                exiting = None;
            }
            _ => {
                // set_phase emits Exit+Enter back to back under one call;
                // serial scenarios admit nothing in between.
                assert!(
                    exiting.is_none(),
                    "{case}: event {:?} interleaved inside a phase transition",
                    r.event
                );
            }
        }
    }
    assert!(exiting.is_none(), "{case}: stream ends mid-transition");
}

/// Sum of fresh (non-reused) dump pages and metadata pages whose records
/// were emitted under `phase`.
fn attributed_written(records: &[TraceRecord], phase: Phase) -> u64 {
    records
        .iter()
        .filter(|r| r.phase == phase)
        .map(|r| match &r.event {
            TraceEvent::OpDump {
                pages,
                reused: false,
                ..
            } => *pages,
            TraceEvent::MetaWrite { pages, .. } => *pages,
            _ => 0,
        })
        .sum()
}

fn resume_attributed_reads(records: &[TraceRecord]) -> u64 {
    records
        .iter()
        .filter(|r| r.phase == Phase::Resume)
        .map(|r| match &r.event {
            TraceEvent::OpIo { reads, .. } => *reads,
            _ => 0,
        })
        .sum()
}

#[test]
fn tracer_installed_is_ledger_bit_identical() {
    // The pin behind "zero overhead off": same scenario, no tracer vs.
    // tracer with full capture and a live JSONL sink — ledger totals and
    // output must be bit-identical, because tracer I/O never touches the
    // DiskManager. Run in release mode by scripts/ci.sh.
    for case in cases() {
        let (reference, total) = golden(case.name);
        let boundary = (total / 2).max(1);
        let policy = SuspendPolicy::Optimized { budget: None };

        let run = |traced: bool| -> (Vec<qsr::storage::Tuple>, CostSnapshot) {
            let dir = TempDir::new(if traced { "on" } else { "off" });
            let db = setup(&dir, 0);
            if traced {
                let sink = dir.0.join("trace.jsonl");
                install_full_capture(&db, Some(&sink));
            }
            let out = suspend_resume_cycle(&db, case.name, boundary, &policy, &serial());
            (out, db.ledger().snapshot())
        };

        let (out_off, ledger_off) = run(false);
        let (out_on, ledger_on) = run(true);
        assert_eq!(out_off, reference, "{}: untraced output diverges", case.name);
        assert_eq!(out_on, out_off, "{}: tracing changed the output", case.name);
        assert_eq!(
            ledger_on, ledger_off,
            "{}: tracing perturbed the cost ledger",
            case.name
        );
    }
}

/// Measured cost of one suspend of `case` at `boundary` under `policy`
/// (fresh uncached database; all ladder I/O included).
fn suspend_cost(case: &str, boundary: u64, policy: &SuspendPolicy) -> f64 {
    let dir = TempDir::new("probe");
    let db = setup(&dir, 0);
    let plan = qsr::workload::case_by_name(case).unwrap().plan;
    let mut exec = QueryExecution::start(db.clone(), plan).unwrap();
    exec.set_work_unit_observer(Some(Box::new(move |_op, seq: u64| seq >= boundary)));
    let (_, done) = exec.run().unwrap();
    assert!(!done);
    let before = db.ledger().snapshot();
    exec.suspend_with(policy, &serial()).unwrap();
    db.ledger().snapshot().since(&before).total_cost()
}

#[test]
fn event_stream_invariants_across_corpus() {
    // (pool_pages, policy, squeeze): the clean pool-0 rows admit the
    // exact suspend-phase reconciliation; the cached row exercises
    // write-backs; the squeezed row runs under a deadline midway between
    // the all-GoBack and all-dump suspend costs, forcing ladder descent
    // (admission skips or watchdog vetoes) while still committing —
    // attribution there is bounded by the ledger instead of exact.
    let configs: &[(usize, SuspendPolicy, bool)] = &[
        (0, SuspendPolicy::AllDump, false),
        (0, SuspendPolicy::Optimized { budget: None }, false),
        (64, SuspendPolicy::Optimized { budget: None }, false),
        (0, SuspendPolicy::AllDump, true),
    ];
    for case in cases() {
        let (reference, total) = golden(case.name);
        let boundary = (total / 2).max(1);
        for (pool_pages, policy, squeeze) in configs {
            let deadline = squeeze.then(|| {
                let dump = suspend_cost(case.name, boundary, &SuspendPolicy::AllDump);
                let goback = suspend_cost(case.name, boundary, &SuspendPolicy::AllGoBack);
                // Midway: the cheap rungs fit, the full dump should not.
                // When the two coincide the deadline is simply generous.
                goback + (dump - goback).max(0.0) / 2.0
            });
            let tag = format!("{}-p{pool_pages}", case.name);
            let dir = TempDir::new(&tag);
            let db = setup(&dir, *pool_pages);
            let tracer = install_full_capture(&db, None);
            let options = SuspendOptions { deadline, ..serial() };
            let out = suspend_resume_cycle(&db, case.name, boundary, policy, &options);
            assert_eq!(out, reference, "[{tag}] output diverges");

            let records = tracer.take_full();
            assert!(!records.is_empty(), "[{tag}] no events captured");
            let mut seq = records[0].seq;
            for r in &records[1..] {
                assert!(r.seq > seq, "[{tag}] seq not strictly increasing");
                seq = r.seq;
            }

            let commits = check_rung_pairing(&tag, &records);
            assert_eq!(commits, 1, "[{tag}] exactly one rung must commit");
            check_phase_alternation(&tag, &records);

            let snap = db.ledger().snapshot();
            let aborted = records
                .iter()
                .any(|r| matches!(r.event, TraceEvent::RungAbort { .. }));
            let attributed = attributed_written(&records, Phase::Suspend);
            if *pool_pages == 0 && !aborted {
                // Clean serial pool-0 commit: the suspend phase's ledger
                // page writes decompose exactly into fresh operator dumps
                // plus traced metadata (SuspendedQuery blob, partition
                // seals). Nothing writes untraced.
                assert_eq!(
                    snap.phase(Phase::Suspend).pages_written,
                    attributed,
                    "[{tag}] suspend-phase pages not fully attributed"
                );
            } else {
                // Pooled or degraded runs: write-backs of execution-dirty
                // frames and abandoned-rung I/O also charge the phase, so
                // attribution is a lower bound.
                assert!(
                    attributed <= snap.phase(Phase::Suspend).pages_written
                        + snap.phase(Phase::Fallback).pages_written,
                    "[{tag}] attributed {attributed} exceeds ledger suspend+fallback writes"
                );
            }
            // Resume-phase reads attributed to operators never exceed what
            // the ledger charged the phase — plus, for cached runs, pool
            // hits, which the operator observes but the ledger (rightly)
            // never charges.
            let resume_read_bound = snap.phase(Phase::Resume).pages_read
                + if *pool_pages > 0 { snap.cache.hits } else { 0 };
            assert!(
                resume_attributed_reads(&records) <= resume_read_bound,
                "[{tag}] resume attribution exceeds ledger"
            );
            // Full capture implies the derived attribution table folds
            // without panicking and covers at least one operator whenever
            // any dump happened.
            let table = qsr_bench::attribution::attribute(&records);
            if records
                .iter()
                .any(|r| matches!(r.event, TraceEvent::OpDump { .. }))
            {
                assert!(!table.ops.is_empty(), "[{tag}] dumps but empty attribution");
            }
            // Backend-side reconciliation: every fresh operator dump and
            // the SuspendedQuery blob go through exactly one BackendPut
            // (salvage reuse and pool seal flushes never touch the
            // backend), so the two views of the suspend's blob traffic
            // must agree page for page — across all phases, aborted rungs
            // included, since dump and put are emitted symmetrically.
            let fresh_dump_pages: u64 = records
                .iter()
                .map(|r| match &r.event {
                    TraceEvent::OpDump {
                        pages,
                        reused: false,
                        ..
                    } => *pages,
                    TraceEvent::MetaWrite {
                        label: "suspended-query",
                        pages,
                    } => *pages,
                    _ => 0,
                })
                .sum();
            assert_eq!(
                table.backend_pages(),
                fresh_dump_pages,
                "[{tag}] BackendPut pages diverge from fresh dumps + query blob"
            );
            assert!(
                table.backends.keys().all(|k| k == "local"),
                "[{tag}] default stack must attribute everything to the local backend"
            );
        }
    }
}

#[test]
fn flight_recorder_tail_attaches_to_clean_abort_and_resume_failure() {
    // Clean ladder abort: a zero-headroom quota fails every rung; the
    // typed error surfaces and the tracer freezes a tail whose label says
    // so and whose records include the aborted rungs.
    let case = "hash-join";
    let (_, total) = golden(case);
    let boundary = (total / 2).max(1);
    {
        let dir = TempDir::new("abort");
        let db = setup(&dir, 0);
        let tracer = install_full_capture(&db, None);
        let plan = qsr::workload::case_by_name(case).unwrap().plan;
        let mut exec = QueryExecution::start(db.clone(), plan).unwrap();
        exec.set_work_unit_observer(Some(Box::new(move |_op, seq: u64| seq >= boundary)));
        let (_, done) = exec.run().unwrap();
        assert!(!done);
        let dm = db.disk();
        dm.set_quota(Some(dm.used_bytes()));
        exec.suspend_with(&SuspendPolicy::AllDump, &serial())
            .expect_err("zero headroom must abort");
        let (label, tail) = tracer.failure_tail().expect("abort must freeze a tail");
        assert!(
            label.starts_with("suspend aborted cleanly:"),
            "unexpected label {label:?}"
        );
        assert!(
            tail.iter()
                .any(|r| matches!(r.event, TraceEvent::RungAbort { .. })),
            "frozen tail must show the aborted rungs"
        );
    }

    // Resume failure: commit a suspend, destroy the SuspendedQuery blob,
    // recover — the typed ResumeError must carry a frozen tail out of
    // band (the error enum shape is frozen; tests/resume_errors.rs pins
    // that).
    {
        let dir = TempDir::new("rfail");
        let db = setup(&dir, 0);
        let plan = qsr::workload::case_by_name(case).unwrap().plan;
        let mut exec = QueryExecution::start(db.clone(), plan).unwrap();
        exec.set_work_unit_observer(Some(Box::new(move |_op, seq: u64| seq >= boundary)));
        let (_, done) = exec.run().unwrap();
        assert!(!done);
        let handle = exec.suspend_with(&SuspendPolicy::AllDump, &serial()).unwrap();
        drop(db);

        let db = Database::open_default(&dir.0).unwrap();
        let tracer = install_full_capture(&db, None);
        std::fs::write(
            dir.0.join(format!("f{}.qsr", handle.blob.file.0)),
            b"garbage",
        )
        .unwrap();
        assert!(
            QueryExecution::recover(db.clone()).is_err(),
            "destroyed blob must fail resume"
        );
        let (label, _tail) = tracer.failure_tail().expect("resume failure must freeze a tail");
        assert!(label.starts_with("resume failed:"), "unexpected label {label:?}");
    }
}
