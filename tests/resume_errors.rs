//! ResumeError taxonomy: every failure class the recovery ladder can
//! surface is pinned to its typed variant, and the recoverable ones are
//! shown to actually recover.
//!
//! The ladder under test (see `recovery.rs` / `resume_validated`):
//! missing manifest → clean `Ok(None)`; undecodable manifest →
//! `ManifestCorrupt` (version skew and bit rot distinguished by the inner
//! [`StorageError`]); unreadable `SuspendedQuery` blob →
//! `SuspendedQueryUnreadable`; transient I/O → bounded retries, then
//! `Storage` with a transient inner error; unreadable dump blob → GoBack
//! fallback substitution when one was recorded, `DumpUnavailable`
//! otherwise.

use qsr::core::{OpId, SuspendPolicy, SuspendedQuery};
use qsr::exec::{
    clear_manifest, PlanSpec, Predicate, QueryExecution, ResumeError, SuspendTrigger,
    SUSPEND_MANIFEST,
};
use qsr::storage::{
    Database, Encoder, FaultInjector, StorageError, Tuple, MAX_SCHEDULED_TRANSIENTS,
};
use qsr::workload::{generate_table, TableSpec};
use std::path::PathBuf;
use std::sync::Arc;

struct TempDir(PathBuf);
impl TempDir {
    fn new(tag: &str) -> Self {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let p = std::env::temp_dir().join(format!(
            "qsr-rerr-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn populate(db: &Arc<Database>) {
    generate_table(db, &TableSpec::new("r", 800).payload(16).seed(11)).unwrap();
    generate_table(db, &TableSpec::new("s", 200).payload(16).seed(12)).unwrap();
}

/// Sort over block-NLJ: the NLJ dump carries a GoBack fallback, the sort
/// dump does not (its rebuild child signed no contract) — so one plan
/// exhibits both the substitution and the `DumpUnavailable` arm.
fn plan() -> PlanSpec {
    PlanSpec::Sort {
        input: Box::new(PlanSpec::BlockNlj {
            outer: Box::new(PlanSpec::Filter {
                input: Box::new(PlanSpec::TableScan { table: "r".into() }),
                predicate: Predicate::IntLt { col: 1, value: 500 },
            }),
            inner: Box::new(PlanSpec::TableScan { table: "s".into() }),
            outer_key: 0,
            inner_key: 0,
            buffer_tuples: 150,
        }),
        key: 0,
        buffer_tuples: 4096,
    }
}

fn reference_output() -> Vec<Tuple> {
    let dir = TempDir::new("ref");
    let db = Database::open_default(&dir.0).unwrap();
    populate(&db);
    let mut exec = QueryExecution::start(db, plan()).unwrap();
    exec.run_to_completion().unwrap()
}

/// Suspend mid-join and return the directory, the delivered prefix, and
/// the committed handle. Every handle to the first database is dropped, so
/// recovery below always models a fresh process.
fn committed_suspend(tag: &str) -> (TempDir, Vec<Tuple>, qsr::exec::SuspendedHandle) {
    let dir = TempDir::new(tag);
    let db = Database::open_default(&dir.0).unwrap();
    populate(&db);
    let mut exec = QueryExecution::start(db.clone(), plan()).unwrap();
    exec.set_trigger(Some(SuspendTrigger::AfterOpTuples {
        op: OpId(1),
        n: 250,
    }));
    let (prefix, done) = exec.run().unwrap();
    assert!(!done);
    let handle = exec.suspend(&SuspendPolicy::AllDump).unwrap();
    (dir, prefix, handle)
}

fn blob_path(dir: &TempDir, file: qsr::storage::FileId) -> PathBuf {
    dir.0.join(format!("f{}.qsr", file.0))
}

/// Printable verdict of a recovery attempt (`QueryExecution` itself has no
/// `Debug`; the tests only care which arm of the ladder was taken).
fn describe(r: &Result<Option<QueryExecution>, ResumeError>) -> String {
    match r {
        Ok(Some(_)) => "Ok(Some(resumed execution))".into(),
        Ok(None) => "Ok(None)".into(),
        Err(e) => format!("Err({e:?})"),
    }
}

#[test]
fn resume_backoff_schedule_is_pinned() {
    use qsr::exec::{BackoffSchedule, RESUME_BACKOFF};
    use std::time::Duration;

    // The schedule itself is data; pin it field by field so any change is
    // a deliberate, reviewed one.
    assert_eq!(
        RESUME_BACKOFF,
        BackoffSchedule {
            base_ms: 1,
            factor: 2,
            max_attempts: 4,
        }
    );
    // Delay after each failed attempt: base * factor^(n-1), exhausted at
    // the attempt cap. Attempt 0 is not a thing.
    assert_eq!(RESUME_BACKOFF.delay_after(0), None);
    assert_eq!(RESUME_BACKOFF.delay_after(1), Some(Duration::from_millis(1)));
    assert_eq!(RESUME_BACKOFF.delay_after(2), Some(Duration::from_millis(2)));
    assert_eq!(RESUME_BACKOFF.delay_after(3), Some(Duration::from_millis(4)));
    assert_eq!(RESUME_BACKOFF.delay_after(4), None);
    assert_eq!(
        RESUME_BACKOFF.delays(),
        vec![
            Duration::from_millis(1),
            Duration::from_millis(2),
            Duration::from_millis(4),
        ]
    );
    // The legacy retry cap tracks the schedule.
    assert_eq!(qsr::exec::recovery::MAX_RETRIES, RESUME_BACKOFF.max_attempts);
}

#[test]
fn backoff_retry_classification_is_pinned_variant_by_variant() {
    use qsr::exec::{with_backoff, RESUME_BACKOFF};
    use std::io::ErrorKind;

    // Observed attempt count under a permanently failing closure.
    let attempts_for = |mk: &dyn Fn() -> StorageError| -> (u32, StorageError) {
        let mut n = 0u32;
        let err = with_backoff(&RESUME_BACKOFF, || -> qsr::storage::Result<()> {
            n += 1;
            Err(mk())
        })
        .unwrap_err();
        (n, err)
    };

    // Transient I/O variants: retried to schedule exhaustion.
    for kind in [ErrorKind::Interrupted, ErrorKind::WouldBlock, ErrorKind::TimedOut] {
        let (n, err) = attempts_for(&|| StorageError::Io(std::io::Error::from(kind)));
        assert_eq!(
            n, RESUME_BACKOFF.max_attempts,
            "{kind:?} must exhaust the backoff schedule"
        );
        assert!(err.is_transient(), "{kind:?} must surface as transient");
    }

    // Every non-transient variant fails on the first attempt — retrying
    // corruption, missing objects, or exhausted resources cannot help.
    type ErrCtor = Box<dyn Fn() -> StorageError>;
    let permanent: Vec<(&str, ErrCtor)> = vec![
        ("Io(permanent)", Box::new(|| {
            StorageError::Io(std::io::Error::from(ErrorKind::PermissionDenied))
        })),
        ("Corrupt", Box::new(|| StorageError::corrupt("bit rot"))),
        ("NotFound", Box::new(|| StorageError::NotFound("blob".into()))),
        ("ChecksumMismatch", Box::new(|| {
            StorageError::checksum_mismatch("blob", 1, 2)
        })),
        ("NoSpace", Box::new(|| StorageError::NoSpace {
            requested: 4096,
            available: 0,
        })),
        ("InvalidArgument", Box::new(|| StorageError::invalid("bad plan"))),
    ];
    for (name, mk) in &permanent {
        let (n, _err) = attempts_for(mk.as_ref());
        assert_eq!(n, 1, "{name} must not be retried");
    }
}

#[test]
fn backoff_absorbs_blips_and_sleeps_the_pinned_delays() {
    use qsr::exec::{with_backoff, RESUME_BACKOFF};
    use std::io::ErrorKind;
    use std::time::{Duration, Instant};

    // Success on the last granted attempt: all three delays slept.
    let mut n = 0u32;
    let started = Instant::now();
    let out = with_backoff(&RESUME_BACKOFF, || -> qsr::storage::Result<u32> {
        n += 1;
        if n < RESUME_BACKOFF.max_attempts {
            Err(StorageError::Io(std::io::Error::from(ErrorKind::Interrupted)))
        } else {
            Ok(n)
        }
    })
    .unwrap();
    assert_eq!(out, RESUME_BACKOFF.max_attempts);
    // 1 + 2 + 4 ms of deterministic backoff is a hard lower bound on the
    // elapsed time (sleeps never undershoot).
    let floor: Duration = RESUME_BACKOFF.delays().iter().sum();
    assert!(
        started.elapsed() >= floor,
        "backoff must actually sleep its schedule ({:?} < {floor:?})",
        started.elapsed()
    );
}

#[test]
fn missing_manifest_reads_as_clean_state() {
    let dir = TempDir::new("clean");
    let db = Database::open_default(&dir.0).unwrap();
    populate(&db);
    assert!(
        QueryExecution::recover(db).unwrap().is_none(),
        "a database that never suspended must recover to None"
    );
}

#[test]
fn version_skew_manifest_is_manifest_corrupt() {
    let dir = TempDir::new("vskew");
    let db = Database::open_default(&dir.0).unwrap();
    populate(&db);
    // Hand-encode a manifest from the future: good magic ("QSRM"), codec
    // version 99. The version gate fires before the checksum gate, so the
    // bogus checksum/body never get looked at.
    let mut enc = Encoder::new();
    enc.put_u32(0x4d52_5351);
    enc.put_u32(99);
    enc.put_u64(0);
    enc.put_bytes(&[]);
    db.disk()
        .write_sidecar_atomic(SUSPEND_MANIFEST, &enc.finish())
        .unwrap();

    match QueryExecution::recover(db) {
        Err(ResumeError::ManifestCorrupt(StorageError::VersionMismatch {
            expected,
            actual,
            ..
        })) => {
            // `expected` reports the newest version this build understands
            // (2 since the retention/delta manifest extension).
            assert_eq!(expected, 2);
            assert_eq!(actual, 99);
        }
        other => panic!(
            "expected ManifestCorrupt(VersionMismatch), got {}",
            describe(&other)
        ),
    }
}

#[test]
fn rotted_manifest_is_manifest_corrupt_checksum() {
    let (dir, _prefix, _handle) = committed_suspend("mrot");
    let db = Database::open_default(&dir.0).unwrap();
    let mut bytes = db.disk().read_sidecar(SUSPEND_MANIFEST).unwrap().unwrap();
    // Flip a bit inside the length-prefixed body (frame header is magic +
    // version + checksum + body-length = 20 bytes), so the frame still
    // parses and the body checksum is what catches the rot.
    let mid = 20 + (bytes.len() - 20) / 2;
    bytes[mid] ^= 0x04;
    db.disk()
        .write_sidecar_atomic(SUSPEND_MANIFEST, &bytes)
        .unwrap();

    match QueryExecution::recover(db) {
        Err(ResumeError::ManifestCorrupt(e)) => {
            assert!(e.is_corruption(), "inner error must be corruption: {e}")
        }
        other => panic!("expected ManifestCorrupt, got {}", describe(&other)),
    }
}

#[test]
fn corrupt_suspended_query_blob_is_unreadable() {
    let (dir, _prefix, handle) = committed_suspend("qrot");
    let path = blob_path(&dir, handle.blob.file);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[(handle.blob.len / 2) as usize] ^= 0x10;
    std::fs::write(&path, bytes).unwrap();

    let db = Database::open_default(&dir.0).unwrap();
    match QueryExecution::recover(db) {
        Err(ResumeError::SuspendedQueryUnreadable(e)) => {
            assert!(e.is_corruption(), "inner error must be corruption: {e}")
        }
        other => panic!("expected SuspendedQueryUnreadable, got {}", describe(&other)),
    }
}

#[test]
fn truncated_suspended_query_blob_is_typed_not_a_panic() {
    let (dir, _prefix, handle) = committed_suspend("qtrunc");
    let path = blob_path(&dir, handle.blob.file);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let db = Database::open_default(&dir.0).unwrap();
    match QueryExecution::recover(db) {
        Err(ResumeError::SuspendedQueryUnreadable(e) | ResumeError::Storage(e)) => {
            assert!(!e.is_transient(), "truncation must not read as retryable: {e}")
        }
        other => panic!(
            "expected a typed unreadable/storage error, got {}",
            describe(&other)
        ),
    }
}

#[test]
fn transient_burst_exhausts_retries_into_typed_storage_error() {
    let (dir, _prefix, _handle) = committed_suspend("texh");
    let db = Database::open_default(&dir.0).unwrap();
    let fi = Arc::new(FaultInjector::seeded(9));
    // A burst longer than the bounded retry budget: every attempt of the
    // first recovery read fails with a retryable error.
    fi.fail_reads_transiently(1, MAX_SCHEDULED_TRANSIENTS);
    db.disk().set_fault_injector(Some(fi));

    match QueryExecution::recover(db.clone()) {
        Err(ResumeError::Storage(e)) => {
            assert!(e.is_transient(), "exhausted retries must surface the transient: {e}")
        }
        other => panic!("expected Storage(transient), got {}", describe(&other)),
    }

    // The failure was environmental, not state damage: lifting the fault
    // and retrying in place recovers the suspend.
    db.disk().set_fault_injector(None);
    assert!(QueryExecution::recover(db).unwrap().is_some());
}

#[test]
fn transient_blip_is_retried_to_success() {
    let (dir, prefix, _handle) = committed_suspend("tblip");
    let db = Database::open_default(&dir.0).unwrap();
    let fi = Arc::new(FaultInjector::seeded(9));
    fi.fail_reads_transiently(1, 2); // within the 4-attempt budget
    db.disk().set_fault_injector(Some(fi));

    let mut resumed = QueryExecution::recover(db.clone())
        .unwrap()
        .expect("a 2-read blip must be absorbed by retries");
    db.disk().set_fault_injector(None);
    let suffix = resumed.run_to_completion().unwrap();
    let mut all = prefix;
    all.extend(suffix);
    assert_eq!(all, reference_output());
}

#[test]
fn unreadable_dump_without_fallback_is_dump_unavailable() {
    let (dir, _prefix, handle) = committed_suspend("nofb");
    let db = Database::open_default(&dir.0).unwrap();
    let sq = SuspendedQuery::load(db.blobs(), handle.blob).unwrap();
    // The sort's dump has no GoBack fallback (its rebuild child signed no
    // contract): rotting it must surface as DumpUnavailable for that op.
    let (op, dump) = sq
        .records
        .values()
        .filter(|r| !sq.fallbacks.contains_key(&r.op))
        .find_map(|r| r.heap_dump.map(|d| (r.op, d)))
        .expect("a dumped operator without a fallback must exist");
    drop(db);
    let path = blob_path(&dir, dump.file);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[(dump.len / 2) as usize] ^= 0x10;
    std::fs::write(&path, bytes).unwrap();

    let db = Database::open_default(&dir.0).unwrap();
    match QueryExecution::recover(db.clone()) {
        Err(ResumeError::DumpUnavailable { op: bad, source }) => {
            assert_eq!(bad, op);
            assert!(source.is_corruption(), "source must be the rot: {source}");
        }
        other => panic!("expected DumpUnavailable, got {}", describe(&other)),
    }

    // Fallback re-execution: clear the dead suspend and rerun from scratch
    // — the typed error is a recoverable verdict, not a dead database.
    clear_manifest(&db).unwrap();
    assert!(QueryExecution::recover(db.clone()).unwrap().is_none());
    let mut fresh = QueryExecution::start(db, plan()).unwrap();
    assert_eq!(fresh.run_to_completion().unwrap(), reference_output());
}

/// Stable label for the ladder arm a recovery attempt took.
fn verdict_of(r: &Result<Option<QueryExecution>, ResumeError>) -> &'static str {
    match r {
        Ok(Some(_)) => "recovered",
        Ok(None) => "clean",
        Err(ResumeError::ManifestCorrupt(_)) => "ManifestCorrupt",
        Err(ResumeError::SuspendedQueryUnreadable(_)) => "SuspendedQueryUnreadable",
        Err(ResumeError::IncompatiblePlan(_)) => "IncompatiblePlan",
        Err(ResumeError::MissingTable(_)) => "MissingTable",
        Err(ResumeError::DumpUnavailable { .. }) => "DumpUnavailable",
        Err(ResumeError::Storage(_)) => "Storage",
    }
}

/// The resume-prefetch pool must be observationally identical to the
/// serial read path on the happy path: same recovered output and the
/// same pages charged under `Phase::Resume` (the blob queue is
/// deduplicated, so every dump is read exactly once either way).
#[test]
fn parallel_resume_matches_serial_goldens_and_page_charges() {
    use qsr::storage::Phase;
    let reference = reference_output();
    let mut charges = Vec::new();
    for workers in [0usize, 4] {
        let (dir, prefix, _handle) = committed_suspend(&format!("pgold{workers}"));
        let db = Database::open_default(&dir.0).unwrap();
        let pages_before = db.ledger().snapshot().total_pages_read();
        db.ledger().set_phase(Phase::Execute);
        let mut resumed = QueryExecution::recover_named_with(db.clone(), SUSPEND_MANIFEST, workers)
            .unwrap()
            .expect("committed suspend must recover");
        charges.push(db.ledger().snapshot().total_pages_read() - pages_before);
        let suffix = resumed.run_to_completion().unwrap();
        let mut all = prefix;
        all.extend(suffix);
        assert_eq!(all, reference, "workers={workers}: output diverged");
    }
    assert_eq!(
        charges[0], charges[1],
        "prefetch pool changed the pages charged during recovery"
    );
}

/// Bit-flip faults at every read ordinal of the resume phase, with the
/// prefetch pool off and on. At workers=0 every verdict is pinned
/// exactly (recovered → golden, or a typed error). At workers=4 the
/// thread interleaving may map the same ordinal onto a different blob,
/// so the pin is set-based: the verdict must come from the serial
/// verdict set (plus clean recovery), any recovery must be golden, and
/// after a typed error a fault-free retry must converge — parallelism
/// may reshuffle which read a fault strikes, but it must never invent a
/// new failure class, damage on-disk state, or corrupt output.
#[test]
fn read_fault_ordinal_sweep_is_worker_invariant() {
    let reference = reference_output();
    // Probe: reads a clean resume issues (fault ordinals live in 1..=n).
    let reads = {
        let (dir, _p, _h) = committed_suspend("pprobe");
        let db = Database::open_default(&dir.0).unwrap();
        let fi = Arc::new(FaultInjector::seeded(7));
        db.disk().set_fault_injector(Some(fi.clone()));
        let r = QueryExecution::recover(db.clone());
        db.disk().set_fault_injector(None);
        assert!(r.unwrap().is_some(), "probe resume must succeed");
        fi.reads_observed()
    };
    assert!(reads > 0, "resume must read something");

    let mut serial_verdicts = std::collections::BTreeSet::new();
    for workers in [0usize, 4] {
        for ord in 1..=reads {
            let (dir, prefix, _h) = committed_suspend(&format!("pf{workers}-{ord}"));
            let db = Database::open_default(&dir.0).unwrap();
            let fi = Arc::new(FaultInjector::seeded(7));
            fi.flip_read_bit(ord);
            db.disk().set_fault_injector(Some(fi));
            let r = QueryExecution::recover_named_with(db.clone(), SUSPEND_MANIFEST, workers);
            db.disk().set_fault_injector(None);
            let verdict = verdict_of(&r);
            match r {
                Ok(Some(mut resumed)) => {
                    // Flip absorbed (fallback substitution, or it landed in
                    // bytes nothing consults): output must still be golden.
                    let suffix = resumed.run_to_completion().unwrap();
                    let mut all = prefix.clone();
                    all.extend(suffix);
                    assert_eq!(all, reference, "workers={workers} ord={ord}: diverged");
                }
                Ok(None) => panic!(
                    "workers={workers} ord={ord}: committed suspend read as clean state"
                ),
                Err(e) => {
                    // Typed failure: the one-shot flip is environmental, so
                    // a fault-free retry from the untouched on-disk state
                    // must recover and stay golden.
                    let mut retried =
                        QueryExecution::recover_named_with(db, SUSPEND_MANIFEST, workers)
                            .unwrap_or_else(|e2| {
                                panic!(
                                    "workers={workers} ord={ord}: retry after {e} failed: {e2}"
                                )
                            })
                            .expect("manifest must survive a failed resume");
                    let suffix = retried.run_to_completion().unwrap();
                    let mut all = prefix.clone();
                    all.extend(suffix);
                    assert_eq!(all, reference, "workers={workers} ord={ord}: retry diverged");
                }
            }
            if workers == 0 {
                serial_verdicts.insert(verdict);
            } else {
                assert!(
                    verdict == "recovered" || serial_verdicts.contains(verdict),
                    "workers={workers} ord={ord}: verdict {verdict} outside the serial \
                     taxonomy {serial_verdicts:?}"
                );
            }
        }
    }
}

/// Transient read bursts under the prefetch pool: retries absorb blips
/// identically at every pool size, and exhaustion stays a typed
/// `Storage(transient)` — never a panic or a new variant.
#[test]
fn parallel_resume_preserves_transient_taxonomy() {
    for workers in [0usize, 4] {
        // A short blip is absorbed...
        let (dir, prefix, _h) = committed_suspend(&format!("ptb{workers}"));
        let db = Database::open_default(&dir.0).unwrap();
        let fi = Arc::new(FaultInjector::seeded(9));
        fi.fail_reads_transiently(1, 2);
        db.disk().set_fault_injector(Some(fi));
        let mut resumed = QueryExecution::recover_named_with(db.clone(), SUSPEND_MANIFEST, workers)
            .unwrap()
            .expect("a 2-read blip must be absorbed at any pool size");
        db.disk().set_fault_injector(None);
        let suffix = resumed.run_to_completion().unwrap();
        let mut all = prefix;
        all.extend(suffix);
        assert_eq!(all, reference_output(), "workers={workers}: blip run diverged");

        // ...and a burst past the budget surfaces the typed transient.
        let (dir2, _p2, _h2) = committed_suspend(&format!("pte{workers}"));
        let db = Database::open_default(&dir2.0).unwrap();
        let fi = Arc::new(FaultInjector::seeded(9));
        fi.fail_reads_transiently(1, MAX_SCHEDULED_TRANSIENTS);
        db.disk().set_fault_injector(Some(fi));
        match QueryExecution::recover_named_with(db.clone(), SUSPEND_MANIFEST, workers) {
            Err(ResumeError::Storage(e)) => assert!(
                e.is_transient(),
                "workers={workers}: exhausted retries must stay transient: {e}"
            ),
            other => panic!(
                "workers={workers}: expected Storage(transient), got {}",
                describe(&other)
            ),
        }
        db.disk().set_fault_injector(None);
        assert!(
            QueryExecution::recover_named_with(db, SUSPEND_MANIFEST, workers)
                .unwrap()
                .is_some(),
            "workers={workers}: lifting the burst must make recovery succeed"
        );
    }
}

#[test]
fn unreadable_dump_with_fallback_substitutes_goback() {
    let (dir, prefix, handle) = committed_suspend("fb");
    let db = Database::open_default(&dir.0).unwrap();
    let sq = SuspendedQuery::load(db.blobs(), handle.blob).unwrap();
    let dump = sq
        .records
        .values()
        .filter(|r| sq.fallbacks.contains_key(&r.op))
        .find_map(|r| r.heap_dump)
        .expect("a dumped operator with a GoBack fallback must exist");
    drop(db);
    let path = blob_path(&dir, dump.file);
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[(dump.len / 2) as usize] ^= 0x10;
    std::fs::write(&path, bytes).unwrap();

    let db = Database::open_default(&dir.0).unwrap();
    let mut resumed = QueryExecution::recover(db)
        .unwrap()
        .expect("a rotted dump with a fallback must substitute, not fail");
    let suffix = resumed.run_to_completion().unwrap();
    let mut all = prefix;
    all.extend(suffix);
    assert_eq!(all, reference_output());
}
